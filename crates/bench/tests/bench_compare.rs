//! End-to-end proof the perf-regression guard fires: inject a synthetic
//! ≥20% regression into a fresh report and `bench_compare` must exit
//! nonzero naming the metric; a clean re-run must exit 0.

use std::process::Command;
use sws_bench::report::BenchReport;

fn write_report(path: &std::path::Path, report: &BenchReport) {
    std::fs::write(path, report.to_json()).unwrap();
}

fn run(args: &[&str]) -> (String, String, i32) {
    let output = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .args(args)
        .env_remove("SWS_BENCH_TOLERANCE")
        .output()
        .expect("bench_compare runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.code().expect("not killed by signal"),
    )
}

fn sample() -> BenchReport {
    let mut r = BenchReport::new("consistency", 42, 50);
    r.sizes = vec![100, 500];
    r.push("full/100", 10_000, 14_000);
    r.push("incremental/100", 2_000, 2_600);
    r
}

#[test]
fn injected_regression_fails_and_clean_run_passes() {
    let dir = std::env::temp_dir().join(format!("bench_compare_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("baseline.json");
    let fresh = dir.join("fresh.json");
    write_report(&baseline, &sample());

    // A synthetic +20% on one metric, against a 10% tolerance: the guard
    // must fire, exit nonzero, and name the offender.
    let mut regressed = sample();
    regressed.metrics[1].p50_ns = 2_400; // 1.2x
    regressed.metrics[1].p90_ns = 3_120;
    write_report(&fresh, &regressed);
    let (stdout, _, code) = run(&[
        baseline.to_str().unwrap(),
        fresh.to_str().unwrap(),
        "--tolerance=0.10",
    ]);
    assert_eq!(code, 1, "stdout: {stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");
    assert!(stdout.contains("incremental/100"), "{stdout}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    // The untouched metric still reads ok.
    assert!(
        stdout
            .lines()
            .any(|l| l.contains("full/100") && l.ends_with("ok")),
        "{stdout}"
    );

    // Clean re-run (identical numbers): exit 0.
    write_report(&fresh, &sample());
    let (stdout, _, code) = run(&[
        baseline.to_str().unwrap(),
        fresh.to_str().unwrap(),
        "--tolerance=0.10",
    ]);
    assert_eq!(code, 0, "stdout: {stdout}");
    assert!(
        stdout.contains("OK (2 metric(s) within tolerance)"),
        "{stdout}"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_baseline_metric_fails_the_guard() {
    let dir = std::env::temp_dir().join(format!("bench_compare_miss_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("baseline.json");
    let fresh = dir.join("fresh.json");
    write_report(&baseline, &sample());
    let mut dropped = sample();
    dropped.metrics.remove(0);
    write_report(&fresh, &dropped);
    let (stdout, _, code) = run(&[baseline.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, 1, "stdout: {stdout}");
    assert!(stdout.contains("MISSING"), "{stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn usage_and_parse_errors_are_exit_2() {
    let (_, stderr, code) = run(&["only-one-arg"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage:"), "{stderr}");

    let dir = std::env::temp_dir().join(format!("bench_compare_bad_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("good.json");
    let bad = dir.join("bad.json");
    write_report(&good, &sample());
    std::fs::write(&bad, "not json").unwrap();
    let (_, stderr, code) = run(&[good.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(code, 2, "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}
