//! P5: ODL and modification-language parse/print throughput.
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sws_core::oplang::{parse_script, print_script};
use sws_core::ops::synthesize::synthesize;
use sws_corpus::{genome, synthetic::SyntheticSpec};
use sws_model::{graph_to_schema, SchemaGraph};
use sws_odl::{parse_schema, print_schema};

fn bench_odl(c: &mut Criterion) {
    let g = SyntheticSpec::sized(200, 42).generate();
    let text = print_schema(&graph_to_schema(&g));
    let mut group = c.benchmark_group("odl");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("parse_200_types", |b| {
        b.iter(|| parse_schema(std::hint::black_box(&text)).expect("parses"))
    });
    group.bench_function("print_200_types", |b| {
        let ast = graph_to_schema(&g);
        b.iter(|| print_schema(std::hint::black_box(&ast)))
    });
    group.finish();
}

fn bench_oplang(c: &mut Criterion) {
    let script = synthesize(&genome::acedb(), &SchemaGraph::new("empty"));
    let text = print_script(&script);
    let mut group = c.benchmark_group("oplang");
    group.throughput(Throughput::Elements(script.len() as u64));
    group.bench_function("parse_teardown_script", |b| {
        b.iter(|| parse_script(std::hint::black_box(&text)).expect("parses"))
    });
    group.finish();
}

criterion_group!(benches, bench_odl, bench_oplang);
criterion_main!(benches);
