//! T1 companion: permission-matrix lookup cost (it guards every apply).
use criterion::{criterion_group, criterion_main, Criterion};
use sws_core::ops::{OpKind, PermissionMatrix};
use sws_core::ConceptKind;

fn bench_matrix(c: &mut Criterion) {
    let m = PermissionMatrix::new();
    c.bench_function("matrix_full_scan", |b| {
        b.iter(|| {
            let mut allowed = 0usize;
            for &context in &ConceptKind::ALL {
                for &op in OpKind::ALL {
                    allowed += usize::from(
                        m.allows(std::hint::black_box(context), std::hint::black_box(op)),
                    );
                }
            }
            allowed
        })
    });
    c.bench_function("matrix_render_table1", |b| b.iter(|| m.render_table()));
}

criterion_group!(benches, bench_matrix);
criterion_main!(benches);
