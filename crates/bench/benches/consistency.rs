//! P3: consistency-check cost vs schema size.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sws_core::consistency::check_consistency;
use sws_corpus::synthetic::SyntheticSpec;

fn bench_consistency(c: &mut Criterion) {
    let mut group = c.benchmark_group("consistency");
    for n in [10usize, 50, 200, 500] {
        let g = SyntheticSpec::sized(n, 42).generate();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("types", n), &g, |b, g| {
            b.iter(|| check_consistency(std::hint::black_box(g), std::hint::black_box(g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_consistency);
criterion_main!(benches);
