//! P4: mapping derivation and custom-schema emission after a real design
//! session (ACEDB -> SacchDB).
use criterion::{criterion_group, criterion_main, Criterion};
use sws_bench::harness::apply_script;
use sws_core::ops::synthesize::synthesize;
use sws_core::{Mapping, Workspace};
use sws_corpus::genome;
use sws_model::graph_to_schema;
use sws_odl::print_schema;

fn bench_mapping(c: &mut Criterion) {
    let acedb = genome::acedb();
    let script = synthesize(&acedb, &genome::sacchdb());
    let mut ws = Workspace::new(acedb);
    apply_script(&mut ws, &script).expect("derivation applies");

    c.bench_function("mapping_derive", |b| {
        b.iter(|| Mapping::derive(std::hint::black_box(&ws)))
    });
    c.bench_function("custom_schema_emit", |b| {
        b.iter(|| print_schema(&graph_to_schema(std::hint::black_box(ws.working()))))
    });
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
