//! P1: concept-schema decomposition scaling (types 10 → 2000).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sws_core::decompose;
use sws_corpus::synthetic::SyntheticSpec;

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose");
    for n in [10usize, 50, 200, 500, 2000] {
        let g = SyntheticSpec::sized(n, 42).generate();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("types", n), &g, |b, g| {
            b.iter(|| decompose(std::hint::black_box(g)))
        });
    }
    group.finish();
}

fn bench_decompose_corpus(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose_corpus");
    for (name, g) in sws_corpus::all_named() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| decompose(std::hint::black_box(g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decompose, bench_decompose_corpus);
criterion_main!(benches);
