//! F9–11: the end-to-end ACEDB case study (synthesize + replay + verify +
//! mapping).
use criterion::{criterion_group, criterion_main, Criterion};
use sws_bench::case_study;

fn bench_case_study(c: &mut Criterion) {
    c.bench_function("case_study_full", |b| b.iter(case_study::run));
}

criterion_group!(benches, bench_case_study);
criterion_main!(benches);
