//! A tiny regex-subset *generator*: given a pattern, produce random
//! strings matching it. Supports exactly the constructs the workspace's
//! property tests use:
//!
//! * literal characters and `\n`/`\t`/`\\`-style escapes,
//! * character classes `[a-z0-9_]` (ranges + literals + escapes),
//! * groups `( ... )` with alternation `a|b|c`,
//! * quantifiers `{m}`, `{m,n}`, `?`, `*`, `+`.

use crate::rng::TestRng;

#[derive(Debug, Clone)]
enum Node {
    /// One of the alternatives.
    Alt(Vec<Node>),
    /// Concatenation.
    Seq(Vec<Node>),
    /// A literal character.
    Lit(char),
    /// One character drawn from a set.
    Class(Vec<char>),
    /// `node` repeated between `min` and `max` times (inclusive).
    Repeat(Box<Node>, usize, usize),
}

/// A parse error (the pattern uses an unsupported construct).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexGenError(pub String);

impl std::fmt::Display for RegexGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported regex pattern: {}", self.0)
    }
}

/// A compiled generator for one pattern.
#[derive(Debug, Clone)]
pub struct RegexGen {
    root: Node,
}

impl RegexGen {
    /// Compile `pattern`. Panics on unsupported syntax (a test-authoring
    /// error, mirroring proptest's behaviour of failing the test).
    pub fn compile(pattern: &str) -> Result<Self, RegexGenError> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let root = parse_alt(&chars, &mut pos)?;
        if pos != chars.len() {
            return Err(RegexGenError(format!(
                "trailing `{}` in `{pattern}`",
                chars[pos]
            )));
        }
        Ok(RegexGen { root })
    }

    /// Generate one matching string.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        gen_node(&self.root, rng, &mut out);
        out
    }
}

fn gen_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Alt(branches) => {
            let pick = rng.range_usize(0, branches.len());
            gen_node(&branches[pick], rng, out);
        }
        Node::Seq(parts) => {
            for part in parts {
                gen_node(part, rng, out);
            }
        }
        Node::Lit(c) => out.push(*c),
        Node::Class(set) => {
            let pick = rng.range_usize(0, set.len());
            out.push(set[pick]);
        }
        Node::Repeat(inner, min, max) => {
            let n = rng.range_usize(*min, *max + 1);
            for _ in 0..n {
                gen_node(inner, rng, out);
            }
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other, // \\  \]  \-  \.  etc: the literal character
    }
}

fn parse_alt(chars: &[char], pos: &mut usize) -> Result<Node, RegexGenError> {
    let mut branches = vec![parse_seq(chars, pos)?];
    while chars.get(*pos) == Some(&'|') {
        *pos += 1;
        branches.push(parse_seq(chars, pos)?);
    }
    if branches.len() == 1 {
        Ok(branches.pop().expect("one branch"))
    } else {
        Ok(Node::Alt(branches))
    }
}

fn parse_seq(chars: &[char], pos: &mut usize) -> Result<Node, RegexGenError> {
    let mut parts = Vec::new();
    while let Some(&c) = chars.get(*pos) {
        if c == '|' || c == ')' {
            break;
        }
        let atom = parse_atom(chars, pos)?;
        parts.push(parse_quantifier(chars, pos, atom)?);
    }
    Ok(Node::Seq(parts))
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Result<Node, RegexGenError> {
    match chars.get(*pos) {
        Some('(') => {
            *pos += 1;
            let inner = parse_alt(chars, pos)?;
            if chars.get(*pos) != Some(&')') {
                return Err(RegexGenError("unclosed group".into()));
            }
            *pos += 1;
            Ok(inner)
        }
        Some('[') => {
            *pos += 1;
            parse_class(chars, pos)
        }
        Some('\\') => {
            *pos += 1;
            let c = *chars
                .get(*pos)
                .ok_or_else(|| RegexGenError("dangling escape".into()))?;
            *pos += 1;
            Ok(Node::Lit(unescape(c)))
        }
        Some('.') => {
            *pos += 1;
            // Any printable ASCII.
            Ok(Node::Class((' '..='~').collect()))
        }
        Some(&c) if !matches!(c, '{' | '}' | '?' | '*' | '+' | ']') => {
            *pos += 1;
            Ok(Node::Lit(c))
        }
        Some(&c) => Err(RegexGenError(format!("unexpected `{c}`"))),
        None => Err(RegexGenError("unexpected end of pattern".into())),
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Result<Node, RegexGenError> {
    let mut set = Vec::new();
    loop {
        let c = *chars
            .get(*pos)
            .ok_or_else(|| RegexGenError("unclosed class".into()))?;
        match c {
            ']' => {
                *pos += 1;
                if set.is_empty() {
                    return Err(RegexGenError("empty class".into()));
                }
                return Ok(Node::Class(set));
            }
            '\\' => {
                *pos += 1;
                let e = *chars
                    .get(*pos)
                    .ok_or_else(|| RegexGenError("dangling escape in class".into()))?;
                *pos += 1;
                set.push(unescape(e));
            }
            _ => {
                *pos += 1;
                // Range `a-z` (a `-` just before `]` is a literal dash).
                if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&n| n != ']') {
                    *pos += 1;
                    let hi = *chars.get(*pos).expect("checked above");
                    *pos += 1;
                    if hi < c {
                        return Err(RegexGenError(format!("bad range `{c}-{hi}`")));
                    }
                    set.extend(c..=hi);
                } else {
                    set.push(c);
                }
            }
        }
    }
}

fn parse_quantifier(chars: &[char], pos: &mut usize, atom: Node) -> Result<Node, RegexGenError> {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            Ok(Node::Repeat(Box::new(atom), 0, 1))
        }
        Some('*') => {
            *pos += 1;
            Ok(Node::Repeat(Box::new(atom), 0, 4))
        }
        Some('+') => {
            *pos += 1;
            Ok(Node::Repeat(Box::new(atom), 1, 5))
        }
        Some('{') => {
            *pos += 1;
            let mut min = String::new();
            while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                min.push(chars[*pos]);
                *pos += 1;
            }
            let min: usize = min
                .parse()
                .map_err(|_| RegexGenError("bad repeat count".into()))?;
            let max = if chars.get(*pos) == Some(&',') {
                *pos += 1;
                let mut max = String::new();
                while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                    max.push(chars[*pos]);
                    *pos += 1;
                }
                max.parse()
                    .map_err(|_| RegexGenError("bad repeat bound".into()))?
            } else {
                min
            };
            if chars.get(*pos) != Some(&'}') {
                return Err(RegexGenError("unclosed repeat".into()));
            }
            *pos += 1;
            if max < min {
                return Err(RegexGenError("repeat max < min".into()));
            }
            Ok(Node::Repeat(Box::new(atom), min, max))
        }
        _ => Ok(atom),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u64) -> String {
        RegexGen::compile(pattern)
            .unwrap()
            .generate(&mut TestRng::seed_from_u64(seed))
    }

    #[test]
    fn classes_and_repeats() {
        for seed in 0..50 {
            let s = gen("[A-Z][a-z]{2,6}", seed);
            let chars: Vec<char> = s.chars().collect();
            assert!(chars.len() >= 3 && chars.len() <= 7, "{s}");
            assert!(chars[0].is_ascii_uppercase());
            assert!(chars[1..].iter().all(char::is_ascii_lowercase));
        }
    }

    #[test]
    fn printable_ascii_space() {
        for seed in 0..20 {
            let s = gen("[ -~\\n]{0,200}", seed);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn groups_and_alternation() {
        for seed in 0..50 {
            let s = gen("(attribute (long|string|double) [a-z]{1,6}; ?){0,5}", seed);
            for word in s.split_whitespace() {
                if word == "attribute" {
                    continue;
                }
            }
            if !s.is_empty() {
                assert!(s.starts_with("attribute "), "{s}");
                assert!(
                    s.contains("long") || s.contains("string") || s.contains("double"),
                    "{s}"
                );
            }
        }
    }

    #[test]
    fn unsupported_syntax_is_an_error() {
        assert!(RegexGen::compile("(unclosed").is_err());
        assert!(RegexGen::compile("[unclosed").is_err());
        assert!(RegexGen::compile("a{2").is_err());
        assert!(RegexGen::compile("a{3,1}").is_err());
    }
}
