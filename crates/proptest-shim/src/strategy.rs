//! The `Strategy` trait and the combinators the workspace's property
//! tests use. Unlike real proptest there is no shrinking: a failing case
//! reports the generated inputs verbatim (generation is deterministic per
//! test name + case index, so failures reproduce).

use crate::regex_gen::RegexGen;
use crate::rng::TestRng;

/// A recipe for producing random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy (what `prop_oneof!` arms are coerced to).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A weighted choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; total weight must be > 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (weight, strat) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick below total weight")
    }
}

/// Integer ranges are strategies (`0u64..1000`, `1usize..25`, ...).
macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

/// `&'static str` patterns are strategies producing matching strings,
/// via the in-tree regex-subset generator.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let gen = RegexGen::compile(self).unwrap_or_else(|e| panic!("{e}"));
        gen.generate(rng)
    }
}

/// Tuples of strategies produce tuples of values.
macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Result of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: std::ops::Range<usize>,
}

/// `prop::collection::vec`: a vector whose length is drawn from `len`
/// (a half-open range, matching the call sites) and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.range_usize(self.len.start, self.len.end);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Result of [`of`].
pub struct OptionStrategy<S>(S);

/// `prop::option::of`: `Some` three times out of four, like proptest's
/// default weighting.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) < 3 {
            Some(self.0.generate(rng))
        } else {
            None
        }
    }
}

/// Result of [`select`].
pub struct Select<T>(Vec<T>);

/// `prop::sample::select`: pick uniformly from a non-empty list.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select needs at least one item");
    Select(items)
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.range_usize(0, self.0.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_maps_and_tuples() {
        let mut rng = TestRng::seed_from_u64(3);
        let strat = (1usize..10, (0u32..5).prop_map(|n| n * 2));
        for _ in 0..100 {
            let (a, b) = strat.generate(&mut rng);
            assert!((1..10).contains(&a));
            assert!(b % 2 == 0 && b < 10);
        }
    }

    #[test]
    fn union_respects_weights() {
        let strat = Union::new(vec![(9, Just("hot").boxed()), (1, Just("cold").boxed())]);
        let mut rng = TestRng::seed_from_u64(11);
        let hot = (0..1000)
            .filter(|_| strat.generate(&mut rng) == "hot")
            .count();
        assert!(hot > 800 && hot < 980, "{hot}");
    }

    #[test]
    fn collections_and_select() {
        let mut rng = TestRng::seed_from_u64(5);
        let strat = vec(select(std::vec![1, 2, 3]), 2..5);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
            assert!(v.iter().all(|x| (1..=3).contains(x)));
        }
        let opt = of(0u64..3);
        let somes = (0..1000)
            .filter(|_| opt.generate(&mut rng).is_some())
            .count();
        assert!(somes > 650 && somes < 850, "{somes}");
    }

    #[test]
    fn str_patterns_generate_matching_strings() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..30 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}
