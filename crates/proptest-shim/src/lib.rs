//! Offline stand-in for the parts of the [proptest](https://proptest-rs.github.io/)
//! API this workspace's property tests use. The package is `sws-proptest`
//! but the library is named `proptest`, so `use proptest::prelude::*;`
//! resolves here with no registry access.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** Generation is deterministic (SplitMix64 seeded from
//!   the test name and case index), so a failing case reproduces exactly;
//!   the failure message carries the generated inputs.
//! * **Regex strategies** support only the subset the tests use: classes,
//!   ranges, escapes, groups, alternation, and `{m}`/`{m,n}`/`?`/`*`/`+`
//!   quantifiers.
//! * `prop::option::of` weights `Some` 3:1, `*` caps at 4 repeats, `+` at 5.
#![forbid(unsafe_code)]

pub mod regex_gen;
pub mod rng;
pub mod strategy;
pub mod test_runner;

/// Mirrors proptest's `prop` module paths (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Option strategies.
    pub mod option {
        pub use crate::strategy::of;
    }
    /// Sampling strategies.
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// Everything a property-test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests. Matches proptest's surface syntax: an optional
/// `#![proptest_config(..)]` inner attribute, then `#[test]`-attributed
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each property fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            $crate::test_runner::run_cases(
                stringify!($name),
                &$cfg,
                |__rng, __inputs| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);
                    )+
                    $(
                        __inputs.push_str(&format!(
                            concat!("  ", stringify!($arg), " = {:?}\n"),
                            &$arg,
                        ));
                    )+
                    #[allow(unreachable_code)]
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                },
            );
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert inside a property body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    stringify!($cond),
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r,
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro surface end-to-end: bindings, maps, oneof, asserts.
        #[test]
        fn macro_surface_works(
            n in 1usize..10,
            label in prop_oneof![
                3 => Just("common"),
                1 => Just("rare"),
            ],
            word in "[a-z]{1,4}".prop_map(|s| format!("w_{s}")),
        ) {
            prop_assert!(n >= 1);
            prop_assert!(!label.is_empty(), "label was {label:?}");
            prop_assert_eq!(&word[..2], "w_");
            let parsed: usize = format!("{n}")
                .parse()
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert_eq!(parsed, n);
        }
    }

    proptest! {
        /// Default config path (no inner attribute).
        #[test]
        fn default_config_runs(pair in (0u32..5, prop::option::of(0u64..3))) {
            let (a, b) = pair;
            prop_assert!(a < 5);
            if let Some(b) = b {
                prop_assert!(b < 3);
            }
        }
    }
}
