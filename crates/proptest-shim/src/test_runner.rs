//! Case execution: config, error type, and the driver loop behind the
//! `proptest!` macro.

use crate::rng::TestRng;

/// Subset of proptest's config: just the case count.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property is violated.
    Fail(String),
    /// The input is invalid for this property; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failed case.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject(msg) => write!(f, "rejected: {msg}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Run `cfg.cases` cases of one property. The case callback receives a
/// per-case deterministic RNG (seeded from the test name and case index)
/// and a buffer it fills with a `Debug` rendering of the generated inputs
/// before running the body, so both assertion failures and panics can
/// report what input triggered them.
pub fn run_cases<F>(name: &str, cfg: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng, &mut String) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    for i in 0..cfg.cases {
        let mut rng = TestRng::seed_from_u64(base.wrapping_add(u64::from(i)));
        let mut inputs = String::new();
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng, &mut inputs)));
        match outcome {
            Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => {}
            Ok(Err(TestCaseError::Fail(msg))) => panic!(
                "property `{name}` failed at case {i}/{}: {msg}\ninputs:\n{inputs}",
                cfg.cases
            ),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                panic!(
                    "property `{name}` panicked at case {i}/{}: {msg}\ninputs:\n{inputs}",
                    cfg.cases
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_cases_deterministically() {
        let mut draws_a = Vec::new();
        run_cases("demo", &ProptestConfig::with_cases(8), |rng, _| {
            draws_a.push(rng.next_u64());
            Ok(())
        });
        let mut draws_b = Vec::new();
        run_cases("demo", &ProptestConfig::with_cases(8), |rng, _| {
            draws_b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(draws_a, draws_b);
        assert_eq!(draws_a.len(), 8);
    }

    #[test]
    fn rejects_are_skipped() {
        let mut ran = 0;
        run_cases("rej", &ProptestConfig::with_cases(5), |_, _| {
            ran += 1;
            Err(TestCaseError::reject("not this one"))
        });
        assert_eq!(ran, 5);
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failures_report_inputs() {
        run_cases("boom", &ProptestConfig::with_cases(3), |_, inputs| {
            inputs.push_str("x = 42");
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    #[should_panic(expected = "panicked at case")]
    fn panics_are_reported_with_case_number() {
        run_cases("kaboom", &ProptestConfig::with_cases(3), |_, _| {
            panic!("inner");
        });
    }
}
