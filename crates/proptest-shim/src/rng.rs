//! The shim's own deterministic PRNG (SplitMix64).

/// A SplitMix64 generator. Deterministic for a seed; good enough
/// statistical quality for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift range reduction (Lemire); bias is negligible for
        // test-case sizes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below((hi - lo) as u64) as usize
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = TestRng::seed_from_u64(7);
        let mut b = TestRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.below(10);
            assert_eq!(x, b.below(10));
            assert!(x < 10);
        }
        let mut c = TestRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
