//! End-to-end tests of `swsd ... lint`: the batch subcommand, the JSON
//! emitter, exit code 8, and the REPL `lint` command. Also pins the
//! analyzer's locally-restated SplitMix64 checksum to the repository's —
//! the two crates must never drift apart.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn run_swsd(args: &[&str], stdin: &str) -> (String, String, i32) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_swsd"))
        .env("SWS_CRASH_DIR", std::env::temp_dir())
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("swsd spawns");
    let _ = child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes());
    let output = child.wait_with_output().expect("swsd exits");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.code().expect("not killed by signal"),
    )
}

/// Write `name` with `contents` into a per-process temp dir.
fn fixture(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swsd_lint_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("fixture write");
    path
}

fn schema_file() -> PathBuf {
    fixture(
        "uni.odl",
        "interface Person { attribute string name; }\n\
         interface Employee : Person { attribute long badge; }\n",
    )
}

#[test]
fn lint_clean_script_exits_zero() {
    let schema = schema_file();
    let script = fixture(
        "clean.ops",
        "add_type_definition(Course);\nadd_attribute(Course, string(16), room);\n",
    );
    let (stdout, stderr, code) = run_swsd(
        &[
            "--schema",
            schema.to_str().expect("utf8"),
            "lint",
            script.to_str().expect("utf8"),
        ],
        "",
    );
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("no findings"), "{stdout}");
}

#[test]
fn lint_findings_exit_eight_with_stable_codes() {
    let schema = schema_file();
    let script = fixture(
        "bad.ops",
        "add_type_definition(T);\ndelete_type_definition(T);\nadd_attribute(T, long, x);\n",
    );
    let (stdout, _, code) = run_swsd(
        &[
            "--schema",
            schema.to_str().expect("utf8"),
            "lint",
            script.to_str().expect("utf8"),
        ],
        "",
    );
    assert_eq!(code, 8);
    assert!(stdout.contains("[A002]"), "{stdout}");
    assert!(stdout.contains("[W102]"), "{stdout}");
    assert!(stdout.contains("stops at op #2"), "{stdout}");
}

#[test]
fn lint_json_is_one_checksummed_line() {
    let schema = schema_file();
    let script = fixture("json.ops", "delete_type_definition(Ghost);\n");
    let (stdout, _, code) = run_swsd(
        &[
            "--lint=json",
            "--schema",
            schema.to_str().expect("utf8"),
            "lint",
            script.to_str().expect("utf8"),
        ],
        "",
    );
    assert_eq!(code, 8);
    let line = stdout.trim_end();
    assert!(!line.contains('\n'), "one line: {stdout}");
    assert!(line.starts_with("{\"schema_version\":1,\"ops\":1,\"stopped_at\":0"));
    assert!(line.contains("\"code\":\"A001\""));
    assert!(sws_analyze::LintReport::checksum_valid(line), "{line}");
}

#[test]
fn lint_context_flag_changes_the_permission_verdict() {
    let schema = schema_file();
    // add_supertype is legal in a generalization, banned in a wagon wheel.
    let script = fixture("ctx.ops", "add_supertype(Employee, Person);\n");
    let (stdout, _, code) = run_swsd(
        &[
            "--schema",
            schema.to_str().expect("utf8"),
            "lint",
            script.to_str().expect("utf8"),
        ],
        "",
    );
    assert_eq!(code, 8, "{stdout}");
    assert!(stdout.contains("[A011]"), "{stdout}");
    // Same script, generalization context: rejected for a different reason
    // (the edge already exists — A003), proving --context reached the
    // matrix.
    let (stdout, _, code) = run_swsd(
        &[
            "--context=generalization",
            "--schema",
            schema.to_str().expect("utf8"),
            "lint",
            script.to_str().expect("utf8"),
        ],
        "",
    );
    assert_eq!(code, 8, "{stdout}");
    assert!(stdout.contains("[A003]"), "{stdout}");
}

#[test]
fn lint_parse_error_exits_three() {
    let schema = schema_file();
    let script = fixture("broken.ops", "this is not an op(\n");
    let (_, stderr, code) = run_swsd(
        &[
            "--schema",
            schema.to_str().expect("utf8"),
            "lint",
            script.to_str().expect("utf8"),
        ],
        "",
    );
    assert_eq!(code, 3, "stderr: {stderr}");
}

#[test]
fn repl_lint_analyzes_without_applying() {
    let schema = schema_file();
    let stdin = "\
lint add_attribute(Person, double, salary); delete_attribute(Person, salary)
odl
quit
";
    let (stdout, stderr, code) = run_swsd(&["--schema", schema.to_str().expect("utf8")], stdin);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("[W102]"), "{stdout}");
    // Nothing was applied: salary never appears in the rendered ODL.
    assert!(!stdout.contains("salary;"), "{stdout}");
}

#[test]
fn analyzer_checksum_matches_repository_checksum() {
    for sample in [
        &b""[..],
        b"x",
        b"{\"schema_version\":1}",
        b"0123456789abcdef0123456789abcdef",
    ] {
        assert_eq!(
            sws_analyze::diag::checksum(sample),
            sws_repository::checksum::checksum(sample),
            "SplitMix64 restatement drifted from sws_repository::checksum"
        );
    }
}
