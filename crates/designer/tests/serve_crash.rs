//! Crash-safety for `swsd serve`: a live TCP server over a fault-injected
//! session directory, killed mid-append and mid-checkpoint while
//! concurrent clients stream ops.
//!
//! The contract proven for both crash points:
//!
//! * the server itself never wedges — clients keep getting `accepted`
//!   responses after the "disk" dies (durability degrades, liveness
//!   doesn't),
//! * after reboot (`post_crash` + salvage load), the recovered state is a
//!   serial replay of some **prefix** of the accepted total order — never
//!   a torn mixture, never ops out of order,
//! * a re-served session directory accepts reattaching clients whose
//!   `opened` rev is exactly the salvaged op count, and a fresh submit at
//!   that rev lands.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use sws_corpus::university;
use sws_designer::protocol::Json;
use sws_designer::{serve, DesignService, Session};
use sws_repository::io::{FaultIo, MemIo, RepoIo};
use sws_repository::Repository;

const CLIENTS: usize = 2;
const OPS_PER_CLIENT: usize = 10;
const THREADS: usize = 2;

/// `Session` owns its I/O, but the test must keep a handle to plant the
/// fault and reboot the disk afterwards — so share one `FaultIo`.
#[derive(Debug, Clone)]
struct SharedIo(Arc<FaultIo>);

impl RepoIo for SharedIo {
    fn read(&self, p: &Path) -> std::io::Result<Vec<u8>> {
        self.0.read(p)
    }
    fn write_atomic(&self, p: &Path, d: &[u8]) -> std::io::Result<()> {
        self.0.write_atomic(p, d)
    }
    fn append_sync(&self, p: &Path, d: &[u8]) -> std::io::Result<()> {
        self.0.append_sync(p, d)
    }
    fn exists(&self, p: &Path) -> bool {
        self.0.exists(p)
    }
    fn create_dir_all(&self, p: &Path) -> std::io::Result<()> {
        self.0.create_dir_all(p)
    }
    fn remove(&self, p: &Path) -> std::io::Result<()> {
        self.0.remove(p)
    }
}

/// Stop the server on every exit path so a failed assertion can never
/// leave the scope join hanging on a blocked acceptor.
struct StopServer<'a> {
    service: &'a DesignService,
    addr: SocketAddr,
}

impl Drop for StopServer<'_> {
    fn drop(&mut self) {
        self.service.request_shutdown();
        for _ in 0..THREADS {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

struct Wire {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    session: String,
    rev: u64,
}

impl Wire {
    fn connect(addr: SocketAddr, session: &str) -> Wire {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(600)))
            .expect("read timeout");
        Wire {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
            session: session.to_string(),
            rev: 0,
        }
    }

    fn rpc(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
        self.writer.flush().expect("flush");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("recv");
        Json::parse(response.trim_end()).expect("response parses")
    }

    fn tag(resp: &Json) -> &str {
        resp.get("type").and_then(Json::as_str).expect("type")
    }

    fn num(resp: &Json, key: &str) -> u64 {
        resp.get(key).and_then(Json::as_u64).expect("numeric field")
    }

    fn open(&mut self) -> u64 {
        let resp = self.rpc(&format!(
            "{{\"type\":\"open\",\"session\":\"{}\"}}",
            self.session
        ));
        assert_eq!(Self::tag(&resp), "opened");
        self.rev = Self::num(&resp, "rev");
        self.rev
    }

    /// Submit one statement, riding out stale-rev conflicts by adopting
    /// the head rev from the conflict report (unique type names per
    /// client, so a retry can only be accepted).
    fn submit(&mut self, stmt: &str) {
        loop {
            let resp = self.rpc(&format!(
                "{{\"type\":\"submit\",\"session\":\"{}\",\"base_rev\":{},\
                 \"ops\":[{{\"stmt\":\"{stmt}\"}}]}}",
                self.session, self.rev
            ));
            match Self::tag(&resp) {
                "accepted" => {
                    self.rev = Self::num(&resp, "rev");
                    return;
                }
                "conflict" => {
                    self.rev = Self::num(&resp, "rev");
                }
                other => panic!("submit of `{stmt}` got {other}: {resp:?}"),
            }
        }
    }
}

/// Build a service over a fault-injected in-memory session directory,
/// serve it live while concurrent clients stream ops, crash the disk via
/// `plant`, and verify salvage + reattach.
fn crash_and_salvage(plant: impl FnOnce(&FaultIo)) {
    let dir = PathBuf::from("/mem/serve");
    let io = Arc::new(FaultIo::new(MemIo::new()));
    let disk = io.fs().clone();

    let mut session = Session::from_odl(university::SOURCE).expect("schema");
    session.set_io(Box::new(SharedIo(io.clone())));
    session.save(&dir).expect("initial save");
    // Off-request-path checkpoints every 4 accepted ops.
    session.set_checkpoint_interval(Some(4));
    let service = DesignService::new(session);

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    // The fault arms AFTER the initial save, so it fires under live load.
    plant(&io);

    let (total_rev, order) = std::thread::scope(|scope| {
        let server = scope.spawn(|| serve::serve(&service, listener, THREADS));
        let _stop = StopServer {
            service: &service,
            addr,
        };

        let handles: Vec<_> = (0..CLIENTS)
            .map(|idx| {
                scope.spawn(move || {
                    let mut wire = Wire::connect(addr, &format!("client{idx}"));
                    wire.open();
                    for i in 0..OPS_PER_CLIENT {
                        wire.submit(&format!("add_type_definition(C{idx}x{i})"));
                    }
                    wire.rev
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client");
        }

        // The in-memory accepted order survives the disk crash; capture it
        // over the wire before shutting down.
        let mut verifier = Wire::connect(addr, "verifier");
        verifier.open();
        let log = verifier.rpc("{\"type\":\"log\",\"session\":\"verifier\",\"since\":0}");
        assert_eq!(Wire::tag(&log), "log");
        let total_rev = Wire::num(&log, "rev");
        let order: Vec<(String, String)> = log
            .get("ops")
            .and_then(Json::as_array)
            .expect("ops")
            .iter()
            .map(|record| {
                (
                    record
                        .get("context")
                        .and_then(Json::as_str)
                        .expect("context")
                        .to_string(),
                    record
                        .get("stmt")
                        .and_then(Json::as_str)
                        .expect("stmt")
                        .to_string(),
                )
            })
            .collect();
        let bye = verifier.rpc("{\"type\":\"shutdown\"}");
        assert_eq!(Wire::tag(&bye), "bye");
        server.join().expect("server thread").expect("serve io");
        (total_rev, order)
    });

    assert_eq!(total_rev as usize, CLIENTS * OPS_PER_CLIENT);
    assert_eq!(order.len() as u64, total_rev);

    // Reboot: flush what the page cache kept, then salvage-load.
    disk.post_crash(42);
    let salvaged = Session::load_with(Box::new(disk.clone()), &dir).expect("salvage load");
    let report = salvaged.recovery().expect("recovery report");
    // A crash may tear the very record being appended. That op was never
    // acknowledged durable (its fsync never ran), so quarantining it is
    // the correct outcome — but the report must then say "torn tail", and
    // at most that one in-flight record may go missing this way.
    if report.data_loss() {
        assert!(
            report.torn_tail,
            "ops dropped without a torn tail: {report:?}"
        );
        assert!(report.ops_dropped <= 1, "{report:?}");
    }
    let salvaged_ops = salvaged.repository().total_ops();
    assert!(
        salvaged_ops <= total_rev,
        "salvage cannot invent ops: {salvaged_ops} > {total_rev}"
    );

    // The salvaged state is a serial replay of exactly the first
    // `salvaged_ops` accepted ops — a clean prefix, nothing torn.
    let mut prefix = Repository::ingest_odl(university::SOURCE).expect("replica");
    for (context, stmt) in &order[..salvaged_ops as usize] {
        let kind = sws_core::ConceptKind::from_tag(context).expect("context tag");
        let op = sws_core::parse_statement(stmt).expect("logged op parses");
        prefix
            .workspace_mut()
            .apply(kind, op)
            .unwrap_or_else(|e| panic!("prefix replay of `{stmt}` failed: {e}"));
    }
    assert_eq!(
        salvaged.repository().custom_schema_odl(),
        prefix.custom_schema_odl(),
        "salvaged state is not the replay of the first {salvaged_ops} accepted ops"
    );

    // Re-serve the salvaged directory: a client reattaches at the salvaged
    // rev and extends the log.
    let service = DesignService::new(salvaged);
    let listener = TcpListener::bind("127.0.0.1:0").expect("rebind");
    let addr = listener.local_addr().expect("addr");
    std::thread::scope(|scope| {
        let server = scope.spawn(|| serve::serve(&service, listener, 1));
        let _stop = StopServer {
            service: &service,
            addr,
        };
        let mut wire = Wire::connect(addr, "client0");
        let rev = wire.open();
        assert_eq!(
            rev, salvaged_ops,
            "reattached session must resume at the salvaged rev"
        );
        wire.submit("add_type_definition(AfterReboot)");
        assert_eq!(wire.rev, salvaged_ops + 1);
        let bye = wire.rpc("{\"type\":\"shutdown\"}");
        assert_eq!(Wire::tag(&bye), "bye");
        server.join().expect("server thread").expect("serve io");
    });
}

#[test]
fn crash_mid_append_salvages_a_prefix_and_reattaches() {
    // Die during the 6th op-log append — mid-traffic, torn tail likely.
    crash_and_salvage(|io| io.crash_on_contains("append /mem/serve/session.ops", 5));
}

#[test]
fn crash_mid_checkpoint_salvages_pre_or_post_state() {
    // Die inside a checkpoint's manifest commit window: each checkpoint
    // touches MANIFEST three times (write temp, sync, rename), so step 4
    // lands inside the second checkpoint under load.
    crash_and_salvage(|io| io.crash_on_contains("MANIFEST", 4));
}

#[test]
fn crash_mid_snapshot_write_keeps_the_old_generation() {
    // Die while the snapshot blob itself is being staged.
    crash_and_salvage(|io| io.crash_on_contains("snapshot", 1));
}
