//! End-to-end test of the `swsd` binary: feed it a scripted session on
//! stdin and check the transcript, exactly as a user would drive it.

use std::io::Write;
use std::process::{Command, Stdio};

/// Run `swsd` with extra environment variables; returns
/// `(stdout, stderr, exit_code)`. Unless the caller overrides it,
/// `SWS_CRASH_DIR` points at the temp dir so error-exit crash reports
/// never land in the source tree.
fn run_swsd_env(args: &[&str], stdin: &str, envs: &[(&str, &str)]) -> (String, String, i32) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_swsd"));
    if !envs.iter().any(|(k, _)| *k == "SWS_CRASH_DIR") {
        cmd.env("SWS_CRASH_DIR", std::env::temp_dir());
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("swsd spawns");
    // A child that rejects its arguments (usage error, strict-mode load
    // failure) exits without reading stdin; the resulting BrokenPipe on
    // our side is expected, not a test failure.
    let _ = child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes());
    let output = child.wait_with_output().expect("swsd exits");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.code().expect("not killed by signal"),
    )
}

fn run_swsd(args: &[&str], stdin: &str) -> (String, String, bool) {
    let (stdout, stderr, code) = run_swsd_env(args, stdin, &[]);
    (stdout, stderr, code == 0)
}

/// Like [`run_swsd`], but returns the exact exit code.
fn run_swsd_code(args: &[&str], stdin: &str) -> (String, String, i32) {
    run_swsd_env(args, stdin, &[])
}

fn schema_file() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("swsd_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("uni.odl");
    std::fs::write(
        &path,
        "interface Person { attribute string name; }\n\
         interface Employee : Person { attribute long badge; }\n",
    )
    .unwrap();
    path
}

#[test]
fn scripted_session_produces_expected_transcript() {
    let schema = schema_file();
    let script = "\
concepts
add_attribute(Employee, double, salary)
context generalization
modify_attribute(Employee, badge, Person)
map
odl
quit
";
    let (stdout, stderr, ok) = run_swsd(&["--schema", schema.to_str().unwrap()], script);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("shrink wrap schema loaded: 2 types"));
    assert!(stdout.contains("wagon wheel: Person"));
    assert!(stdout.contains("applied: add_attribute(Employee, double, salary)"));
    assert!(stdout.contains("applied: modify_attribute(Employee, badge, Person)"));
    assert!(stdout.contains("moved to `Person`"));
    assert!(stdout.contains("attribute double salary;"));
}

#[test]
fn save_and_resume_via_cli() {
    let schema = schema_file();
    let session_dir = std::env::temp_dir().join(format!("swsd_session_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&session_dir);
    let save_script = format!(
        "add_type_definition(Project)\nsave {}\nquit\n",
        session_dir.display()
    );
    let (stdout, stderr, ok) = run_swsd(&["--schema", schema.to_str().unwrap()], &save_script);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("saved to"));

    let (stdout, stderr, ok) = run_swsd(
        &["--session", session_dir.to_str().unwrap()],
        "odl\nlog\nquit\n",
    );
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("interface Project"));
    assert!(stdout.contains("wagon_wheel\tadd_type_definition(Project)"));
    std::fs::remove_dir_all(&session_dir).unwrap();
}

#[test]
fn trace_json_flag_dumps_checker_valid_jsonl_to_stderr() {
    let schema = schema_file();
    // Parse happens at load, decomposition at `concepts`, a ModOp apply,
    // and a consistency pass at `check` — the whole pipeline in one script.
    let script = "concepts\nadd_type_definition(Project)\ncheck\nquit\n";
    let (stdout, stderr, ok) = run_swsd(
        &["--trace=json", "--schema", schema.to_str().unwrap()],
        script,
    );
    assert!(ok, "stderr: {stderr}");
    // stdout is untouched by tracing.
    assert!(stdout.contains("applied: add_type_definition(Project)"));
    assert!(!stdout.contains("span_open"));
    // stderr is non-empty, checker-valid JSONL...
    let lines = sws_trace::export::jsonl::check(&stderr)
        .unwrap_or_else(|e| panic!("invalid JSONL: {e}\n{stderr}"));
    assert!(lines > 0);
    // ...with spans for every pipeline layer.
    for name in [
        "odl.parse",
        "core.decompose",
        "ws.apply",
        "core.consistency",
    ] {
        assert!(
            stderr.contains(&format!("\"name\":\"{name}\"")),
            "missing span `{name}` in:\n{stderr}"
        );
    }
}

/// A schema wide enough (16 types) to clear the parallel checker's
/// `PAR_MIN_ITEMS` threshold, so `--threads=N` actually fans out.
fn wide_schema_file(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("swsd_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wide.odl");
    let src: String = (0..16)
        .map(|i| format!("interface Wide{i} {{ attribute long x{i}; }}\n"))
        .collect();
    std::fs::write(&path, src).unwrap();
    path
}

#[test]
fn threads_flag_fans_out_and_output_matches_serial() {
    let schema = wide_schema_file("threads");
    let script = "concepts\ncheck\nquit\n";
    let (serial_out, _, ok) = run_swsd(
        &["--threads=1", "--schema", schema.to_str().unwrap()],
        script,
    );
    assert!(ok);
    let (parallel_out, stderr, ok) = run_swsd(
        &[
            "--threads=4",
            "--trace=json",
            "--schema",
            schema.to_str().unwrap(),
        ],
        script,
    );
    assert!(ok, "stderr: {stderr}");
    // Determinism end to end: the user-visible transcript is identical.
    assert_eq!(parallel_out, serial_out);
    // The fan-out really happened and is observable in the trace.
    for needle in [
        "\"name\":\"core.parallel\"",
        "\"name\":\"core.parallel.worker\"",
        "\"name\":\"core.parallel.workers\"",
        "\"name\":\"core.parallel.chunks\"",
    ] {
        assert!(stderr.contains(needle), "missing {needle} in:\n{stderr}");
    }
}

#[test]
fn threads_flag_rejects_garbage() {
    for bad in ["--threads=0", "--threads=abc", "--threads="] {
        let (_, stderr, code) = run_swsd_code(&[bad], "");
        assert_eq!(code, 2, "{bad} must be a usage error");
        assert!(stderr.contains("--threads"), "{stderr}");
    }
}

#[test]
fn help_documents_threads_flag() {
    let (stdout, _, code) = run_swsd_code(&["--help"], "");
    assert_eq!(code, 0);
    assert!(stdout.contains("--threads=N"), "{stdout}");
    assert!(stdout.contains("SWS_THREADS"), "{stdout}");
}

/// The top-level keys of one flat-ish JSON object, in order. Nested
/// objects (the `fields` payload) are skipped, not descended into.
fn top_level_keys(line: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let bytes = line.as_bytes();
    let mut depth = 0i32;
    let mut i = 0usize;
    let mut in_str = false;
    let mut str_start = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if in_str {
            match b {
                b'\\' => i += 1,
                b'"' => {
                    // A string at depth 1 followed by `:` is a top-level key.
                    if depth == 1 && bytes.get(i + 1) == Some(&b':') {
                        keys.push(line[str_start..i].to_string());
                    }
                    in_str = false;
                }
                _ => {}
            }
        } else {
            match b {
                b'"' => {
                    in_str = true;
                    str_start = i + 1;
                }
                b'{' | b'[' => depth += 1,
                b'}' | b']' => depth -= 1,
                _ => {}
            }
        }
        i += 1;
    }
    keys
}

/// Golden pin of the `--trace=json` JSONL schema: the exact top-level key
/// sequence of every line type. Downstream consumers key on these names;
/// the `core.parallel.*` additions must not change the shape, and any
/// future field rename must show up here as a deliberate diff.
#[test]
fn trace_json_schema_is_pinned() {
    let schema = wide_schema_file("golden");
    let script = "concepts\nadd_type_definition(Project)\ncheck\nquit\n";
    let (_, stderr, ok) = run_swsd(
        &[
            "--threads=4",
            "--trace=json",
            "--schema",
            schema.to_str().unwrap(),
        ],
        script,
    );
    assert!(ok, "stderr: {stderr}");
    sws_trace::export::jsonl::check(&stderr).unwrap();

    let mut seen = std::collections::BTreeSet::new();
    for line in stderr.lines().filter(|l| !l.trim().is_empty()) {
        let keys = top_level_keys(line);
        assert_eq!(keys.first().map(String::as_str), Some("type"), "{line}");
        let ty = line
            .split("\"type\":\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .unwrap_or_else(|| panic!("no type in {line}"));
        seen.insert(ty.to_string());
        let joined = keys.join(",");
        let expect: &[&str] = match ty {
            "span_open" | "event" => &[
                "type,seq,ts_ns,name,span,parent",
                "type,seq,ts_ns,name,span,parent,fields",
            ],
            "span_close" => &[
                "type,seq,ts_ns,name,span,parent,dur_ns",
                "type,seq,ts_ns,name,span,parent,dur_ns,fields",
            ],
            "counter" => &["type,name,value"],
            "histogram" => &["type,name,count,sum_ns,min_ns,p50_ns,p99_ns,max_ns"],
            other => panic!("unknown line type `{other}`: {line}"),
        };
        assert!(
            expect.contains(&joined.as_str()),
            "schema drift for `{ty}`: got [{joined}] in {line}"
        );
    }
    // Every line type the pipeline emits occurred, so every shape above
    // was actually checked ("event" lines exist in the format but no
    // pipeline stage emits Point events today), and the parallel counters
    // ride the pinned `counter` shape.
    for ty in ["span_open", "span_close", "counter", "histogram"] {
        assert!(seen.contains(ty), "no `{ty}` line in:\n{stderr}");
    }
    assert!(
        stderr.contains("\"type\":\"counter\",\"name\":\"core.parallel.workers\",\"value\":"),
        "{stderr}"
    );
    assert!(
        stderr.contains("\"type\":\"histogram\",\"name\":\"core.parallel.shard_items\","),
        "{stderr}"
    );
}

#[test]
fn trace_flag_dumps_tree_and_summary_to_stderr() {
    let schema = schema_file();
    let script = "add_type_definition(Project)\nquit\n";
    let (_, stderr, ok) = run_swsd(&["--trace", "--schema", schema.to_str().unwrap()], script);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("--- trace ---"), "{stderr}");
    assert!(stderr.contains("ws.apply"), "{stderr}");
    assert!(stderr.contains("--- summary ---"), "{stderr}");
    assert!(stderr.contains("ws.ops_applied = 1"), "{stderr}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let (_, stderr, code) = run_swsd_code(&[], "");
    assert_eq!(code, 2, "usage error is exit 2");
    assert!(stderr.contains("usage: swsd"));
    let (_, stderr, code) = run_swsd_code(&["--schema", "/nonexistent/x.odl"], "");
    assert_eq!(code, 5, "unreadable schema file is an I/O failure");
    assert!(stderr.contains("cannot read"));
}

#[test]
fn help_documents_the_exit_codes() {
    let (stdout, _, code) = run_swsd_code(&["--help"], "");
    assert_eq!(code, 0);
    assert!(stdout.contains("exit codes:"), "{stdout}");
    for snippet in [
        "2  usage error",
        "3  schema did not parse",
        "4  session directory corrupt",
        "5  I/O failure",
        "6  session recovered, but with data loss",
    ] {
        assert!(
            stdout.contains(snippet),
            "missing {snippet:?} in:\n{stdout}"
        );
    }
}

#[test]
fn unparseable_schema_is_exit_3() {
    let dir = std::env::temp_dir().join(format!("swsd_parse_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.odl");
    std::fs::write(&bad, "interface { this is not odl").unwrap();
    let (_, stderr, code) = run_swsd_code(&["--schema", bad.to_str().unwrap()], "");
    assert_eq!(code, 3, "stderr: {stderr}");
    assert!(stderr.contains("swsd:"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_session_exit_codes_strict_vs_salvage() {
    let schema = schema_file();
    let session_dir = std::env::temp_dir().join(format!("swsd_corrupt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&session_dir);
    let script = format!(
        "add_type_definition(Project)\nadd_type_definition(Task)\nsave {}\nquit\n",
        session_dir.display()
    );
    let (_, _, code) = run_swsd_code(&["--schema", schema.to_str().unwrap()], &script);
    assert_eq!(code, 0);

    // Corrupt the first op-log record: both ops become unreplayable.
    let ops_path = session_dir.join("session.ops");
    let ops = std::fs::read_to_string(&ops_path).unwrap();
    std::fs::write(&ops_path, format!("garbage line\n{ops}")).unwrap();

    // Strict: refuse the directory outright.
    let (_, stderr, code) = run_swsd_code(
        &["--strict", "--session", session_dir.to_str().unwrap()],
        "quit\n",
    );
    assert_eq!(code, 4, "stderr: {stderr}");
    assert!(stderr.contains("op-log line 1"), "{stderr}");

    // Salvage: the session runs, damage is reported, exit taints to 6.
    let (stdout, stderr, code) =
        run_swsd_code(&["--session", session_dir.to_str().unwrap()], "odl\nquit\n");
    assert_eq!(code, 6, "stderr: {stderr}");
    assert!(stderr.contains("recovery report:"), "{stderr}");
    assert!(stderr.contains("0 op(s) replayed, 3 dropped"), "{stderr}");
    assert!(stdout.contains("shrink wrap schema loaded"));

    // The salvage run healed and recommitted the directory: clean now.
    let (_, stderr, code) = run_swsd_code(&["--session", session_dir.to_str().unwrap()], "quit\n");
    assert_eq!(code, 0, "healed directory loads clean: {stderr}");
    assert!(session_dir.join("session.ops.quarantine.1").exists());
    std::fs::remove_dir_all(&session_dir).unwrap();
}

#[test]
fn ops_survive_without_an_explicit_resave() {
    let schema = schema_file();
    let session_dir = std::env::temp_dir().join(format!("swsd_autosave_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&session_dir);
    // Save first, then keep designing; never save again.
    let script = format!(
        "save {}\nadd_attribute(Employee, double, salary)\nquit\n",
        session_dir.display()
    );
    let (stdout, _, code) = run_swsd_code(&["--schema", schema.to_str().unwrap()], &script);
    assert_eq!(code, 0);
    assert!(stdout.contains("(autosave on)"));

    let (stdout, stderr, code) = run_swsd_code(
        &["--strict", "--session", session_dir.to_str().unwrap()],
        "odl\nquit\n",
    );
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("attribute double salary;"), "{stdout}");
    std::fs::remove_dir_all(&session_dir).unwrap();
}

#[test]
fn errors_in_session_do_not_kill_the_repl() {
    let schema = schema_file();
    let script = "add_type_definition(Person)\nadd_type_definition(Fresh)\nquit\n";
    let (stdout, _, ok) = run_swsd(&["--schema", schema.to_str().unwrap()], script);
    assert!(ok);
    assert!(stdout.contains("error: constraint violation"));
    assert!(stdout.contains("applied: add_type_definition(Fresh)"));
}

// --- flight recorder / crash dumps / profiler ------------------------------

/// Fresh per-test crash directory under the system temp dir.
fn crash_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("swsd_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn injected_panic_writes_a_checksummed_crash_report() {
    let schema = schema_file();
    let dir = crash_dir("panic");
    let (_, stderr, code) = run_swsd_env(
        &["--schema", schema.to_str().unwrap()],
        "",
        &[
            ("SWS_INJECT_PANIC", "1"),
            ("SWS_CRASH_DIR", dir.to_str().unwrap()),
        ],
    );
    assert_ne!(code, 0, "a panic must not exit 0");
    assert!(
        stderr.contains("crash report written to"),
        "stderr: {stderr}"
    );
    let report = std::fs::read_to_string(dir.join("crash-report.json")).expect("dump exists");
    let line = report.trim_end();
    sws_trace::export::jsonl::check_value(line).expect("dump is one valid JSON object");
    assert!(
        sws_designer::crash::checksum_valid(line),
        "self-checksum must verify: {line}"
    );
    assert!(line.contains("\"reason\":\"panic\""), "{line}");
    assert!(line.contains("injected panic (SWS_INJECT_PANIC)"), "{line}");
    // The panic fired inside a live span; the flight recorder names it.
    assert!(
        line.contains("\"active_spans\":[\"swsd.injected_panic\"]"),
        "active span stack missing: {line}"
    );
    assert!(
        line.contains(&format!("\"repo_path\":\"{}\"", schema.to_str().unwrap())),
        "{line}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_report_key_order_is_pinned() {
    let dir = crash_dir("keys");
    let (_, stderr, code) = run_swsd_env(
        &["--schema", "/nonexistent/no_such_schema.odl"],
        "",
        &[("SWS_CRASH_DIR", dir.to_str().unwrap())],
    );
    assert_eq!(code, 5, "unreadable schema is an I/O failure: {stderr}");
    let report = std::fs::read_to_string(dir.join("crash-report.json")).expect("dump exists");
    let line = report.trim_end();
    // The key order is part of the format: external tooling may parse the
    // dump positionally, and the checksum covers the exact byte sequence.
    assert_eq!(
        top_level_keys(line),
        [
            "schema_version",
            "reason",
            "message",
            "location",
            "exit_code",
            "sws_threads",
            "repo_path",
            "recovery",
            "active_spans",
            "counters",
            "events",
            "dropped",
            "checksum",
        ]
    );
    assert!(line.contains("\"schema_version\":1"), "{line}");
    assert!(line.contains("\"reason\":\"error_exit\""), "{line}");
    assert!(line.contains("\"exit_code\":5"), "{line}");
    assert!(sws_designer::crash::checksum_valid(line));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_strict_session_dumps_a_crash_report() {
    let schema = schema_file();
    let session_dir = std::env::temp_dir().join(format!("swsd_crash_sess_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&session_dir);
    let script = format!(
        "add_type_definition(Project)\nsave {}\nquit\n",
        session_dir.display()
    );
    let (_, _, code) = run_swsd_code(&["--schema", schema.to_str().unwrap()], &script);
    assert_eq!(code, 0);
    // Garble the op log, then reload strictly: exit 4 plus a dump that
    // carries the failure message.
    let log = session_dir.join("session.ops");
    std::fs::write(&log, "definitely-not-an-op\n").unwrap();
    let dir = crash_dir("strict");
    let (_, stderr, code) = run_swsd_env(
        &["--strict", "--session", session_dir.to_str().unwrap()],
        "quit\n",
        &[("SWS_CRASH_DIR", dir.to_str().unwrap())],
    );
    assert_eq!(code, 4, "stderr: {stderr}");
    let report = std::fs::read_to_string(dir.join("crash-report.json")).expect("dump exists");
    let line = report.trim_end();
    assert!(line.contains("\"reason\":\"error_exit\""), "{line}");
    assert!(line.contains("\"exit_code\":4"), "{line}");
    assert!(sws_designer::crash::checksum_valid(line));
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&session_dir).unwrap();
}

fn university_schema_file() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("swsd_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("university.odl");
    std::fs::write(&path, sws_corpus::university::SOURCE).unwrap();
    path
}

#[test]
fn profile_collapsed_is_flamegraph_loadable_and_structurally_golden() {
    let schema = university_schema_file();
    let (_, stderr, ok) = run_swsd(
        &[
            "--profile=collapsed",
            "--threads=1",
            "--schema",
            schema.to_str().unwrap(),
        ],
        "add_attribute(CourseOffering, string(8), wing)\ncheck\nquit\n",
    );
    assert!(ok, "stderr: {stderr}");
    let lines: Vec<&str> = stderr.lines().collect();
    assert!(!lines.is_empty(), "collapsed profile must not be empty");
    // Every line must load into flamegraph.pl / inferno: `path weight`
    // where path is `;`-separated frame names and weight a bare integer.
    for line in &lines {
        let (path, weight) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("not `path weight`: {line}"));
        assert!(
            path.split(';').all(|seg| {
                !seg.is_empty()
                    && seg
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_')
            }),
            "flamegraph-hostile frame name: {line}"
        );
        weight
            .parse::<u64>()
            .unwrap_or_else(|e| panic!("weight not an integer ({e}): {line}"));
    }
    // The span structure is deterministic at --threads=1 for this script;
    // only the weights vary run to run. Pin the full path set.
    let paths: Vec<&str> = lines
        .iter()
        .map(|l| l.rsplit_once(' ').unwrap().0)
        .collect();
    assert_eq!(
        paths,
        [
            "core.consistency",
            "core.consistency.full_sync",
            "core.consistency.report",
            "core.decompose",
            "core.decompose;core.decompose.generalizations",
            "core.decompose;core.decompose.hierarchies",
            "core.decompose;core.decompose.wagon_wheels",
            "odl.parse",
            "odl.parse;odl.parse_interface",
            "ws.apply",
            "ws.apply;core.apply_op",
            "ws.apply;core.preconditions",
        ],
        "collapsed stack structure changed"
    );
}

#[test]
fn profile_tree_renders_a_call_tree_with_counts() {
    let schema = schema_file();
    let (_, stderr, ok) = run_swsd(
        &[
            "--profile",
            "--threads=1",
            "--schema",
            schema.to_str().unwrap(),
        ],
        "add_attribute(Person, long, age)\nquit\n",
    );
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("--- profile ---"), "{stderr}");
    assert!(stderr.contains("ws.apply"), "{stderr}");
    assert!(
        stderr.contains("x1"),
        "per-node invocation counts: {stderr}"
    );
}

#[test]
fn help_documents_profile_and_crash_reports() {
    let (stdout, _, ok) = run_swsd(&["--help"], "");
    assert!(ok);
    assert!(stdout.contains("--profile[=tree|collapsed]"));
    assert!(stdout.contains("crash-report.json"));
    assert!(stdout.contains("SWS_CRASH_DIR"));
}

// --- checkpointing / compaction --------------------------------------------

#[test]
fn checkpoint_command_truncates_the_log_and_resumes_fast() {
    let schema = schema_file();
    let session_dir = std::env::temp_dir().join(format!("swsd_ckpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&session_dir);
    let script = format!(
        "save {}\nadd_type_definition(Project)\nadd_type_definition(Task)\n\
         checkpoint\nadd_type_definition(Sprint)\nquit\n",
        session_dir.display()
    );
    let (stdout, stderr, code) = run_swsd_code(&["--schema", schema.to_str().unwrap()], &script);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(
        stdout.contains("checkpoint generation 1 written: 2 op(s) covered, 2 archived"),
        "{stdout}"
    );
    assert!(session_dir.join("snapshot.1").exists());
    assert!(session_dir.join("session.ops.archive").exists());

    // Resume strictly: the snapshot plus the one-op tail rebuild the state
    // without ever touching the archive.
    let (stdout, stderr, code) = run_swsd_code(
        &["--strict", "--session", session_dir.to_str().unwrap()],
        "odl\nquit\n",
    );
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("interface Project"), "{stdout}");
    assert!(stdout.contains("interface Sprint"), "{stdout}");
    std::fs::remove_dir_all(&session_dir).unwrap();
}

#[test]
fn checkpoint_without_a_session_directory_is_an_error() {
    let schema = schema_file();
    let (stdout, _, code) = run_swsd_code(
        &["--schema", schema.to_str().unwrap()],
        "checkpoint\nquit\n",
    );
    assert_eq!(code, 0, "command errors do not kill the repl");
    assert!(stdout.contains("no session directory attached"), "{stdout}");
}

#[test]
fn checkpoint_interval_flag_autocheckpoints_and_validates() {
    // Bad values are usage errors, not silent defaults.
    for bad in ["0", "-3", "many"] {
        let arg = format!("--checkpoint-interval={bad}");
        let (_, stderr, code) = run_swsd_code(&[arg.as_str()], "");
        assert_eq!(code, 2, "`{bad}` must be a usage error");
        assert!(
            stderr.contains("--checkpoint-interval wants a positive integer"),
            "{stderr}"
        );
    }
    let (stdout, _, ok) = run_swsd(&["--help"], "");
    assert!(ok);
    assert!(stdout.contains("--checkpoint-interval=K"), "{stdout}");
    assert!(stdout.contains("degraded fallback layer"), "{stdout}");

    // With K=2, the second committed op checkpoints without being asked.
    let schema = schema_file();
    let session_dir = std::env::temp_dir().join(format!("swsd_ckptiv_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&session_dir);
    let script = format!(
        "save {}\nadd_type_definition(Project)\nadd_type_definition(Task)\nquit\n",
        session_dir.display()
    );
    let (_, stderr, code) = run_swsd_code(
        &[
            "--checkpoint-interval=2",
            "--schema",
            schema.to_str().unwrap(),
        ],
        &script,
    );
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(session_dir.join("snapshot.1").exists(), "auto-checkpoint");
    let tail = std::fs::read_to_string(session_dir.join("session.ops")).unwrap();
    assert!(tail.is_empty(), "tail truncated, got {tail:?}");
    std::fs::remove_dir_all(&session_dir).unwrap();
}

#[test]
fn corrupt_snapshot_degrades_to_exit_7_then_heals() {
    let schema = schema_file();
    let session_dir = std::env::temp_dir().join(format!("swsd_degraded_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&session_dir);
    let script = format!(
        "save {}\nadd_type_definition(Project)\ncheckpoint\nquit\n",
        session_dir.display()
    );
    let (_, _, code) = run_swsd_code(&["--schema", schema.to_str().unwrap()], &script);
    assert_eq!(code, 0);
    let snap = session_dir.join("snapshot.1");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&snap, &bytes).unwrap();

    // Strict refuses a damaged snapshot outright.
    let (_, stderr, code) = run_swsd_code(
        &["--strict", "--session", session_dir.to_str().unwrap()],
        "quit\n",
    );
    assert_eq!(code, 4, "stderr: {stderr}");

    // Salvage rebuilds from the archived log: right state, no data loss,
    // but the degraded load path taints the exit code to 7 (not 6).
    let (stdout, stderr, code) =
        run_swsd_code(&["--session", session_dir.to_str().unwrap()], "odl\nquit\n");
    assert_eq!(code, 7, "stderr: {stderr}");
    assert!(stderr.contains("FALLBACK to full replay"), "{stderr}");
    assert!(stdout.contains("interface Project"), "{stdout}");

    // The salvage healed the directory; the next load is clean.
    let (_, stderr, code) = run_swsd_code(&["--session", session_dir.to_str().unwrap()], "quit\n");
    assert_eq!(code, 0, "healed directory loads clean: {stderr}");
    std::fs::remove_dir_all(&session_dir).unwrap();
}
