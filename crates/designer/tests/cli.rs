//! End-to-end test of the `swsd` binary: feed it a scripted session on
//! stdin and check the transcript, exactly as a user would drive it.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_swsd(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_swsd"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("swsd spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("write");
    let output = child.wait_with_output().expect("swsd exits");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.success(),
    )
}

fn schema_file() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("swsd_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("uni.odl");
    std::fs::write(
        &path,
        "interface Person { attribute string name; }\n\
         interface Employee : Person { attribute long badge; }\n",
    )
    .unwrap();
    path
}

#[test]
fn scripted_session_produces_expected_transcript() {
    let schema = schema_file();
    let script = "\
concepts
add_attribute(Employee, double, salary)
context generalization
modify_attribute(Employee, badge, Person)
map
odl
quit
";
    let (stdout, stderr, ok) = run_swsd(&["--schema", schema.to_str().unwrap()], script);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("shrink wrap schema loaded: 2 types"));
    assert!(stdout.contains("wagon wheel: Person"));
    assert!(stdout.contains("applied: add_attribute(Employee, double, salary)"));
    assert!(stdout.contains("applied: modify_attribute(Employee, badge, Person)"));
    assert!(stdout.contains("moved to `Person`"));
    assert!(stdout.contains("attribute double salary;"));
}

#[test]
fn save_and_resume_via_cli() {
    let schema = schema_file();
    let session_dir = std::env::temp_dir().join(format!("swsd_session_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&session_dir);
    let save_script = format!(
        "add_type_definition(Project)\nsave {}\nquit\n",
        session_dir.display()
    );
    let (stdout, stderr, ok) = run_swsd(&["--schema", schema.to_str().unwrap()], &save_script);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("saved to"));

    let (stdout, stderr, ok) = run_swsd(
        &["--session", session_dir.to_str().unwrap()],
        "odl\nlog\nquit\n",
    );
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("interface Project"));
    assert!(stdout.contains("wagon_wheel\tadd_type_definition(Project)"));
    std::fs::remove_dir_all(&session_dir).unwrap();
}

#[test]
fn trace_json_flag_dumps_checker_valid_jsonl_to_stderr() {
    let schema = schema_file();
    // Parse happens at load, decomposition at `concepts`, a ModOp apply,
    // and a consistency pass at `check` — the whole pipeline in one script.
    let script = "concepts\nadd_type_definition(Project)\ncheck\nquit\n";
    let (stdout, stderr, ok) = run_swsd(
        &["--trace=json", "--schema", schema.to_str().unwrap()],
        script,
    );
    assert!(ok, "stderr: {stderr}");
    // stdout is untouched by tracing.
    assert!(stdout.contains("applied: add_type_definition(Project)"));
    assert!(!stdout.contains("span_open"));
    // stderr is non-empty, checker-valid JSONL...
    let lines = sws_trace::export::jsonl::check(&stderr)
        .unwrap_or_else(|e| panic!("invalid JSONL: {e}\n{stderr}"));
    assert!(lines > 0);
    // ...with spans for every pipeline layer.
    for name in [
        "odl.parse",
        "core.decompose",
        "ws.apply",
        "core.consistency.check",
    ] {
        assert!(
            stderr.contains(&format!("\"name\":\"{name}\"")),
            "missing span `{name}` in:\n{stderr}"
        );
    }
}

#[test]
fn trace_flag_dumps_tree_and_summary_to_stderr() {
    let schema = schema_file();
    let script = "add_type_definition(Project)\nquit\n";
    let (_, stderr, ok) = run_swsd(&["--trace", "--schema", schema.to_str().unwrap()], script);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("--- trace ---"), "{stderr}");
    assert!(stderr.contains("ws.apply"), "{stderr}");
    assert!(stderr.contains("--- summary ---"), "{stderr}");
    assert!(stderr.contains("ws.ops_applied = 1"), "{stderr}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let (_, stderr, ok) = run_swsd(&[], "");
    assert!(!ok);
    assert!(stderr.contains("usage: swsd"));
    let (_, stderr, ok) = run_swsd(&["--schema", "/nonexistent/x.odl"], "");
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn errors_in_session_do_not_kill_the_repl() {
    let schema = schema_file();
    let script = "add_type_definition(Person)\nadd_type_definition(Fresh)\nquit\n";
    let (stdout, _, ok) = run_swsd(&["--schema", schema.to_str().unwrap()], script);
    assert!(ok);
    assert!(stdout.contains("error: constraint violation"));
    assert!(stdout.contains("applied: add_type_definition(Fresh)"));
}
