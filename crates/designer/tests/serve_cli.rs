//! End-to-end tests for the `swsd serve` lifecycle: argument validation,
//! bind failures, refusal to serve damaged directories, and a clean
//! TCP-driven shutdown that flushes autosave state to disk.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

fn run_swsd(args: &[&str], stdin: &str) -> (String, String, i32) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_swsd"))
        .env("SWS_CRASH_DIR", std::env::temp_dir())
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("swsd spawns");
    let _ = child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes());
    let output = child.wait_with_output().expect("swsd exits");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.code().expect("not killed by signal"),
    )
}

fn schema_file(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swsd_serve_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("uni.odl");
    std::fs::write(
        &path,
        "interface Person { attribute string name; }\n\
         interface Employee : Person { attribute long badge; }\n",
    )
    .unwrap();
    path
}

/// Spawn `swsd ... serve --addr=127.0.0.1:0` and parse the bound address
/// from the `swsd: serving on HOST:PORT` line it prints for supervisors.
fn spawn_serve(args: &[&str]) -> (Child, BufReader<ChildStdout>, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_swsd"))
        .env("SWS_CRASH_DIR", std::env::temp_dir())
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("swsd spawns");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read serving line");
    let addr = line
        .trim()
        .strip_prefix("swsd: serving on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .parse()
        .expect("printed address parses");
    (child, stdout, addr)
}

/// One JSONL request/response round trip against a live server.
fn rpc(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send");
    stream.flush().expect("flush");
    let mut response = String::new();
    reader.read_line(&mut response).expect("recv");
    response.trim_end().to_string()
}

#[test]
fn serve_without_addr_is_a_usage_error() {
    let schema = schema_file("noaddr");
    let (_, stderr, code) = run_swsd(&["--schema", schema.to_str().unwrap(), "serve"], "");
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("usage"), "{stderr}");

    // `serve` with no --schema/--session at all is also a usage error.
    let (_, stderr, code) = run_swsd(&["serve"], "");
    assert_eq!(code, 2, "stderr: {stderr}");
}

#[test]
fn serve_with_malformed_addr_exits_2() {
    let schema = schema_file("badaddr");
    for bad in ["--addr=nonsense", "--addr=127.0.0.1", "--addr=:0:0"] {
        let (_, stderr, code) = run_swsd(&["--schema", schema.to_str().unwrap(), bad, "serve"], "");
        assert_eq!(code, 2, "`{bad}` must be a usage error; stderr: {stderr}");
        assert!(
            stderr.contains("--addr wants HOST:PORT"),
            "`{bad}`: {stderr}"
        );
    }
}

#[test]
fn serve_on_a_port_already_in_use_exits_5() {
    let schema = schema_file("inuse");
    let holder = TcpListener::bind("127.0.0.1:0").expect("bind holder");
    let addr = holder.local_addr().expect("addr");
    let (_, stderr, code) = run_swsd(
        &[
            "--schema",
            schema.to_str().unwrap(),
            &format!("--addr={addr}"),
            "serve",
        ],
        "",
    );
    assert_eq!(code, 5, "stderr: {stderr}");
    assert!(stderr.contains("cannot bind"), "{stderr}");
}

#[test]
fn serve_refuses_a_degraded_directory_before_binding() {
    let schema = schema_file("degraded");
    let session_dir = std::env::temp_dir().join(format!("swsd_srv_degr_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&session_dir);
    let script = format!(
        "save {}\nadd_type_definition(Project)\ncheckpoint\nquit\n",
        session_dir.display()
    );
    let (_, _, code) = run_swsd(&["--schema", schema.to_str().unwrap()], &script);
    assert_eq!(code, 0);
    // Corrupt the committed snapshot: salvage falls back to full replay —
    // right state, but a degraded load path a daemon must not serve.
    let snap = session_dir.join("snapshot.1");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&snap, &bytes).unwrap();

    let (stdout, stderr, code) = run_swsd(
        &[
            "--session",
            session_dir.to_str().unwrap(),
            "--addr=127.0.0.1:0",
            "serve",
        ],
        "",
    );
    assert_eq!(code, 7, "stderr: {stderr}");
    assert!(
        stderr.contains("refusing to serve a degraded fallback load"),
        "{stderr}"
    );
    assert!(
        !stdout.contains("serving on"),
        "refused before binding, so no serving line: {stdout}"
    );
    std::fs::remove_dir_all(&session_dir).unwrap();
}

#[test]
fn clean_shutdown_flushes_autosave_and_exits_0() {
    let schema = schema_file("shutdown");
    let session_dir = std::env::temp_dir().join(format!("swsd_srv_flush_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&session_dir);
    let script = format!("save {}\nquit\n", session_dir.display());
    let (_, _, code) = run_swsd(&["--schema", schema.to_str().unwrap()], &script);
    assert_eq!(code, 0);

    let (mut child, _stdout, addr) = spawn_serve(&[
        "--session",
        session_dir.to_str().unwrap(),
        "--addr=127.0.0.1:0",
        "serve",
    ]);
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let opened = rpc(
        &mut stream,
        &mut reader,
        "{\"type\":\"open\",\"session\":\"cli\"}",
    );
    assert!(opened.contains("\"type\":\"opened\""), "{opened}");
    let accepted = rpc(
        &mut stream,
        &mut reader,
        "{\"type\":\"submit\",\"session\":\"cli\",\"base_rev\":0,\
         \"ops\":[{\"stmt\":\"add_type_definition(ServedViaTcp)\"}]}",
    );
    assert!(accepted.contains("\"type\":\"accepted\""), "{accepted}");
    let bye = rpc(&mut stream, &mut reader, "{\"type\":\"shutdown\"}");
    assert!(bye.contains("\"type\":\"bye\""), "{bye}");

    let status = child.wait().expect("server exits");
    assert_eq!(status.code(), Some(0), "clean shutdown exits 0");

    // The accepted op reached the session directory: the live append (or
    // the final save) must have flushed it.
    let ops = std::fs::read_to_string(session_dir.join("session.ops")).unwrap_or_default();
    let has_tail = ops.contains("add_type_definition(ServedViaTcp)");
    // ...and a fresh load of the directory sees the type either way.
    let (stdout, stderr, code) =
        run_swsd(&["--session", session_dir.to_str().unwrap()], "odl\nquit\n");
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(
        stdout.contains("interface ServedViaTcp"),
        "tail flushed: {has_tail}; reloaded odl:\n{stdout}"
    );
    std::fs::remove_dir_all(&session_dir).unwrap();
}
