//! End-to-end test of the `swsdiff` binary.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, Option<i32>) {
    let output = Command::new(env!("CARGO_BIN_EXE_swsdiff"))
        .args(args)
        .output()
        .expect("swsdiff runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.code(),
    )
}

fn write(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("swsdiff_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

#[test]
fn identical_schemas_exit_zero() {
    let a = write("same_a.odl", "interface A { attribute long x; }");
    let b = write("same_b.odl", "interface A { attribute long x; }");
    let (stdout, _, code) = run(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("identical"));
}

#[test]
fn differing_schemas_print_script_and_exit_one() {
    let a = write("diff_a.odl", "interface A { attribute long x; }");
    let b = write(
        "diff_b.odl",
        "interface A { attribute long x; attribute string y; } interface B : A { }",
    );
    let (stdout, stderr, code) = run(&["--check", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("add_type_definition(B)"), "{stdout}");
    assert!(stdout.contains("add_attribute(A, string, y)"), "{stdout}");
    assert!(stdout.contains("add_supertype(B, A)"), "{stdout}");
    assert!(stderr.contains("verified: 3 operation(s)"), "{stderr}");
}

#[test]
fn parse_errors_exit_two() {
    let a = write("bad.odl", "interface { garbage");
    let b = write("ok.odl", "interface A { }");
    let (_, stderr, code) = run(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("swsdiff:"));
    let (_, stderr, code) = run(&["only_one.odl"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage:"));
}
