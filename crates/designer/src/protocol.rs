//! The JSONL wire format for the design service.
//!
//! One request per line, one response per line. Requests are plain JSON
//! objects with a `type` field (any key order). Responses are serialized
//! with a **pinned key order** and end in a SplitMix64 checksum field —
//! the same self-verifying single-line idiom as `crash-report.json` and
//! the analyzer's `--lint=json` output, so a truncated or hand-edited
//! response is detectable with [`crate::crash::checksum_valid`]. The
//! golden protocol fixtures (`tests/serve_protocol.rs`) pin the rendering
//! byte-for-byte.
//!
//! See `docs/serve.md` for the full schema.

use sws_core::ConceptKind;
use sws_repository::checksum;
use sws_trace::export::escape_json;

use crate::service::{ErrorCode, LogRecord, OpEnvelope, Request, Response};

// ---------------------------------------------------------------------
// Rendering (responses)
// ---------------------------------------------------------------------

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push_str(&format!(",\"{key}\":\"{}\"", escape_json(value)));
}

fn push_records(out: &mut String, key: &str, records: &[LogRecord]) {
    out.push_str(&format!(",\"{key}\":["));
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"seq\":{},\"session\":\"{}\",\"context\":\"{}\",\"stmt\":\"{}\"}}",
            r.seq,
            escape_json(&r.session),
            r.context.tag(),
            escape_json(&r.statement)
        ));
    }
    out.push(']');
}

/// Serialize a response as one JSON line (no trailing newline), closing
/// with the checksum over every preceding byte.
pub fn render_response(resp: &Response) -> String {
    let mut out = String::with_capacity(128);
    out.push_str(&format!("{{\"type\":\"{}\"", resp.tag()));
    match resp {
        Response::Opened {
            session,
            rev,
            types,
            concepts,
        } => {
            push_str_field(&mut out, "session", session);
            out.push_str(&format!(
                ",\"rev\":{rev},\"types\":{types},\"concepts\":{concepts}"
            ));
        }
        Response::Accepted {
            session,
            base_rev,
            rev,
            applied,
            warnings,
        } => {
            push_str_field(&mut out, "session", session);
            out.push_str(&format!(
                ",\"base_rev\":{base_rev},\"rev\":{rev},\"applied\":{applied},\"warnings\":["
            ));
            for (i, w) in warnings.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\"", escape_json(w)));
            }
            out.push(']');
        }
        Response::Conflict {
            session,
            base_rev,
            rev,
            auto_rebasable,
            delta,
            conflicts,
        } => {
            push_str_field(&mut out, "session", session);
            out.push_str(&format!(
                ",\"base_rev\":{base_rev},\"rev\":{rev},\"auto_rebasable\":{auto_rebasable}"
            ));
            push_records(&mut out, "delta", delta);
            out.push_str(",\"conflicts\":[");
            for (i, c) in conflicts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"op\":{},\"seq\":{},\"reason\":\"{}\"}}",
                    c.op,
                    c.seq,
                    escape_json(&c.reason)
                ));
            }
            out.push(']');
        }
        Response::Rejected {
            session,
            rev,
            index,
            error,
        } => {
            push_str_field(&mut out, "session", session);
            out.push_str(&format!(",\"rev\":{rev},\"index\":{index}"));
            push_str_field(&mut out, "error", error);
        }
        Response::Linted {
            rev,
            ops,
            passes,
            findings,
        } => {
            out.push_str(&format!(
                ",\"rev\":{rev},\"ops\":{ops},\"passes\":{passes},\"findings\":["
            ));
            for (i, f) in findings.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"index\":{},\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"}}",
                    f.index,
                    escape_json(&f.code),
                    escape_json(&f.severity),
                    escape_json(&f.message)
                ));
            }
            out.push(']');
        }
        Response::Reported {
            rev,
            types,
            concepts,
            errors,
            warnings,
        } => {
            out.push_str(&format!(
                ",\"rev\":{rev},\"types\":{types},\"concepts\":{concepts},\
                 \"errors\":{errors},\"warnings\":{warnings}"
            ));
        }
        Response::Exported { rev, odl } => {
            out.push_str(&format!(",\"rev\":{rev}"));
            push_str_field(&mut out, "odl", odl);
        }
        Response::LogSlice { rev, since, ops } => {
            out.push_str(&format!(",\"rev\":{rev},\"since\":{since}"));
            push_records(&mut out, "ops", ops);
        }
        Response::Checkpointed {
            rev,
            generation,
            ops_covered,
        } => {
            out.push_str(&format!(",\"rev\":{rev},\"generation\":"));
            match generation {
                Some(g) => out.push_str(&g.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(&format!(",\"ops_covered\":{ops_covered}"));
        }
        Response::Pong { rev, sessions } => {
            out.push_str(&format!(",\"rev\":{rev},\"sessions\":{sessions}"));
        }
        Response::Bye => {}
        Response::Error { code, message } => {
            push_str_field(&mut out, "code", code.tag());
            push_str_field(&mut out, "message", message);
        }
    }
    let sum = checksum::checksum(out.as_bytes());
    out.push_str(&format!(",\"checksum\":\"{}\"}}", checksum::to_hex(sum)));
    out
}

// ---------------------------------------------------------------------
// Parsing (requests)
// ---------------------------------------------------------------------

/// Parse one request line. The error string is the human half of a
/// `malformed_frame` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = Json::parse(line)?;
    let obj = value.as_object().ok_or("request is not a JSON object")?;
    let ty = get_str(obj, "type")?;
    match ty {
        "open" => Ok(Request::Open {
            session: get_str(obj, "session")?.to_string(),
        }),
        "submit" => Ok(Request::Submit {
            session: get_str(obj, "session")?.to_string(),
            base_rev: get_u64(obj, "base_rev")?,
            ops: get_ops(obj)?,
        }),
        "lint" => Ok(Request::Lint {
            session: get_str(obj, "session")?.to_string(),
            ops: get_ops(obj)?,
        }),
        "report" => Ok(Request::Report {
            session: get_str(obj, "session")?.to_string(),
        }),
        "export" => Ok(Request::Export {
            session: get_str(obj, "session")?.to_string(),
        }),
        "log" => Ok(Request::Log {
            session: get_str(obj, "session")?.to_string(),
            since: get_u64(obj, "since").unwrap_or(0),
        }),
        "checkpoint" => Ok(Request::Checkpoint {
            session: get_str(obj, "session")?.to_string(),
        }),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown request type `{other}`")),
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{key}`"))
}

fn get_str<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a str, String> {
    get(obj, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` must be a string"))
}

fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    get(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` must be a non-negative integer"))
}

/// The `ops` array: `[{"context": "<tag>", "stmt": "<statement>"}, …]`.
/// `context` defaults to `wagon_wheel`.
fn get_ops(obj: &[(String, Json)]) -> Result<Vec<OpEnvelope>, String> {
    let arr = get(obj, "ops")?
        .as_array()
        .ok_or("field `ops` must be an array")?;
    arr.iter()
        .enumerate()
        .map(|(i, item)| {
            let op = item
                .as_object()
                .ok_or_else(|| format!("ops[{i}] must be an object"))?;
            let context = match op.iter().find(|(k, _)| k == "context") {
                None => ConceptKind::WagonWheel,
                Some((_, v)) => {
                    let tag = v
                        .as_str()
                        .ok_or_else(|| format!("ops[{i}].context must be a string"))?;
                    ConceptKind::from_tag(tag).ok_or_else(|| {
                        format!(
                            "ops[{i}].context must be wagon_wheel | generalization | \
                             aggregation | instance_of, got `{tag}`"
                        )
                    })?
                }
            };
            let statement = get_str(op, "stmt")
                .map_err(|_| format!("ops[{i}] is missing the `stmt` string"))?
                .to_string();
            Ok(OpEnvelope { context, statement })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------

/// A minimal JSON value — just enough for the request grammar (objects,
/// arrays, strings, non-negative integers, booleans, null; floats and
/// negatives are rejected, the protocol never produces them). The bench
/// crate has a sibling parser for `BENCH_*.json`; it cannot be shared
/// (the dependency runs the other way), and neither wants a full JSON
/// library for a five-field protocol. Public so protocol clients (the
/// differential and crash test harnesses) can parse response lines with
/// the same grammar the server parses requests with.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The fields in source order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Field lookup on an object (`None` on other variants too).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Parse one complete JSON value; trailing bytes are an error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes after the JSON value (at {pos})"));
        }
        Ok(value)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            if matches!(b.get(*pos), Some(b'.') | Some(b'e') | Some(b'E')) {
                return Err(format!(
                    "only non-negative integers are accepted (at byte {start})"
                ));
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        Some(c) => Err(format!("unexpected `{}` at byte {}", *c as char, *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Continuation bytes of multi-byte UTF-8 sequences pass
                // through unchanged.
                let start = *pos - 1;
                let mut end = *pos;
                while end < b.len() && (b[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..end]).map_err(|_| "invalid UTF-8")?);
                *pos = end;
            }
        }
    }
    Err("unterminated string".to_string())
}

// ---------------------------------------------------------------------
// The transport-independent dispatch helper
// ---------------------------------------------------------------------

/// Parse one frame, dispatch it, and return both the typed response and
/// its rendered line. A parse failure becomes a `malformed_frame` error
/// response — the connection survives.
pub fn respond(service: &crate::service::DesignService, line: &str) -> (Response, String) {
    let response = match parse_request(line) {
        Ok(request) => service.handle(request),
        Err(message) => Response::Error {
            code: ErrorCode::MalformedFrame,
            message,
        },
    };
    let rendered = render_response(&response);
    (response, rendered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::checksum_valid;

    #[test]
    fn requests_parse_with_any_key_order() {
        let req = parse_request(
            r#"{"base_rev": 3, "ops": [{"stmt": "add_type_definition(X)"}], "type": "submit", "session": "s"}"#,
        )
        .expect("parses");
        match req {
            Request::Submit {
                session,
                base_rev,
                ops,
            } => {
                assert_eq!(session, "s");
                assert_eq!(base_rev, 3);
                assert_eq!(ops.len(), 1);
                assert_eq!(ops[0].context, ConceptKind::WagonWheel);
                assert_eq!(ops[0].statement, "add_type_definition(X)");
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"type":"ping"}"#),
            Ok(Request::Ping)
        ));
        assert!(matches!(
            parse_request(r#"{"type":"log","session":"s"}"#),
            Ok(Request::Log { since: 0, .. })
        ));
    }

    #[test]
    fn malformed_frames_are_rejected_with_reasons() {
        for (frame, needle) in [
            ("not json", "unexpected"),
            ("{\"type\":\"submit\",\"session\":\"s\"}", "base_rev"),
            ("{\"type\":\"warp\"}", "unknown request type"),
            ("{\"type\":\"open\"}", "missing field `session`"),
            ("{\"type\":\"ping\"} trailing", "trailing"),
            (
                r#"{"type":"submit","session":"s","base_rev":0,"ops":[{"stmt":"x","context":"nope"}]}"#,
                "context",
            ),
            (
                r#"{"type":"submit","session":"s","base_rev":1.5,"ops":[]}"#,
                "integer",
            ),
        ] {
            let err = parse_request(frame).expect_err(frame);
            assert!(err.contains(needle), "`{frame}` → `{err}`");
        }
    }

    #[test]
    fn responses_are_checksummed_single_lines() {
        let resp = Response::Conflict {
            session: "alice".into(),
            base_rev: 2,
            rev: 4,
            auto_rebasable: true,
            delta: vec![crate::service::LogRecord {
                seq: 2,
                session: "bob".into(),
                context: ConceptKind::WagonWheel,
                statement: "add_type_definition(X)".into(),
            }],
            conflicts: vec![],
        };
        let line = render_response(&resp);
        assert!(!line.contains('\n'));
        assert!(checksum_valid(&line), "{line}");
        sws_trace::export::jsonl::check_value(&line).expect("valid JSON");
        // Pinned key order is part of the format.
        let keys = [
            "type",
            "session",
            "base_rev",
            "rev",
            "auto_rebasable",
            "delta",
            "conflicts",
            "checksum",
        ];
        let mut last = 0;
        for key in keys {
            let at = line.find(&format!("\"{key}\":")).expect(key);
            assert!(at >= last, "key {key} out of order in {line}");
            last = at;
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let parsed = Json::parse(r#"{"a":"tab\tnl\nq\"uniAé"}"#).expect("parses");
        let obj = parsed.as_object().expect("object");
        assert_eq!(obj[0].1.as_str(), Some("tab\tnl\nq\"uniAé"));
    }
}
