//! The interactive schema designer (paper Fig. 1, activity 4).
//!
//! The paper's tool presents the shrink wrap schema one concept schema at a
//! time; the designer issues modification operations against the selected
//! concept schema and receives feedback (errors, warnings, impact). The
//! GUI was explicitly left unfinished in the paper; this crate implements
//! the complete interactive *semantics* behind a programmatic [`Session`]
//! API and a textual REPL (the `swsd` binary), exercising the same
//! pipeline a graphical front end would.
#![forbid(unsafe_code)]

pub mod command;
pub mod crash;
pub mod protocol;
pub mod serve;
pub mod service;
pub mod session;

pub use command::{execute, execute_expecting_output, CommandOutcome, UnexpectedQuit};
pub use protocol::{parse_request, render_response, respond};
pub use service::{DesignService, OpEnvelope, Request, Response};
pub use session::{Session, SessionError};
