//! `swsdiff` — diff two extended-ODL schemas and synthesize the
//! modification-operation script that transforms one into the other (the
//! constructive §3.5 completeness argument as a command-line tool).
//!
//! ```text
//! swsdiff <old.odl> <new.odl>            print the op script
//! swsdiff --check <old.odl> <new.odl>    also replay + verify, print stats
//! ```
//!
//! Exit code 0 when the schemas are identical, 1 when they differ, 2 on
//! error — usable as a schema drift check in CI.

use std::process::ExitCode;

use sws_core::oplang::print_script;
use sws_core::ops::synthesize::synthesize;
use sws_core::Workspace;
use sws_model::{graph_to_schema, schema_to_graph, SchemaGraph};
use sws_odl::parse_schema;

fn load(path: &str) -> Result<SchemaGraph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let ast = parse_schema(&text).map_err(|e| format!("{path}: {e}"))?;
    schema_to_graph(&ast).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (check, files): (bool, Vec<&String>) = match args.as_slice() {
        [flag, rest @ ..] if flag == "--check" => (true, rest.iter().collect()),
        rest => (false, rest.iter().collect()),
    };
    let [old_path, new_path] = files.as_slice() else {
        eprintln!("usage: swsdiff [--check] <old.odl> <new.odl>");
        return ExitCode::from(2);
    };

    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("swsdiff: {e}");
            return ExitCode::from(2);
        }
    };

    let script = synthesize(&old, &new);
    if script.is_empty() {
        println!("// schemas are identical");
        return ExitCode::SUCCESS;
    }
    print!("{}", print_script(&script));

    if check {
        let mut ws = Workspace::new(old);
        for (i, op) in script.iter().enumerate() {
            let context = {
                let matrix = sws_core::ops::PermissionMatrix::new();
                if matrix.allows(sws_core::ConceptKind::WagonWheel, op.kind()) {
                    sws_core::ConceptKind::WagonWheel
                } else {
                    match matrix.permitting_contexts(op.kind()).first() {
                        Some(&context) => context,
                        None => {
                            eprintln!(
                                "swsdiff: internal error: no context permits op {i} ({})",
                                sws_core::oplang::print_op(op)
                            );
                            return ExitCode::from(2);
                        }
                    }
                }
            };
            if let Err(e) = ws.apply(context, op.clone()) {
                eprintln!("swsdiff: replay failed at op {i}: {e}");
                return ExitCode::from(2);
            }
        }
        if graph_to_schema(ws.working()).interfaces != graph_to_schema(&new).interfaces {
            eprintln!("swsdiff: internal error: replay does not reach the target");
            return ExitCode::from(2);
        }
        eprintln!(
            "// verified: {} operation(s) transform {} into {}",
            script.len(),
            old_path,
            new_path
        );
    }
    ExitCode::FAILURE // schemas differ
}
