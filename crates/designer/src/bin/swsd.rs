//! `swsd` — the interactive shrink-wrap-schema designer.
//!
//! Usage:
//!
//! ```text
//! swsd --schema <shrink_wrap.odl>   start a fresh session on a schema
//! swsd --session <dir>              resume a saved session
//! ```
//!
//! Reads commands from stdin (see `help`), writes to stdout. Scriptable:
//! `swsd --schema uni.odl < script.txt`.

use std::io::{self, BufRead, Write};
use std::path::Path;
use std::process::ExitCode;

use sws_designer::{execute, CommandOutcome, Session};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let session = match args.as_slice() {
        [flag, value] if flag == "--schema" => {
            let source = match std::fs::read_to_string(value) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("swsd: cannot read {value}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            Session::from_odl(&source)
        }
        [flag, value] if flag == "--session" => Session::load(Path::new(value)),
        _ => {
            eprintln!("usage: swsd --schema <file.odl> | --session <dir>");
            return ExitCode::FAILURE;
        }
    };
    let mut session = match session {
        Ok(s) => s,
        Err(e) => {
            eprintln!("swsd: {e}");
            return ExitCode::FAILURE;
        }
    };

    let created = session.repository().created_roots().to_vec();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(
        out,
        "shrink wrap schema loaded: {} types, {} concept schemas (`help` for commands)",
        session.repository().workspace().working().type_count(),
        session.concept_list().len()
    );
    for root in created {
        let _ = writeln!(
            out,
            "note: synthesized abstract root `{root}` (single-root rule)"
        );
    }

    let stdin = io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        match execute(&mut session, &line) {
            CommandOutcome::Continue(text) => {
                let _ = write!(out, "{text}");
                let _ = out.flush();
            }
            CommandOutcome::Quit => break,
        }
    }
    ExitCode::SUCCESS
}
