//! `swsd` — the interactive shrink-wrap-schema designer.
//!
//! Usage:
//!
//! ```text
//! swsd --schema <shrink_wrap.odl>   start a fresh session on a schema
//! swsd --session <dir>              resume a saved session
//! ```
//!
//! Reads commands from stdin (see `help`), writes to stdout. Scriptable:
//! `swsd --schema uni.odl < script.txt`.
//!
//! Add `--trace` to record structured spans for the whole session and dump
//! a human-readable trace tree plus a counter/timing summary to stderr on
//! exit; `--trace=json` dumps the raw trace as JSON lines instead (one
//! object per span/event), for machine consumption.

use std::io::{self, BufRead, Write};
use std::path::Path;
use std::process::ExitCode;

use sws_designer::{execute, CommandOutcome, Session};
use sws_trace::{render_tree, to_jsonl, Recorder, TraceSummary};

#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceMode {
    Tree,
    Json,
}

fn main() -> ExitCode {
    let mut trace_mode = None;
    let mut args = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--trace" => trace_mode = Some(TraceMode::Tree),
            "--trace=json" => trace_mode = Some(TraceMode::Json),
            _ => args.push(arg),
        }
    }

    let recorder = trace_mode.map(|_| {
        let rec = Recorder::new();
        sws_trace::set_global(rec.clone());
        rec
    });

    let session = match args.as_slice() {
        [flag, value] if flag == "--schema" => {
            let source = match std::fs::read_to_string(value) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("swsd: cannot read {value}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            Session::from_odl(&source)
        }
        [flag, value] if flag == "--session" => Session::load(Path::new(value)),
        _ => {
            eprintln!("usage: swsd [--trace[=json]] --schema <file.odl> | --session <dir>");
            return ExitCode::FAILURE;
        }
    };
    let mut session = match session {
        Ok(s) => s,
        Err(e) => {
            eprintln!("swsd: {e}");
            return ExitCode::FAILURE;
        }
    };

    let created = session.repository().created_roots().to_vec();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(
        out,
        "shrink wrap schema loaded: {} types, {} concept schemas (`help` for commands)",
        session.repository().workspace().working().type_count(),
        session.concept_list().len()
    );
    for root in created {
        let _ = writeln!(
            out,
            "note: synthesized abstract root `{root}` (single-root rule)"
        );
    }

    let stdin = io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        match execute(&mut session, &line) {
            CommandOutcome::Continue(text) => {
                let _ = write!(out, "{text}");
                let _ = out.flush();
            }
            CommandOutcome::Quit => break,
        }
    }

    if let (Some(mode), Some(rec)) = (trace_mode, recorder) {
        let trace = rec.take();
        sws_trace::clear_global();
        match mode {
            TraceMode::Json => eprint!("{}", to_jsonl(&trace)),
            TraceMode::Tree => {
                eprintln!("--- trace ---");
                eprint!("{}", render_tree(&trace.events));
                let summary = TraceSummary::of(&trace);
                if !summary.is_empty() {
                    eprintln!("--- summary ---");
                    eprint!("{}", summary.render());
                }
            }
        }
    }
    ExitCode::SUCCESS
}
