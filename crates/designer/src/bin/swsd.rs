//! `swsd` — the interactive shrink-wrap-schema designer.
//!
//! Usage:
//!
//! ```text
//! swsd --schema <shrink_wrap.odl>   start a fresh session on a schema
//! swsd --session <dir>              resume a saved session
//! ```
//!
//! Reads commands from stdin (see `help`), writes to stdout. Scriptable:
//! `swsd --schema uni.odl < script.txt`.
//!
//! `--session` loads in salvage mode: a damaged directory is repaired
//! (bad op-log lines quarantined, derived files regenerated) and the
//! recovery report is printed to stderr. Add `--strict` to fail on the
//! first inconsistency instead. While a session directory is attached,
//! every applied op is durably appended to its log, and a full save runs
//! on `quit`.
//!
//! Add `--trace` to record structured spans for the whole session and dump
//! a human-readable trace tree plus a counter/timing summary to stderr on
//! exit; `--trace=json` dumps the raw trace as JSON lines instead (one
//! object per span/event), for machine consumption.
//!
//! `--profile` aggregates the same span stream into an
//! inclusive/exclusive-time call tree and prints it to stderr on exit
//! (`--profile=tree`, the default, is the human-readable table;
//! `--profile=collapsed` emits flamegraph collapsed stacks — pipe stderr
//! into `flamegraph.pl` / `inferno-flamegraph`).
//!
//! Independent of the flags, a small **flight recorder** is always on: a
//! fixed-size ring of the most recent span/point events (capacity via
//! `SWS_FLIGHT_CAPACITY`, default 256). If the process panics or exits
//! with an error, a checksummed `crash-report.json` (recent events, live
//! counters, active span stack, `SWS_THREADS`, repo path, any recovery
//! report) is written to the session directory — or `SWS_CRASH_DIR`, or
//! the current directory.
//!
//! `--threads=N` pins the worker count for consistency checks and
//! decomposition (default: the `SWS_THREADS` environment variable, else
//! available parallelism; `1` = the exact serial path). Thread count never
//! changes a report.
//!
//! Exit codes (also via `--help`):
//!
//! `--checkpoint-interval=K` auto-checkpoints the attached session
//! directory every K committed ops (snapshot + op-log truncation, see
//! docs/robustness.md); the `checkpoint` REPL command forces one
//! immediately. Overrides `SWS_CHECKPOINT_INTERVAL`.
//!
//! `swsd --schema <file.odl> serve --addr=HOST:PORT` (or `--session <dir>
//! serve ...`) runs the concurrent-session daemon instead of the REPL:
//! many named design sessions over one repository, optimistic concurrency
//! via `base_rev`, JSONL + HTTP/1.1 on one port. See docs/serve.md.
//!
//! `swsd --schema <file.odl> lint <script.ops>` runs the static analyzer
//! over an op script instead of starting a REPL: every diagnostic is
//! printed (stable codes, see docs/static-analysis.md) and the exit code
//! is 8 when anything was found. `--lint=json` emits the report as one
//! checksummed JSON line; `--context=<tag>` sets the concept-schema
//! context the script is checked against (default `wagon_wheel`).
//!
//! ```text
//! 0  clean run
//! 2  usage error
//! 3  schema did not parse
//! 4  session directory corrupt / replay failed (strict mode)
//! 5  I/O failure
//! 6  session recovered, but with data loss (ops dropped or files lost)
//! 7  session recovered via a degraded fallback (older snapshot or full
//!    replay), no data loss
//! 8  lint findings (the `lint` subcommand found diagnostics)
//! ```

use std::io::{self, BufRead, Write};
use std::net::{SocketAddr, TcpListener};
use std::path::Path;
use std::process::ExitCode;

use sws_designer::{crash, execute, CommandOutcome, DesignService, Session, SessionError};
use sws_repository::RepoError;
use sws_trace::{render_tree, to_jsonl, FlightRecorder, Profile, Recorder, TraceSummary};

const EXIT_USAGE: u8 = 2;
const EXIT_PARSE: u8 = 3;
const EXIT_CORRUPT: u8 = 4;
const EXIT_IO: u8 = 5;
const EXIT_RECOVERED: u8 = 6;
const EXIT_DEGRADED: u8 = 7;
const EXIT_LINT: u8 = 8;

const USAGE: &str = "usage: swsd [--trace[=json]] [--profile[=tree|collapsed]] [--strict] [--threads=N] [--checkpoint-interval=K] --schema <file.odl> [lint <script.ops> | serve --addr=HOST:PORT] | --session <dir> [serve --addr=HOST:PORT]";

const HELP: &str = "\
swsd — interactive shrink-wrap-schema designer

usage:
  swsd [options] --schema <file.odl>
  swsd [options] --schema <file.odl> lint <script.ops>
  swsd [options] --schema <file.odl> serve --addr=HOST:PORT
  swsd [options] --session <dir>
  swsd [options] --session <dir> serve --addr=HOST:PORT

options:
  --schema <file.odl>  start a fresh session on an extended-ODL schema
  --session <dir>      resume a saved session directory; loads in salvage
                       mode (damage repaired and reported) unless --strict
  --strict             fail on the first checksum/parse/replay
                       inconsistency instead of salvaging
  --threads=N          worker threads for consistency checks and
                       decomposition (1 = serial; overrides SWS_THREADS;
                       default: SWS_THREADS, else available parallelism).
                       Reports are identical at every thread count.
  --checkpoint-interval=K
                       auto-checkpoint the session directory every K
                       committed ops: snapshot the working schema, archive
                       and truncate the op log, so resuming replays only
                       the short tail (overrides SWS_CHECKPOINT_INTERVAL;
                       the `checkpoint` command forces one immediately)
  --addr=HOST:PORT     with the serve subcommand: the address to listen on
                       (PORT 0 picks a free port; the chosen address is
                       printed as `swsd: serving on HOST:PORT`). The daemon
                       speaks JSONL and HTTP/1.1 on the same port — see
                       docs/serve.md — and exits on a `shutdown` frame
  --lint=json          with the lint subcommand: emit the report as one
                       checksummed JSON line instead of human-readable text
  --context=<tag>      with the lint subcommand: concept-schema context the
                       script runs in (wagon_wheel | generalization |
                       aggregation | instance_of; default wagon_wheel)
  --trace[=json]       dump a structured trace to stderr on exit
  --profile[=tree|collapsed]
                       dump a self-profile to stderr on exit: an
                       inclusive/exclusive-time call tree (tree, default)
                       or flamegraph collapsed stacks (collapsed)
  --help               show this help

crash reports:
  a flight recorder retains the last SWS_FLIGHT_CAPACITY (default 256)
  span/point events at all times; on panic or error exit a checksummed
  crash-report.json lands in the session directory (override with
  SWS_CRASH_DIR, fallback: current directory)

exit codes:
  0  clean run
  2  usage error
  3  schema did not parse
  4  session directory corrupt / replay failed (strict mode)
  5  I/O failure
  6  session recovered, but with data loss (the recovery report on
     stderr names the dropped ops and damaged files)
  7  session recovered via a degraded fallback layer (older snapshot or
     full replay of the archive), no data loss
  8  lint findings (`swsd --schema S lint script.ops` or the REPL `lint`
     command found diagnostics; see docs/static-analysis.md)
";

/// Which exit code a load-time failure maps to.
fn exit_code_for(e: &SessionError) -> u8 {
    match e {
        SessionError::Parse(_) => EXIT_PARSE,
        SessionError::Repo(RepoError::Io(_)) => EXIT_IO,
        SessionError::Repo(RepoError::Odl(_) | RepoError::Lower(_)) => EXIT_PARSE,
        SessionError::Repo(_) => EXIT_CORRUPT,
        _ => EXIT_CORRUPT,
    }
}

fn flight_capacity() -> usize {
    std::env::var("SWS_FLIGHT_CAPACITY")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(sws_trace::flight::DEFAULT_CAPACITY)
}

fn main() -> ExitCode {
    let mut trace_mode = None;
    let mut profile_mode = None;
    let mut strict = false;
    let mut checkpoint_interval = None;
    let mut lint_json = false;
    let mut lint_context = sws_core::ConceptKind::WagonWheel;
    let mut addr = None;
    let mut args = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--trace" => trace_mode = Some(TraceMode::Tree),
            "--trace=json" => trace_mode = Some(TraceMode::Json),
            "--lint=json" => lint_json = true,
            _ if arg.starts_with("--addr=") => {
                addr = Some(arg["--addr=".len()..].to_string());
            }
            _ if arg.starts_with("--context=") => {
                let value = &arg["--context=".len()..];
                match sws_core::ConceptKind::from_tag(value) {
                    Some(kind) => lint_context = kind,
                    None => {
                        eprintln!(
                            "swsd: --context wants wagon_wheel | generalization | \
                             aggregation | instance_of, got `{value}`"
                        );
                        return ExitCode::from(EXIT_USAGE);
                    }
                }
            }
            "--profile" | "--profile=tree" => profile_mode = Some(ProfileMode::Tree),
            "--profile=collapsed" => profile_mode = Some(ProfileMode::Collapsed),
            "--strict" => strict = true,
            _ if arg.starts_with("--threads=") => {
                let value = &arg["--threads=".len()..];
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => sws_core::parallel::set_override(Some(n)),
                    _ => {
                        eprintln!("swsd: --threads wants a positive integer, got `{value}`");
                        return ExitCode::from(EXIT_USAGE);
                    }
                }
            }
            _ if arg.starts_with("--checkpoint-interval=") => {
                let value = &arg["--checkpoint-interval=".len()..];
                match value.parse::<u64>() {
                    Ok(k) if k >= 1 => checkpoint_interval = Some(k),
                    _ => {
                        eprintln!(
                            "swsd: --checkpoint-interval wants a positive integer, got `{value}`"
                        );
                        return ExitCode::from(EXIT_USAGE);
                    }
                }
            }
            "--help" | "-h" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            _ => args.push(arg),
        }
    }

    // The always-on diagnostics: flight recorder + panic-hook dumper.
    FlightRecorder::with_capacity(flight_capacity()).install_global();
    crash::install_panic_hook();

    // One full recorder serves both --trace and --profile.
    let recorder = (trace_mode.is_some() || profile_mode.is_some()).then(|| {
        let rec = Recorder::new();
        sws_trace::set_global(rec.clone());
        rec
    });

    // Lint mode: analyze a script against the schema and exit — no REPL,
    // no session directory, nothing is applied.
    if let [flag, schema, sub, script] = args.as_slice() {
        if flag == "--schema" && sub == "lint" {
            return run_lint(schema, script, lint_context, lint_json);
        }
    }

    // Serve mode: the multi-session daemon (docs/serve.md).
    if let [flag, value, sub] = args.as_slice() {
        if sub == "serve" && (flag == "--schema" || flag == "--session") {
            let Some(addr) = addr else {
                eprintln!("swsd: serve needs --addr=HOST:PORT\n{USAGE}");
                return ExitCode::from(EXIT_USAGE);
            };
            return run_serve(flag, value, &addr, strict, checkpoint_interval);
        }
    }
    if args.iter().any(|a| a == "serve") {
        eprintln!("{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    }

    let session = match args.as_slice() {
        [flag, value] if flag == "--schema" => {
            crash::set_repo_path(value);
            let source = match std::fs::read_to_string(value) {
                Ok(s) => s,
                Err(e) => {
                    let message = format!("cannot read {value}: {e}");
                    eprintln!("swsd: {message}");
                    crash::dump_error_exit(&message, EXIT_IO);
                    return ExitCode::from(EXIT_IO);
                }
            };
            Session::from_odl(&source)
        }
        [flag, value] if flag == "--session" => {
            crash::set_repo_path(value);
            crash::set_dump_dir(Path::new(value));
            if strict {
                Session::load_strict(Path::new(value))
            } else {
                Session::load(Path::new(value))
            }
        }
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let mut session = match session {
        Ok(s) => s,
        Err(e) => {
            eprintln!("swsd: {e}");
            let code = exit_code_for(&e);
            crash::dump_error_exit(&e.to_string(), code);
            return ExitCode::from(code);
        }
    };
    if checkpoint_interval.is_some() {
        session.set_checkpoint_interval(checkpoint_interval);
    }

    // Salvage outcome: report damage to stderr; data loss (and, less
    // urgently, a degraded fallback load) taints the exit code even
    // though the session runs.
    let mut recovered_with_loss = false;
    let mut recovered_degraded = false;
    if let Some(report) = session.recovery().filter(|r| !r.is_clean()) {
        let rendered = report.render();
        eprint!("swsd: session directory was damaged\n{rendered}");
        recovered_with_loss = report.data_loss();
        recovered_degraded = report.degraded();
        crash::set_recovery(rendered);
    }

    // Test hook: prove the panic path produces a dump (used by the CLI
    // integration tests; documented nowhere else on purpose).
    if std::env::var_os("SWS_INJECT_PANIC").is_some() {
        let _sp = sws_trace::span!("swsd.injected_panic");
        panic!("injected panic (SWS_INJECT_PANIC)");
    }

    let created = session.repository().created_roots().to_vec();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(
        out,
        "shrink wrap schema loaded: {} types, {} concept schemas (`help` for commands)",
        session.repository().workspace().working().type_count(),
        session.concept_list().len()
    );
    for root in created {
        let _ = writeln!(
            out,
            "note: synthesized abstract root `{root}` (single-root rule)"
        );
    }

    let stdin = io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        match execute(&mut session, &line) {
            CommandOutcome::Continue(text) => {
                let _ = write!(out, "{text}");
                let _ = out.flush();
            }
            CommandOutcome::Quit => break,
        }
    }

    // Recommit the attached session directory: the appends since the last
    // full save left the derived files and manifest behind the log.
    let mut exit = if recovered_with_loss {
        ExitCode::from(EXIT_RECOVERED)
    } else if recovered_degraded {
        ExitCode::from(EXIT_DEGRADED)
    } else {
        ExitCode::SUCCESS
    };
    if let Err(e) = session.final_save() {
        let message = format!("final save failed: {e}");
        eprintln!("swsd: {message}");
        crash::dump_error_exit(&message, EXIT_IO);
        exit = ExitCode::from(EXIT_IO);
    }

    if let Some(rec) = recorder {
        let trace = rec.take();
        sws_trace::clear_global();
        match trace_mode {
            Some(TraceMode::Json) => eprint!("{}", to_jsonl(&trace)),
            Some(TraceMode::Tree) => {
                eprintln!("--- trace ---");
                eprint!("{}", render_tree(&trace.events));
                let summary = TraceSummary::of(&trace);
                if !summary.is_empty() {
                    eprintln!("--- summary ---");
                    eprint!("{}", summary.render());
                }
            }
            None => {}
        }
        match profile_mode {
            Some(ProfileMode::Collapsed) => {
                eprint!("{}", Profile::from_events(&trace.events).collapsed());
            }
            Some(ProfileMode::Tree) => {
                eprintln!("--- profile ---");
                eprint!("{}", Profile::from_events(&trace.events).render_tree());
            }
            None => {}
        }
    }
    exit
}

/// `swsd --schema <S> serve --addr=A` / `swsd --session <dir> serve
/// --addr=A`: run the concurrent-session daemon until a `shutdown` frame.
///
/// Exit 2 on an unparsable address, 3/4/5 on load failures (same mapping
/// as the REPL), **6/7 before binding** when the session directory only
/// loads with data loss / via a degraded fallback — a daemon must not
/// serve traffic from a repository it could not load cleanly — 5 when the
/// bind or the final save fails, 0 on a clean shutdown (autosave flushed).
fn run_serve(
    flag: &str,
    value: &str,
    addr: &str,
    strict: bool,
    checkpoint_interval: Option<u64>,
) -> ExitCode {
    let addr: SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(_) => {
            eprintln!("swsd: --addr wants HOST:PORT (e.g. 127.0.0.1:7878), got `{addr}`");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let session = if flag == "--schema" {
        crash::set_repo_path(value);
        match std::fs::read_to_string(value) {
            Ok(source) => Session::from_odl(&source),
            Err(e) => {
                eprintln!("swsd: cannot read {value}: {e}");
                return ExitCode::from(EXIT_IO);
            }
        }
    } else {
        crash::set_repo_path(value);
        crash::set_dump_dir(Path::new(value));
        if strict {
            Session::load_strict(Path::new(value))
        } else {
            Session::load(Path::new(value))
        }
    };
    let mut session = match session {
        Ok(s) => s,
        Err(e) => {
            eprintln!("swsd: {e}");
            return ExitCode::from(exit_code_for(&e));
        }
    };
    if checkpoint_interval.is_some() {
        session.set_checkpoint_interval(checkpoint_interval);
    }
    if let Some(report) = session.recovery().filter(|r| !r.is_clean()) {
        eprint!("swsd: session directory was damaged\n{}", report.render());
        if report.data_loss() {
            eprintln!("swsd: refusing to serve a session recovered with data loss");
            return ExitCode::from(EXIT_RECOVERED);
        }
        if report.degraded() {
            eprintln!("swsd: refusing to serve a degraded fallback load");
            return ExitCode::from(EXIT_DEGRADED);
        }
    }

    let threads = sws_core::parallel::workers();
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("swsd: cannot bind {addr}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    let local = listener.local_addr().unwrap_or(addr);
    // The CLI tests (and any supervisor) parse this line for the port.
    println!("swsd: serving on {local}");
    let _ = io::stdout().flush();

    let service = DesignService::new(session);
    if let Err(e) = sws_designer::serve::serve(&service, listener, threads) {
        eprintln!("swsd: serve failed: {e}");
        return ExitCode::from(EXIT_IO);
    }
    if let Err(e) = service.final_save() {
        eprintln!("swsd: final save failed: {e}");
        return ExitCode::from(EXIT_IO);
    }
    ExitCode::SUCCESS
}

/// `swsd --schema <S> lint <script.ops>`: run the static analyzer over the
/// script and exit. Nothing is applied; a session directory is never
/// touched. Exit 0 clean, 3 on a schema/script parse error, 5 on I/O, 8
/// when the analyzer reports findings.
fn run_lint(schema: &str, script: &str, context: sws_core::ConceptKind, json: bool) -> ExitCode {
    let source = match std::fs::read_to_string(schema) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("swsd: cannot read {schema}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    let session = match Session::from_odl(&source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("swsd: {e}");
            return ExitCode::from(exit_code_for(&e));
        }
    };
    let script_src = match std::fs::read_to_string(script) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("swsd: cannot read {script}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    let ws = session.repository().workspace();
    let report =
        match sws_analyze::analyze_script(ws.working(), ws.shrink_wrap(), context, &script_src) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("swsd: {script}: {e}");
                return ExitCode::from(EXIT_PARSE);
            }
        };
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_LINT)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceMode {
    Tree,
    Json,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ProfileMode {
    Tree,
    Collapsed,
}
