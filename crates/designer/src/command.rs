//! The REPL command interpreter behind `swsd`.
//!
//! Anything that is not a built-in command is treated as a
//! modification-language statement and issued in the current
//! concept-schema context. Built-ins:
//!
//! ```text
//! help                      show this list
//! concepts                  list the concept schemas of the working schema
//! show <n>                  display concept schema #n
//! use <n>                   select concept schema #n as the context
//! context <tag>             switch context by kind
//!                           (wagon_wheel | generalization | aggregation | instance_of)
//! odl [shrinkwrap]          print the custom (or shrink wrap) schema as ODL
//! map                       print the shrink-wrap <-> custom mapping
//! check                     run the consistency checks
//! log                       print the operation log
//! undo / redo               step through history
//! save <dir> / load <dir>   persist / restore the session
//! checkpoint                snapshot + truncate the op log now
//! quit                      end the session
//! ```

use crate::session::{Session, SessionError};
use std::path::Path;
use sws_core::ConceptKind;

/// What the interpreter wants the host loop to do next.
#[derive(Debug, PartialEq, Eq)]
pub enum CommandOutcome {
    /// Print this text and continue.
    Continue(String),
    /// End the session.
    Quit,
}

/// A quit command arrived where the caller needed printable output.
///
/// Callers that drive [`execute`] outside the interactive loop (scripted
/// sessions, tests) use [`execute_expecting_output`] and get this error
/// instead of a panic — the dispatcher must never take down a session the
/// crash dumper would then try to report on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnexpectedQuit {
    /// The line that requested the quit.
    pub line: String,
}

impl std::fmt::Display for UnexpectedQuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unexpected quit command: `{}`", self.line)
    }
}

impl std::error::Error for UnexpectedQuit {}

/// [`execute`] for drivers that need the printed output of one line and
/// treat a quit as a structured error rather than a control-flow event.
pub fn execute_expecting_output(
    session: &mut Session,
    line: &str,
) -> Result<String, UnexpectedQuit> {
    match execute(session, line) {
        CommandOutcome::Continue(text) => Ok(text),
        CommandOutcome::Quit => Err(UnexpectedQuit {
            line: line.trim().to_string(),
        }),
    }
}

/// Execute one REPL line against the session. `load` replaces the session
/// in place.
pub fn execute(session: &mut Session, line: &str) -> CommandOutcome {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
        return CommandOutcome::Continue(String::new());
    }
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    let result = match cmd {
        "quit" | "exit" => return CommandOutcome::Quit,
        "help" => Ok(HELP.to_string()),
        "concepts" => Ok(render_concepts(session)),
        "show" => show(session, rest),
        "use" => use_concept(session, rest),
        "context" => set_context(session, rest),
        "odl" => Ok(match rest {
            "shrinkwrap" => session.repository().shrink_wrap_odl(),
            "local" => session.repository().custom_schema_local_odl(),
            _ => session.repository().custom_schema_odl(),
        }),
        "alias" => alias_command(session, rest),
        "aliases" => {
            let table = session.repository().aliases();
            Ok(if table.is_empty() {
                "no local names registered\n".into()
            } else {
                table.render()
            })
        }
        "explain" => explain_concept(session, rest),
        "advise" => {
            let report = session.consistency();
            let advice = sws_core::advise(&report, session.repository().workspace().working());
            Ok(if advice.is_empty() {
                "nothing to advise\n".into()
            } else {
                let mut out = String::new();
                for s in advice {
                    out.push_str(&format!("{}\n", s.finding));
                    for candidate in s.candidates {
                        out.push_str(&format!("  -> {candidate}\n"));
                    }
                }
                out
            })
        }
        "report" => Ok(sws_core::DesignReport::generate(session.repository().workspace()).render()),
        "map" => Ok(session.mapping().render()),
        "check" => {
            let report = session.consistency();
            Ok(if report.is_clean() {
                "consistent: no findings\n".into()
            } else {
                report.render()
            })
        }
        "lint" => lint_script(session, rest),
        "log" => Ok(session.repository().render_log()),
        "undo" => session.undo().map(|()| "undone\n".to_string()),
        "redo" => session.redo().map(|()| "redone\n".to_string()),
        "save" => session
            .save(Path::new(rest))
            .map(|()| format!("saved to {rest} (autosave on)\n")),
        "checkpoint" => session.checkpoint().map(|outcome| match outcome {
            None => "nothing to checkpoint (tail already empty)\n".to_string(),
            Some(o) => format!(
                "checkpoint generation {} written: {} op(s) covered, {} archived, {} snapshot file(s) pruned\n",
                o.generation, o.ops_covered, o.archived_ops, o.pruned.len()
            ),
        }),
        "load" => Session::load(Path::new(rest)).map(|loaded| {
            *session = loaded;
            let mut text = format!("loaded from {rest} (autosave on)\n");
            if let Some(report) = session.recovery().filter(|r| !r.is_clean()) {
                text.push_str(&report.render());
            }
            text
        }),
        _ => session.issue_str(line).map(|fb| fb.render()),
    };
    let mut text = match result {
        Ok(text) => text,
        Err(e) => format!("error: {e}\n"),
    };
    if let Some(warning) = session.take_autosave_warning() {
        text.push_str(&format!("warning: {warning}\n"));
    }
    CommandOutcome::Continue(text)
}

const HELP: &str = "\
commands:
  concepts | show <n> | use <n> | context <tag> | explain <n>
  odl [shrinkwrap|local] | map | check | advise | report | log
  lint <op; op; ...>   statically analyze a script in the current context
                       without applying it (stable codes, see
                       docs/static-analysis.md)
  alias type <T> <Local> | alias member <T> <m> <Local> | aliases
  undo | redo | save <dir> | load <dir> | checkpoint | quit
anything else is a modification-language statement, e.g.
  add_attribute(CourseOffering, string(16), room)
";

/// REPL `lint <op; op; ...>`: statically analyze the rest of the line as
/// an op script in the session's current concept-schema context. Nothing
/// is applied and the undo log is untouched.
fn lint_script(session: &Session, rest: &str) -> Result<String, SessionError> {
    if rest.is_empty() {
        return Ok("usage: lint <op; op; ...>\n".to_string());
    }
    let ws = session.repository().workspace();
    let report =
        sws_analyze::analyze_script(ws.working(), ws.shrink_wrap(), session.context(), rest)
            .map_err(SessionError::Parse)?;
    Ok(report.render())
}

fn render_concepts(session: &Session) -> String {
    let mut out = String::new();
    for (i, cs) in session.concept_list().iter().enumerate() {
        out.push_str(&format!(
            "{i:>3}  {} ({} elements)\n",
            cs.name,
            cs.element_count()
        ));
    }
    out
}

fn show(session: &Session, rest: &str) -> Result<String, SessionError> {
    let index = parse_index(rest)?;
    let list = session.concept_list();
    let cs = list.get(index).ok_or(SessionError::NoSuchConcept(index))?;
    Ok(cs.describe(session.repository().workspace().working()))
}

fn explain_concept(session: &Session, rest: &str) -> Result<String, SessionError> {
    let index = parse_index(rest)?;
    let list = session.concept_list();
    let cs = list.get(index).ok_or(SessionError::NoSuchConcept(index))?;
    Ok(sws_core::explain(
        cs,
        session.repository().workspace().working(),
    ))
}

fn use_concept(session: &mut Session, rest: &str) -> Result<String, SessionError> {
    let index = parse_index(rest)?;
    let cs = session.select(index)?;
    Ok(format!("context: {}\n", cs.name))
}

fn set_context(session: &mut Session, rest: &str) -> Result<String, SessionError> {
    match ConceptKind::from_tag(rest) {
        Some(kind) => {
            session.set_context(kind);
            Ok(format!("context: {}\n", kind.name()))
        }
        None => Err(SessionError::NoSuchConcept(usize::MAX)),
    }
}

fn parse_index(rest: &str) -> Result<usize, SessionError> {
    rest.parse()
        .map_err(|_| SessionError::NoSuchConcept(usize::MAX))
}

/// `alias type <Canonical> <Local>` / `alias member <Type> <Member> <Local>`.
fn alias_command(session: &mut Session, rest: &str) -> Result<String, SessionError> {
    let words: Vec<&str> = rest.split_whitespace().collect();
    match words.as_slice() {
        ["type", canonical, local] => {
            session.set_alias(canonical, None, local)?;
            Ok(format!("local name: {canonical} -> {local}\n"))
        }
        ["member", ty, member, local] => {
            session.set_alias(ty, Some(member), local)?;
            Ok(format!("local name: {ty}::{member} -> {local}\n"))
        }
        _ => Ok(
            "usage: alias type <Canonical> <Local> | alias member <Type> <Member> <Local>\n"
                .to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        Session::from_odl(
            r#"
            interface Person { attribute string name; }
            interface Employee : Person { attribute long badge; }
            "#,
        )
        .unwrap()
    }

    fn run(s: &mut Session, line: &str) -> String {
        execute_expecting_output(s, line).expect("no quit in scripted lines")
    }

    #[test]
    fn full_interactive_flow() {
        let mut s = session();
        assert!(run(&mut s, "help").contains("commands:"));
        let concepts = run(&mut s, "concepts");
        assert!(concepts.contains("wagon wheel: Person"));
        assert!(concepts.contains("generalization hierarchy: Person"));
        assert!(run(&mut s, "show 0").contains("(focal)"));
        assert!(run(&mut s, "use 0").contains("context: wagon wheel"));
        let fb = run(&mut s, "add_attribute(Person, date, birthday)");
        assert!(fb.contains("applied:"), "{fb}");
        assert!(run(&mut s, "odl").contains("birthday"));
        assert!(run(&mut s, "map").contains("added"));
        assert!(run(&mut s, "log").contains("add_attribute"));
        assert!(run(&mut s, "undo").contains("undone"));
        assert!(!run(&mut s, "odl").contains("birthday"));
        assert!(run(&mut s, "redo").contains("redone"));
        assert_eq!(execute(&mut s, "quit"), CommandOutcome::Quit);
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = session();
        assert!(run(&mut s, "add_type_definition(Person)").starts_with("error:"));
        assert!(run(&mut s, "show 99").starts_with("error:"));
        assert!(run(&mut s, "context bogus").starts_with("error:"));
        assert!(run(&mut s, "nonsense(").starts_with("error:"));
    }

    #[test]
    fn context_switching() {
        let mut s = session();
        assert!(run(&mut s, "context generalization").contains("generalization"));
        let fb = run(&mut s, "modify_attribute(Employee, badge, Person)");
        assert!(fb.contains("applied:"), "{fb}");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let mut s = session();
        assert_eq!(run(&mut s, ""), "");
        assert_eq!(run(&mut s, "# comment"), "");
        assert_eq!(run(&mut s, "// comment"), "");
    }

    #[test]
    fn explain_advise_report_commands() {
        let mut s = session();
        let text = run(&mut s, "explain 0");
        assert!(
            text.contains("centred on the object type `Person`"),
            "{text}"
        );
        assert!(run(&mut s, "advise").contains("nothing to advise"));
        // Create a finding, then ask for advice and the full report.
        run(&mut s, "add_type_definition(Loner)");
        let advice = run(&mut s, "advise");
        assert!(advice.contains("delete_type_definition(Loner)"), "{advice}");
        let report = run(&mut s, "report");
        assert!(report.contains("# Design report"), "{report}");
        assert!(report.contains("add_type_definition(Loner)"));
    }

    #[test]
    fn alias_commands() {
        let mut s = session();
        assert!(run(&mut s, "aliases").contains("no local names"));
        assert!(run(&mut s, "alias type Employee StaffMember").contains("->"));
        assert!(run(&mut s, "alias member Employee badge staff_id").contains("->"));
        let local = run(&mut s, "odl local");
        assert!(local.contains("interface StaffMember"), "{local}");
        assert!(local.contains("staff_id"));
        // Canonical view untouched.
        assert!(run(&mut s, "odl").contains("interface Employee"));
        assert!(run(&mut s, "aliases").contains("type\tEmployee\tStaffMember"));
        // Collision rejected (StaffMember is Employee's local name);
        // undo reverts the aliases.
        assert!(run(&mut s, "alias type Person StaffMember").starts_with("error:"));
        run(&mut s, "undo");
        run(&mut s, "undo");
        assert!(run(&mut s, "aliases").contains("no local names"));
    }

    #[test]
    fn quit_is_a_structured_error_not_a_panic() {
        let mut s = session();
        let err = execute_expecting_output(&mut s, "  exit  ").unwrap_err();
        assert_eq!(err.line, "exit");
        assert!(err.to_string().contains("unexpected quit"));
        // The session survives the error.
        assert!(run(&mut s, "help").contains("commands:"));
    }

    #[test]
    fn check_command_reports() {
        let mut s = session();
        let out = run(&mut s, "check");
        // Person/Employee is clean.
        assert!(out.contains("consistent"), "{out}");
    }
}
