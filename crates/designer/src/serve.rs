//! The zero-dependency network front end for [`DesignService`].
//!
//! One `TcpListener`, N acceptor threads (scoped — no detached threads),
//! each owning one connection at a time. Two framings share the port and
//! are auto-detected from the first line of each connection:
//!
//! * **JSONL** — one request object per line, one checksummed response
//!   line back. The connection is persistent; this is the native framing
//!   and what the differential/load harnesses speak.
//! * **HTTP/1.1** — `POST /` with the same JSON object as the body (or
//!   `GET /ping`), response body is the same checksummed line. Keep-alive
//!   honoured; status codes mirror the response type (see
//!   [`http_status`]). This exists so `curl` works against a live daemon.
//!
//! Shutdown: a `{"type":"shutdown"}` frame flips the service's shutdown
//! flag; the handling acceptor then wakes its siblings out of `accept()`
//! with short-lived local connections, and `serve` returns once every
//! acceptor has drained its in-flight connection.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

use crate::protocol::respond;
use crate::service::{DesignService, ErrorCode, Response};

/// Run the accept loop until a shutdown frame arrives. Blocks the calling
/// thread; returns after all acceptors exit. `threads` is clamped to ≥ 1.
pub fn serve(service: &DesignService, listener: TcpListener, threads: usize) -> io::Result<()> {
    let addr = listener.local_addr()?;
    let threads = threads.max(1);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // `--threads=` is a thread-local override; replicate the
                // caller's effective count so consistency fan-outs inside
                // request handling see the same parallelism.
                sws_core::parallel::set_override(Some(threads));
                acceptor(service, &listener, addr, threads);
            });
        }
    });
    Ok(())
}

fn acceptor(service: &DesignService, listener: &TcpListener, addr: SocketAddr, threads: usize) {
    while !service.is_shutdown() {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => continue,
        };
        if service.is_shutdown() {
            break; // a sibling's wake-up connection, not a client
        }
        let saw_shutdown = handle_conn(service, stream).unwrap_or(false);
        if saw_shutdown {
            wake_acceptors(addr, threads);
            break;
        }
    }
}

/// Unblock sibling acceptors stuck in `accept()` after shutdown.
fn wake_acceptors(addr: SocketAddr, threads: usize) {
    for _ in 0..threads {
        drop(TcpStream::connect(addr));
    }
}

/// Serve one connection to completion. Returns `Ok(true)` if a shutdown
/// frame was processed on it.
fn handle_conn(service: &DesignService, stream: TcpStream) -> io::Result<bool> {
    let mut sp = sws_trace::span!("serve.conn");
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut requests = 0u64;
    let mut first = String::new();
    if reader.read_line(&mut first)? == 0 {
        return Ok(false);
    }
    let http = is_http_request_line(&first);
    sp.record("mode", if http { "http" } else { "jsonl" });
    let saw_shutdown = if http {
        serve_http(service, &mut reader, &mut writer, first, &mut requests)?
    } else {
        serve_jsonl(service, &mut reader, &mut writer, first, &mut requests)?
    };
    sp.record("requests", requests);
    Ok(saw_shutdown)
}

fn is_http_request_line(line: &str) -> bool {
    ["GET ", "POST ", "HEAD ", "PUT ", "DELETE ", "OPTIONS "]
        .iter()
        .any(|m| line.starts_with(m))
        && line.contains(" HTTP/1.")
}

// ---------------------------------------------------------------------
// JSONL framing
// ---------------------------------------------------------------------

fn serve_jsonl(
    service: &DesignService,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    first: String,
    requests: &mut u64,
) -> io::Result<bool> {
    let mut line = first;
    loop {
        let frame = line.trim();
        if !frame.is_empty() {
            *requests += 1;
            let (response, rendered) = respond(service, frame);
            writer.write_all(rendered.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            service.maintain();
            if matches!(response, Response::Bye) {
                return Ok(true);
            }
        }
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(false);
        }
    }
}

// ---------------------------------------------------------------------
// HTTP/1.1 framing
// ---------------------------------------------------------------------

/// The status line a response maps to.
pub fn http_status(response: &Response) -> (u16, &'static str) {
    match response {
        Response::Conflict { .. } => (409, "Conflict"),
        Response::Rejected { .. } => (422, "Unprocessable Entity"),
        Response::Error { code, .. } => match code {
            ErrorCode::UnknownSession => (404, "Not Found"),
            ErrorCode::DeltaHorizon => (409, "Conflict"),
            ErrorCode::MalformedFrame | ErrorCode::BadRequest => (400, "Bad Request"),
        },
        _ => (200, "OK"),
    }
}

fn serve_http(
    service: &DesignService,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    first: String,
    requests: &mut u64,
) -> io::Result<bool> {
    let mut request_line = first;
    loop {
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("").to_string();
        let path = parts.next().unwrap_or("/").to_string();

        // Headers.
        let mut content_length = 0usize;
        let mut close = false;
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header)? == 0 {
                return Ok(false);
            }
            let header = header.trim();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().unwrap_or(0);
                } else if name.eq_ignore_ascii_case("connection")
                    && value.eq_ignore_ascii_case("close")
                {
                    close = true;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;

        *requests += 1;
        let frame = match method.as_str() {
            "POST" => String::from_utf8_lossy(&body).into_owned(),
            "GET" | "HEAD" if path == "/ping" || path == "/" => "{\"type\":\"ping\"}".to_string(),
            _ => String::new(),
        };
        let (response, rendered) = if frame.is_empty() {
            let response = Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("no route for {method} {path}"),
            };
            let rendered = crate::protocol::render_response(&response);
            (response, rendered)
        } else {
            respond(service, frame.trim())
        };

        let (status, reason) = http_status(&response);
        write!(
            writer,
            "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\n\
             content-length: {}\r\nconnection: {}\r\n\r\n",
            rendered.len(),
            if close { "close" } else { "keep-alive" },
        )?;
        if method != "HEAD" {
            writer.write_all(rendered.as_bytes())?;
        }
        writer.flush()?;
        service.maintain();
        if matches!(response, Response::Bye) {
            return Ok(true);
        }
        if close {
            return Ok(false);
        }
        request_line.clear();
        if reader.read_line(&mut request_line)? == 0 {
            return Ok(false);
        }
    }
}
