//! The interactive design session: concept-schema navigation, operation
//! issuing, feedback, and undo/redo.

use std::fmt;
use std::path::Path;

use sws_core::concept::{ConceptSchema, Decomposition};
use sws_core::consistency::ConsistencyReport;
use sws_core::oplang::parse_statement;
use sws_core::{ConceptKind, Feedback, Mapping, ModOp, OpError};
use sws_odl::OdlError;
use sws_repository::{RepoError, Repository};

/// Errors surfaced to the designer.
#[derive(Debug)]
pub enum SessionError {
    /// The operation was rejected (permission or constraints).
    Op(OpError),
    /// The statement did not parse.
    Parse(OdlError),
    /// No concept schema with that index.
    NoSuchConcept(usize),
    /// Nothing to undo / redo.
    NothingToUndo,
    /// Nothing to redo.
    NothingToRedo,
    /// Repository persistence failed.
    Repo(RepoError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Op(e) => write!(f, "{e}"),
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::NoSuchConcept(i) => write!(f, "no concept schema #{i}"),
            SessionError::NothingToUndo => f.write_str("nothing to undo"),
            SessionError::NothingToRedo => f.write_str("nothing to redo"),
            SessionError::Repo(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<OpError> for SessionError {
    fn from(e: OpError) -> Self {
        SessionError::Op(e)
    }
}

impl From<OdlError> for SessionError {
    fn from(e: OdlError) -> Self {
        SessionError::Parse(e)
    }
}

impl From<RepoError> for SessionError {
    fn from(e: RepoError) -> Self {
        SessionError::Repo(e)
    }
}

/// One interactive design session.
#[derive(Debug)]
pub struct Session {
    repo: Repository,
    context: ConceptKind,
    focus: Option<String>,
    undo_stack: Vec<Repository>,
    redo_stack: Vec<Repository>,
}

impl Session {
    /// Open a session on a repository. The initial context is a wagon
    /// wheel (the paper: wagon wheels carry most modifications).
    pub fn new(repo: Repository) -> Self {
        Session {
            repo,
            context: ConceptKind::WagonWheel,
            focus: None,
            undo_stack: Vec::new(),
            redo_stack: Vec::new(),
        }
    }

    /// Open a session directly on extended-ODL source.
    pub fn from_odl(source: &str) -> Result<Self, SessionError> {
        Ok(Session::new(Repository::ingest_odl(source)?))
    }

    /// The repository (live).
    pub fn repository(&self) -> &Repository {
        &self.repo
    }

    /// The repository, mutably (e.g. to register local names). Alias
    /// changes participate in undo/redo like operations do.
    pub fn repository_mut(&mut self) -> &mut Repository {
        &mut self.repo
    }

    /// Register a local (display/export) name, snapshotting for undo.
    pub fn set_alias(
        &mut self,
        ty: &str,
        member: Option<&str>,
        local: &str,
    ) -> Result<(), SessionError> {
        let snapshot = self.repo.clone();
        let result = match member {
            None => self.repo.set_type_alias(ty, local),
            Some(member) => self.repo.set_member_alias(ty, member, local),
        };
        match result {
            Ok(()) => {
                self.undo_stack.push(snapshot);
                self.redo_stack.clear();
                Ok(())
            }
            Err(e) => Err(SessionError::Repo(e)),
        }
    }

    /// The current concept-schema context kind.
    pub fn context(&self) -> ConceptKind {
        self.context
    }

    /// The display name of the selected concept schema, if one is selected.
    pub fn focus(&self) -> Option<&str> {
        self.focus.as_deref()
    }

    /// Decompose the current working schema.
    pub fn concepts(&self) -> Decomposition {
        self.repo.workspace().concept_schemas()
    }

    /// Flat, indexed list of all concept schemas (wagon wheels first).
    pub fn concept_list(&self) -> Vec<ConceptSchema> {
        self.concepts().all().cloned().collect()
    }

    /// Select concept schema `index` (from [`Self::concept_list`]); future
    /// operations are issued in its context.
    pub fn select(&mut self, index: usize) -> Result<ConceptSchema, SessionError> {
        let list = self.concept_list();
        let cs = list.get(index).ok_or(SessionError::NoSuchConcept(index))?;
        self.context = cs.kind;
        self.focus = Some(cs.name.clone());
        Ok(cs.clone())
    }

    /// Switch context by kind without selecting a specific concept schema.
    pub fn set_context(&mut self, kind: ConceptKind) {
        self.context = kind;
        self.focus = None;
    }

    /// Issue an already-parsed operation in the current context.
    pub fn issue(&mut self, op: ModOp) -> Result<Feedback, SessionError> {
        let snapshot = self.repo.clone();
        let feedback = self.repo.workspace_mut().apply(self.context, op)?;
        self.undo_stack.push(snapshot);
        self.redo_stack.clear();
        Ok(feedback)
    }

    /// Parse a modification-language statement and issue it.
    pub fn issue_str(&mut self, statement: &str) -> Result<Feedback, SessionError> {
        let op = parse_statement(statement)?;
        self.issue(op)
    }

    /// Undo the last applied operation.
    pub fn undo(&mut self) -> Result<(), SessionError> {
        let snapshot = self.undo_stack.pop().ok_or(SessionError::NothingToUndo)?;
        self.redo_stack
            .push(std::mem::replace(&mut self.repo, snapshot));
        Ok(())
    }

    /// Redo the last undone operation.
    pub fn redo(&mut self) -> Result<(), SessionError> {
        let snapshot = self.redo_stack.pop().ok_or(SessionError::NothingToRedo)?;
        self.undo_stack
            .push(std::mem::replace(&mut self.repo, snapshot));
        Ok(())
    }

    /// Derive the mapping report.
    pub fn mapping(&self) -> Mapping {
        self.repo.mapping()
    }

    /// Run the consistency checks.
    pub fn consistency(&self) -> ConsistencyReport {
        self.repo.consistency()
    }

    /// Save the session.
    pub fn save(&self, dir: &Path) -> Result<(), SessionError> {
        self.repo.save(dir).map_err(SessionError::from)
    }

    /// Load a session from disk.
    pub fn load(dir: &Path) -> Result<Self, SessionError> {
        Ok(Session::new(Repository::load(dir)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::graph_to_schema;

    const SRC: &str = r#"
    schema Dept {
        interface Person { attribute string name; }
        interface Employee : Person {
            attribute long badge;
            relationship Department works_in_a inverse Department::has;
        }
        interface Department {
            relationship set<Employee> has inverse Employee::works_in_a;
        }
    }"#;

    fn session() -> Session {
        Session::from_odl(SRC).unwrap()
    }

    #[test]
    fn issue_respects_current_context() {
        let mut s = session();
        // Default context: wagon wheel — moves rejected.
        let err = s
            .issue_str("modify_attribute(Employee, badge, Person)")
            .unwrap_err();
        assert!(matches!(
            err,
            SessionError::Op(OpError::NotPermitted { .. })
        ));
        // Switch to the generalization hierarchy: allowed.
        s.set_context(ConceptKind::Generalization);
        s.issue_str("modify_attribute(Employee, badge, Person)")
            .unwrap();
        let person = s
            .repository()
            .workspace()
            .working()
            .type_id("Person")
            .unwrap();
        assert!(s
            .repository()
            .workspace()
            .working()
            .find_attr(person, "badge")
            .is_some());
    }

    #[test]
    fn select_switches_context() {
        let mut s = session();
        let list = s.concept_list();
        let gen_idx = list
            .iter()
            .position(|cs| cs.kind == ConceptKind::Generalization)
            .expect("has a generalization hierarchy");
        let cs = s.select(gen_idx).unwrap();
        assert_eq!(s.context(), ConceptKind::Generalization);
        assert_eq!(s.focus(), Some(cs.name.as_str()));
        assert!(matches!(
            s.select(999),
            Err(SessionError::NoSuchConcept(999))
        ));
    }

    #[test]
    fn undo_redo_cycle() {
        let mut s = session();
        let before = graph_to_schema(s.repository().workspace().working());
        s.issue_str("add_type_definition(Project)").unwrap();
        let after = graph_to_schema(s.repository().workspace().working());
        assert_ne!(before, after);

        s.undo().unwrap();
        assert_eq!(
            graph_to_schema(s.repository().workspace().working()),
            before
        );
        s.redo().unwrap();
        assert_eq!(graph_to_schema(s.repository().workspace().working()), after);
        assert!(matches!(s.redo(), Err(SessionError::NothingToRedo)));
        // A new operation clears the redo stack.
        s.undo().unwrap();
        s.issue_str("add_type_definition(Task)").unwrap();
        assert!(matches!(s.redo(), Err(SessionError::NothingToRedo)));
    }

    #[test]
    fn failed_issue_does_not_pollute_undo() {
        let mut s = session();
        assert!(s.issue_str("add_type_definition(Person)").is_err());
        assert!(matches!(s.undo(), Err(SessionError::NothingToUndo)));
    }

    #[test]
    fn parse_errors_surface() {
        let mut s = session();
        assert!(matches!(
            s.issue_str("frobnicate(Person)"),
            Err(SessionError::Parse(_))
        ));
    }

    #[test]
    fn save_load_preserves_session() {
        let mut s = session();
        s.issue_str("add_type_definition(Project)").unwrap();
        let dir = std::env::temp_dir().join(format!("sws_session_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        s.save(&dir).unwrap();
        let loaded = Session::load(&dir).unwrap();
        assert_eq!(
            graph_to_schema(loaded.repository().workspace().working()),
            graph_to_schema(s.repository().workspace().working())
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
