//! The interactive design session: concept-schema navigation, operation
//! issuing, feedback, and undo/redo.

use std::fmt;
use std::path::{Path, PathBuf};

use sws_core::concept::{ConceptSchema, Decomposition};
use sws_core::consistency::ConsistencyReport;
use sws_core::oplang::parse_statement;
use sws_core::{ConceptKind, Feedback, Mapping, ModOp, OpError};
use sws_odl::OdlError;
use sws_repository::io::RealIo;
use sws_repository::{append_log_line, RecoveryReport, RepoError, Repository};

/// Errors surfaced to the designer.
#[derive(Debug)]
pub enum SessionError {
    /// The operation was rejected (permission or constraints).
    Op(OpError),
    /// The statement did not parse.
    Parse(OdlError),
    /// No concept schema with that index.
    NoSuchConcept(usize),
    /// Nothing to undo / redo.
    NothingToUndo,
    /// Nothing to redo.
    NothingToRedo,
    /// Repository persistence failed.
    Repo(RepoError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Op(e) => write!(f, "{e}"),
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::NoSuchConcept(i) => write!(f, "no concept schema #{i}"),
            SessionError::NothingToUndo => f.write_str("nothing to undo"),
            SessionError::NothingToRedo => f.write_str("nothing to redo"),
            SessionError::Repo(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<OpError> for SessionError {
    fn from(e: OpError) -> Self {
        SessionError::Op(e)
    }
}

impl From<OdlError> for SessionError {
    fn from(e: OdlError) -> Self {
        SessionError::Parse(e)
    }
}

impl From<RepoError> for SessionError {
    fn from(e: RepoError) -> Self {
        SessionError::Repo(e)
    }
}

/// One interactive design session.
#[derive(Debug)]
pub struct Session {
    repo: Repository,
    context: ConceptKind,
    focus: Option<String>,
    undo_stack: Vec<Repository>,
    redo_stack: Vec<Repository>,
    /// Directory each applied op is durably appended to. Attached by
    /// [`Session::save`] and [`Session::load`]; detached (with a warning)
    /// on the first append failure so a dying disk cannot wedge the REPL.
    autosave_dir: Option<PathBuf>,
    autosave_warning: Option<String>,
    /// What salvage loading found, when this session came from disk.
    recovery: Option<RecoveryReport>,
}

impl Session {
    /// Open a session on a repository. The initial context is a wagon
    /// wheel (the paper: wagon wheels carry most modifications).
    pub fn new(repo: Repository) -> Self {
        Session {
            repo,
            context: ConceptKind::WagonWheel,
            focus: None,
            undo_stack: Vec::new(),
            redo_stack: Vec::new(),
            autosave_dir: None,
            autosave_warning: None,
            recovery: None,
        }
    }

    /// Open a session directly on extended-ODL source.
    pub fn from_odl(source: &str) -> Result<Self, SessionError> {
        Ok(Session::new(Repository::ingest_odl(source)?))
    }

    /// The repository (live).
    pub fn repository(&self) -> &Repository {
        &self.repo
    }

    /// The repository, mutably (e.g. to register local names). Alias
    /// changes participate in undo/redo like operations do.
    pub fn repository_mut(&mut self) -> &mut Repository {
        &mut self.repo
    }

    /// Register a local (display/export) name, snapshotting for undo.
    pub fn set_alias(
        &mut self,
        ty: &str,
        member: Option<&str>,
        local: &str,
    ) -> Result<(), SessionError> {
        let snapshot = self.repo.clone();
        let result = match member {
            None => self.repo.set_type_alias(ty, local),
            Some(member) => self.repo.set_member_alias(ty, member, local),
        };
        match result {
            Ok(()) => {
                self.undo_stack.push(snapshot);
                self.redo_stack.clear();
                // Aliases live outside the op log: autosave needs a full
                // rewrite, not an append.
                self.autosave_full();
                Ok(())
            }
            Err(e) => Err(SessionError::Repo(e)),
        }
    }

    /// The current concept-schema context kind.
    pub fn context(&self) -> ConceptKind {
        self.context
    }

    /// The display name of the selected concept schema, if one is selected.
    pub fn focus(&self) -> Option<&str> {
        self.focus.as_deref()
    }

    /// Decompose the current working schema.
    pub fn concepts(&self) -> Decomposition {
        self.repo.workspace().concept_schemas()
    }

    /// Flat, indexed list of all concept schemas (wagon wheels first).
    pub fn concept_list(&self) -> Vec<ConceptSchema> {
        self.concepts().all().cloned().collect()
    }

    /// Select concept schema `index` (from [`Self::concept_list`]); future
    /// operations are issued in its context.
    pub fn select(&mut self, index: usize) -> Result<ConceptSchema, SessionError> {
        let list = self.concept_list();
        let cs = list.get(index).ok_or(SessionError::NoSuchConcept(index))?;
        self.context = cs.kind;
        self.focus = Some(cs.name.clone());
        Ok(cs.clone())
    }

    /// Switch context by kind without selecting a specific concept schema.
    pub fn set_context(&mut self, kind: ConceptKind) {
        self.context = kind;
        self.focus = None;
    }

    /// Issue an already-parsed operation in the current context. With an
    /// autosave directory attached, the applied op is durably appended to
    /// the on-disk log (one fsynced record, not a full rewrite).
    pub fn issue(&mut self, op: ModOp) -> Result<Feedback, SessionError> {
        let snapshot = self.repo.clone();
        let feedback = self.repo.workspace_mut().apply(self.context, op.clone())?;
        self.undo_stack.push(snapshot);
        self.redo_stack.clear();
        if let Some(dir) = self.autosave_dir.clone() {
            if let Err(e) = append_log_line(&RealIo, &dir, self.context, &op) {
                self.disable_autosave(&dir, &e);
            }
        }
        Ok(feedback)
    }

    /// Parse a modification-language statement and issue it.
    pub fn issue_str(&mut self, statement: &str) -> Result<Feedback, SessionError> {
        let op = parse_statement(statement)?;
        self.issue(op)
    }

    /// Undo the last applied operation. Autosave rewrites the whole
    /// directory: undo shortens the op log, which an append cannot express.
    pub fn undo(&mut self) -> Result<(), SessionError> {
        let snapshot = self.undo_stack.pop().ok_or(SessionError::NothingToUndo)?;
        self.redo_stack
            .push(std::mem::replace(&mut self.repo, snapshot));
        self.autosave_full();
        Ok(())
    }

    /// Redo the last undone operation.
    pub fn redo(&mut self) -> Result<(), SessionError> {
        let snapshot = self.redo_stack.pop().ok_or(SessionError::NothingToRedo)?;
        self.undo_stack
            .push(std::mem::replace(&mut self.repo, snapshot));
        self.autosave_full();
        Ok(())
    }

    /// Derive the mapping report.
    pub fn mapping(&self) -> Mapping {
        self.repo.mapping()
    }

    /// Run the consistency checks.
    pub fn consistency(&self) -> ConsistencyReport {
        self.repo.consistency()
    }

    /// Save the session and attach `dir` for autosave: every subsequently
    /// issued op is durably appended to its on-disk log.
    pub fn save(&mut self, dir: &Path) -> Result<(), SessionError> {
        self.repo.save(dir)?;
        self.autosave_dir = Some(dir.to_path_buf());
        Ok(())
    }

    /// Load a session from disk in salvage mode: damage is repaired and
    /// reported via [`Session::recovery`] rather than failing the load.
    /// The directory is attached for autosave.
    pub fn load(dir: &Path) -> Result<Self, SessionError> {
        let (repo, report) = Repository::load_salvage(dir)?;
        let mut session = Session::new(repo);
        session.autosave_dir = Some(dir.to_path_buf());
        session.recovery = Some(report);
        Ok(session)
    }

    /// Load a session from disk strictly: fail on the first checksum,
    /// parse, or replay inconsistency instead of salvaging.
    pub fn load_strict(dir: &Path) -> Result<Self, SessionError> {
        let mut session = Session::new(Repository::load(dir)?);
        session.autosave_dir = Some(dir.to_path_buf());
        Ok(session)
    }

    /// The salvage report from loading, when this session came from disk.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The directory ops are autosaved to, if one is attached.
    pub fn autosave_dir(&self) -> Option<&Path> {
        self.autosave_dir.as_deref()
    }

    /// A pending autosave failure, if one happened; taking it clears it.
    pub fn take_autosave_warning(&mut self) -> Option<String> {
        self.autosave_warning.take()
    }

    /// Write a final full save to the autosave directory, refreshing the
    /// derived files and the manifest after a run of appends.
    pub fn final_save(&mut self) -> Result<(), SessionError> {
        match self.autosave_dir.clone() {
            Some(dir) => self.repo.save(&dir).map_err(SessionError::from),
            None => Ok(()),
        }
    }

    /// Full-directory autosave (undo/redo/alias paths); best-effort.
    fn autosave_full(&mut self) {
        if let Some(dir) = self.autosave_dir.clone() {
            if let Err(e) = self.repo.save(&dir) {
                self.disable_autosave(&dir, &SessionError::Repo(e));
            }
        }
    }

    fn disable_autosave(&mut self, dir: &Path, cause: &dyn fmt::Display) {
        self.autosave_warning = Some(format!(
            "autosave to {} failed ({cause}); autosave disabled — use `save` to retry",
            dir.display()
        ));
        self.autosave_dir = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::graph_to_schema;

    const SRC: &str = r#"
    schema Dept {
        interface Person { attribute string name; }
        interface Employee : Person {
            attribute long badge;
            relationship Department works_in_a inverse Department::has;
        }
        interface Department {
            relationship set<Employee> has inverse Employee::works_in_a;
        }
    }"#;

    fn session() -> Session {
        Session::from_odl(SRC).unwrap()
    }

    #[test]
    fn issue_respects_current_context() {
        let mut s = session();
        // Default context: wagon wheel — moves rejected.
        let err = s
            .issue_str("modify_attribute(Employee, badge, Person)")
            .unwrap_err();
        assert!(matches!(
            err,
            SessionError::Op(OpError::NotPermitted { .. })
        ));
        // Switch to the generalization hierarchy: allowed.
        s.set_context(ConceptKind::Generalization);
        s.issue_str("modify_attribute(Employee, badge, Person)")
            .unwrap();
        let person = s
            .repository()
            .workspace()
            .working()
            .type_id("Person")
            .unwrap();
        assert!(s
            .repository()
            .workspace()
            .working()
            .find_attr(person, "badge")
            .is_some());
    }

    #[test]
    fn select_switches_context() {
        let mut s = session();
        let list = s.concept_list();
        let gen_idx = list
            .iter()
            .position(|cs| cs.kind == ConceptKind::Generalization)
            .expect("has a generalization hierarchy");
        let cs = s.select(gen_idx).unwrap();
        assert_eq!(s.context(), ConceptKind::Generalization);
        assert_eq!(s.focus(), Some(cs.name.as_str()));
        assert!(matches!(
            s.select(999),
            Err(SessionError::NoSuchConcept(999))
        ));
    }

    #[test]
    fn undo_redo_cycle() {
        let mut s = session();
        let before = graph_to_schema(s.repository().workspace().working());
        s.issue_str("add_type_definition(Project)").unwrap();
        let after = graph_to_schema(s.repository().workspace().working());
        assert_ne!(before, after);

        s.undo().unwrap();
        assert_eq!(
            graph_to_schema(s.repository().workspace().working()),
            before
        );
        s.redo().unwrap();
        assert_eq!(graph_to_schema(s.repository().workspace().working()), after);
        assert!(matches!(s.redo(), Err(SessionError::NothingToRedo)));
        // A new operation clears the redo stack.
        s.undo().unwrap();
        s.issue_str("add_type_definition(Task)").unwrap();
        assert!(matches!(s.redo(), Err(SessionError::NothingToRedo)));
    }

    #[test]
    fn failed_issue_does_not_pollute_undo() {
        let mut s = session();
        assert!(s.issue_str("add_type_definition(Person)").is_err());
        assert!(matches!(s.undo(), Err(SessionError::NothingToUndo)));
    }

    #[test]
    fn parse_errors_surface() {
        let mut s = session();
        assert!(matches!(
            s.issue_str("frobnicate(Person)"),
            Err(SessionError::Parse(_))
        ));
    }

    #[test]
    fn save_load_preserves_session() {
        let mut s = session();
        s.issue_str("add_type_definition(Project)").unwrap();
        let dir = std::env::temp_dir().join(format!("sws_session_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        s.save(&dir).unwrap();
        let loaded = Session::load(&dir).unwrap();
        assert_eq!(
            graph_to_schema(loaded.repository().workspace().working()),
            graph_to_schema(s.repository().workspace().working())
        );
        assert!(loaded.recovery().is_some_and(|r| r.is_clean()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn issue_after_save_appends_durably() {
        let mut s = session();
        let dir = std::env::temp_dir().join(format!("sws_autosave_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        s.save(&dir).unwrap();
        assert_eq!(s.autosave_dir(), Some(dir.as_path()));

        // The op reaches the on-disk log via the append alone — no
        // explicit save between issue and load.
        s.issue_str("add_type_definition(Project)").unwrap();
        assert!(s.take_autosave_warning().is_none());
        let loaded = Session::load(&dir).unwrap();
        assert_eq!(
            graph_to_schema(loaded.repository().workspace().working()),
            graph_to_schema(s.repository().workspace().working())
        );
        // The derived files lag the appended op until a full save; the
        // salvage load regenerates them without data loss.
        assert!(!loaded.recovery().unwrap().data_loss());

        // Undo rewrites the directory (an append cannot shorten the log).
        s.undo().unwrap();
        let reloaded = Session::load(&dir).unwrap();
        assert!(reloaded.recovery().unwrap().is_clean());
        assert_eq!(reloaded.repository().workspace().log().len(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn autosave_failure_disables_itself_with_a_warning() {
        let mut s = session();
        let dir = std::env::temp_dir().join(format!("sws_autosave_gone_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        s.save(&dir).unwrap();
        // Make the directory unusable: a file where the log dir should be.
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::write(&dir, b"not a directory").unwrap();

        s.issue_str("add_type_definition(Project)").unwrap();
        let warning = s.take_autosave_warning().expect("append failure warned");
        assert!(warning.contains("autosave disabled"), "{warning}");
        assert_eq!(s.autosave_dir(), None);
        // Only warned once; the session itself keeps working.
        s.issue_str("add_type_definition(Task)").unwrap();
        assert!(s.take_autosave_warning().is_none());
        std::fs::remove_file(&dir).unwrap();
    }

    #[test]
    fn strict_load_refuses_a_tampered_directory() {
        let mut s = session();
        let dir = std::env::temp_dir().join(format!("sws_strict_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        s.issue_str("add_type_definition(Project)").unwrap();
        s.save(&dir).unwrap();
        let custom = dir.join(sws_repository::CUSTOM_FILE);
        let mut bytes = std::fs::read(&custom).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&custom, &bytes).unwrap();

        assert!(matches!(
            Session::load_strict(&dir),
            Err(SessionError::Repo(RepoError::Corrupt { .. }))
        ));
        // Salvage mode loads, reports, and heals the same directory.
        let loaded = Session::load(&dir).unwrap();
        let report = loaded.recovery().unwrap();
        assert!(!report.is_clean());
        assert!(!report.data_loss());
        assert!(Session::load_strict(&dir).is_ok(), "healed on first load");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
