//! The interactive design session: concept-schema navigation, operation
//! issuing, feedback, and undo/redo.

use std::fmt;
use std::path::{Path, PathBuf};

use sws_core::concept::{ConceptSchema, Decomposition};
use sws_core::consistency::ConsistencyReport;
use sws_core::oplang::parse_statement;
use sws_core::{ConceptKind, Feedback, Mapping, ModOp, OpError};
use sws_odl::OdlError;
use sws_repository::io::{RealIo, RepoIo};
use sws_repository::{append_log_line, CheckpointOutcome, RecoveryReport, RepoError, Repository};

/// Errors surfaced to the designer.
#[derive(Debug)]
pub enum SessionError {
    /// The operation was rejected (permission or constraints).
    Op(OpError),
    /// The statement did not parse.
    Parse(OdlError),
    /// No concept schema with that index.
    NoSuchConcept(usize),
    /// Nothing to undo / redo.
    NothingToUndo,
    /// Nothing to redo.
    NothingToRedo,
    /// Repository persistence failed.
    Repo(RepoError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Op(e) => write!(f, "{e}"),
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::NoSuchConcept(i) => write!(f, "no concept schema #{i}"),
            SessionError::NothingToUndo => f.write_str("nothing to undo"),
            SessionError::NothingToRedo => f.write_str("nothing to redo"),
            SessionError::Repo(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<OpError> for SessionError {
    fn from(e: OpError) -> Self {
        SessionError::Op(e)
    }
}

impl From<OdlError> for SessionError {
    fn from(e: OdlError) -> Self {
        SessionError::Parse(e)
    }
}

impl From<RepoError> for SessionError {
    fn from(e: RepoError) -> Self {
        SessionError::Repo(e)
    }
}

/// One interactive design session.
#[derive(Debug)]
pub struct Session {
    repo: Repository,
    context: ConceptKind,
    focus: Option<String>,
    undo_stack: Vec<Repository>,
    redo_stack: Vec<Repository>,
    /// Directory each applied op is durably appended to. Attached by
    /// [`Session::save`] and [`Session::load`]; detached (with a warning)
    /// on the first append failure so a dying disk cannot wedge the REPL.
    autosave_dir: Option<PathBuf>,
    autosave_warning: Option<String>,
    /// What salvage loading found, when this session came from disk.
    recovery: Option<RecoveryReport>,
    /// Storage the session persists through. [`RealIo`] in production;
    /// tests swap in fault-injecting implementations via [`Session::set_io`].
    io: Box<dyn RepoIo>,
    /// Checkpoint every K committed ops (`SWS_CHECKPOINT_INTERVAL` or
    /// `--checkpoint-interval=K`); `None` disables auto-checkpointing.
    checkpoint_interval: Option<u64>,
}

impl Session {
    /// Open a session on a repository. The initial context is a wagon
    /// wheel (the paper: wagon wheels carry most modifications). The
    /// auto-checkpoint interval defaults from `SWS_CHECKPOINT_INTERVAL`.
    pub fn new(repo: Repository) -> Self {
        Session {
            repo,
            context: ConceptKind::WagonWheel,
            focus: None,
            undo_stack: Vec::new(),
            redo_stack: Vec::new(),
            autosave_dir: None,
            autosave_warning: None,
            recovery: None,
            io: Box::new(RealIo),
            checkpoint_interval: std::env::var("SWS_CHECKPOINT_INTERVAL")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&k| k > 0),
        }
    }

    /// Open a session directly on extended-ODL source.
    pub fn from_odl(source: &str) -> Result<Self, SessionError> {
        Ok(Session::new(Repository::ingest_odl(source)?))
    }

    /// The repository (live).
    pub fn repository(&self) -> &Repository {
        &self.repo
    }

    /// The repository, mutably (e.g. to register local names). Alias
    /// changes participate in undo/redo like operations do.
    pub fn repository_mut(&mut self) -> &mut Repository {
        &mut self.repo
    }

    /// Register a local (display/export) name, snapshotting for undo.
    pub fn set_alias(
        &mut self,
        ty: &str,
        member: Option<&str>,
        local: &str,
    ) -> Result<(), SessionError> {
        let snapshot = self.repo.clone();
        let result = match member {
            None => self.repo.set_type_alias(ty, local),
            Some(member) => self.repo.set_member_alias(ty, member, local),
        };
        match result {
            Ok(()) => {
                self.undo_stack.push(snapshot);
                self.redo_stack.clear();
                // Aliases live outside the op log: autosave needs a full
                // rewrite, not an append.
                self.autosave_full();
                Ok(())
            }
            Err(e) => Err(SessionError::Repo(e)),
        }
    }

    /// The current concept-schema context kind.
    pub fn context(&self) -> ConceptKind {
        self.context
    }

    /// The display name of the selected concept schema, if one is selected.
    pub fn focus(&self) -> Option<&str> {
        self.focus.as_deref()
    }

    /// Decompose the current working schema.
    pub fn concepts(&self) -> Decomposition {
        self.repo.workspace().concept_schemas()
    }

    /// Flat, indexed list of all concept schemas (wagon wheels first).
    pub fn concept_list(&self) -> Vec<ConceptSchema> {
        self.concepts().all().cloned().collect()
    }

    /// Select concept schema `index` (from [`Self::concept_list`]); future
    /// operations are issued in its context.
    pub fn select(&mut self, index: usize) -> Result<ConceptSchema, SessionError> {
        let list = self.concept_list();
        let cs = list.get(index).ok_or(SessionError::NoSuchConcept(index))?;
        self.context = cs.kind;
        self.focus = Some(cs.name.clone());
        Ok(cs.clone())
    }

    /// Switch context by kind without selecting a specific concept schema.
    pub fn set_context(&mut self, kind: ConceptKind) {
        self.context = kind;
        self.focus = None;
    }

    /// Issue an already-parsed operation in the current context. With an
    /// autosave directory attached, the applied op is durably appended to
    /// the on-disk log (one fsynced record, not a full rewrite), then the
    /// auto-checkpoint interval is consulted. The append always completes
    /// before any checkpoint starts — a checkpoint's MANIFEST generation
    /// commits with no autosave interleaved into its micro-steps.
    pub fn issue(&mut self, op: ModOp) -> Result<Feedback, SessionError> {
        let snapshot = self.repo.clone();
        let feedback = self.repo.workspace_mut().apply(self.context, op.clone())?;
        self.undo_stack.push(snapshot);
        self.redo_stack.clear();
        if let Some(dir) = self.autosave_dir.clone() {
            let seq = self.repo.total_ops() - 1;
            if let Err(e) = append_log_line(self.io.as_ref(), &dir, seq, self.context, &op) {
                self.disable_autosave(&dir, &e);
            } else {
                self.maybe_autocheckpoint(&dir);
            }
        }
        Ok(feedback)
    }

    /// Checkpoint now, if enough ops accumulated since the last one.
    fn maybe_autocheckpoint(&mut self, dir: &Path) {
        let Some(k) = self.checkpoint_interval else {
            return;
        };
        let pending = self
            .repo
            .total_ops()
            .saturating_sub(self.repo.checkpoint_state().tail_start());
        if pending < k {
            return;
        }
        if let Err(e) = self.repo.checkpoint_with(self.io.as_ref(), dir) {
            // A failed checkpoint never loses committed state (the tail is
            // still intact); warn and keep designing.
            self.autosave_warning = Some(format!(
                "checkpoint to {} failed ({e}); will retry at the next interval",
                dir.display()
            ));
        }
    }

    /// Checkpoint the session directory now: snapshot the working schema,
    /// archive the replayed tail, and truncate the log (see
    /// [`Repository::checkpoint_with`]). Requires an attached directory.
    pub fn checkpoint(&mut self) -> Result<Option<CheckpointOutcome>, SessionError> {
        let dir = self.autosave_dir.clone().ok_or_else(|| {
            SessionError::Repo(RepoError::Io(std::io::Error::other(
                "no session directory attached; `save <dir>` first",
            )))
        })?;
        self.repo
            .checkpoint_with(self.io.as_ref(), &dir)
            .map_err(SessionError::from)
    }

    /// The auto-checkpoint interval (ops between checkpoints), if enabled.
    pub fn checkpoint_interval(&self) -> Option<u64> {
        self.checkpoint_interval
    }

    /// Set (or disable, with `None`) the auto-checkpoint interval.
    pub fn set_checkpoint_interval(&mut self, interval: Option<u64>) {
        self.checkpoint_interval = interval.filter(|&k| k > 0);
    }

    /// Swap the storage implementation (fault injection in tests).
    pub fn set_io(&mut self, io: Box<dyn RepoIo>) {
        self.io = io;
    }

    /// Parse a modification-language statement and issue it.
    pub fn issue_str(&mut self, statement: &str) -> Result<Feedback, SessionError> {
        let op = parse_statement(statement)?;
        self.issue(op)
    }

    /// Undo the last applied operation. Autosave rewrites the whole
    /// directory: undo shortens the op log, which an append cannot express.
    pub fn undo(&mut self) -> Result<(), SessionError> {
        let snapshot = self.undo_stack.pop().ok_or(SessionError::NothingToUndo)?;
        self.redo_stack
            .push(std::mem::replace(&mut self.repo, snapshot));
        self.autosave_full();
        Ok(())
    }

    /// Redo the last undone operation.
    pub fn redo(&mut self) -> Result<(), SessionError> {
        let snapshot = self.redo_stack.pop().ok_or(SessionError::NothingToRedo)?;
        self.undo_stack
            .push(std::mem::replace(&mut self.repo, snapshot));
        self.autosave_full();
        Ok(())
    }

    /// Drop the undo/redo history (the snapshots backing it). Long-running
    /// hosts like `swsd serve` call this after each committed batch: their
    /// rollback unit is the batch, and per-op repository snapshots would
    /// otherwise accumulate for the life of the process.
    pub fn clear_history(&mut self) {
        self.undo_stack.clear();
        self.redo_stack.clear();
    }

    /// Derive the mapping report.
    pub fn mapping(&self) -> Mapping {
        self.repo.mapping()
    }

    /// Run the consistency checks.
    pub fn consistency(&self) -> ConsistencyReport {
        self.repo.consistency()
    }

    /// Save the session and attach `dir` for autosave: every subsequently
    /// issued op is durably appended to its on-disk log.
    pub fn save(&mut self, dir: &Path) -> Result<(), SessionError> {
        self.repo.save_with(self.io.as_ref(), dir)?;
        self.autosave_dir = Some(dir.to_path_buf());
        Ok(())
    }

    /// Load a session from disk in salvage mode: damage is repaired and
    /// reported via [`Session::recovery`] rather than failing the load.
    /// The directory is attached for autosave.
    pub fn load(dir: &Path) -> Result<Self, SessionError> {
        let (repo, report) = Repository::load_salvage(dir)?;
        let mut session = Session::new(repo);
        session.autosave_dir = Some(dir.to_path_buf());
        session.recovery = Some(report);
        Ok(session)
    }

    /// Load a session from disk in salvage mode through an explicit
    /// [`RepoIo`] (crash-injection tests restart a "machine" whose disk is
    /// an in-memory image). The directory and I/O are attached for
    /// autosave.
    pub fn load_with(io: Box<dyn RepoIo>, dir: &Path) -> Result<Self, SessionError> {
        let (repo, report) =
            Repository::load_with(io.as_ref(), dir, sws_repository::LoadMode::Salvage)?;
        let mut session = Session::new(repo);
        session.autosave_dir = Some(dir.to_path_buf());
        session.recovery = Some(report);
        session.io = io;
        Ok(session)
    }

    /// Load a session from disk strictly: fail on the first checksum,
    /// parse, or replay inconsistency instead of salvaging.
    pub fn load_strict(dir: &Path) -> Result<Self, SessionError> {
        let mut session = Session::new(Repository::load(dir)?);
        session.autosave_dir = Some(dir.to_path_buf());
        Ok(session)
    }

    /// The salvage report from loading, when this session came from disk.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The directory ops are autosaved to, if one is attached.
    pub fn autosave_dir(&self) -> Option<&Path> {
        self.autosave_dir.as_deref()
    }

    /// A pending autosave failure, if one happened; taking it clears it.
    pub fn take_autosave_warning(&mut self) -> Option<String> {
        self.autosave_warning.take()
    }

    /// Write a final full save to the autosave directory, refreshing the
    /// derived files and the manifest after a run of appends.
    pub fn final_save(&mut self) -> Result<(), SessionError> {
        match self.autosave_dir.clone() {
            Some(dir) => self
                .repo
                .save_with(self.io.as_ref(), &dir)
                .map_err(SessionError::from),
            None => Ok(()),
        }
    }

    /// Full-directory autosave (undo/redo/alias paths); best-effort.
    fn autosave_full(&mut self) {
        if let Some(dir) = self.autosave_dir.clone() {
            if let Err(e) = self.repo.save_with(self.io.as_ref(), &dir) {
                self.disable_autosave(&dir, &SessionError::Repo(e));
            }
        }
    }

    fn disable_autosave(&mut self, dir: &Path, cause: &dyn fmt::Display) {
        self.autosave_warning = Some(format!(
            "autosave to {} failed ({cause}); autosave disabled — use `save` to retry",
            dir.display()
        ));
        self.autosave_dir = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::graph_to_schema;

    const SRC: &str = r#"
    schema Dept {
        interface Person { attribute string name; }
        interface Employee : Person {
            attribute long badge;
            relationship Department works_in_a inverse Department::has;
        }
        interface Department {
            relationship set<Employee> has inverse Employee::works_in_a;
        }
    }"#;

    fn session() -> Session {
        Session::from_odl(SRC).unwrap()
    }

    #[test]
    fn issue_respects_current_context() {
        let mut s = session();
        // Default context: wagon wheel — moves rejected.
        let err = s
            .issue_str("modify_attribute(Employee, badge, Person)")
            .unwrap_err();
        assert!(matches!(
            err,
            SessionError::Op(OpError::NotPermitted { .. })
        ));
        // Switch to the generalization hierarchy: allowed.
        s.set_context(ConceptKind::Generalization);
        s.issue_str("modify_attribute(Employee, badge, Person)")
            .unwrap();
        let person = s
            .repository()
            .workspace()
            .working()
            .type_id("Person")
            .unwrap();
        assert!(s
            .repository()
            .workspace()
            .working()
            .find_attr(person, "badge")
            .is_some());
    }

    #[test]
    fn select_switches_context() {
        let mut s = session();
        let list = s.concept_list();
        let gen_idx = list
            .iter()
            .position(|cs| cs.kind == ConceptKind::Generalization)
            .expect("has a generalization hierarchy");
        let cs = s.select(gen_idx).unwrap();
        assert_eq!(s.context(), ConceptKind::Generalization);
        assert_eq!(s.focus(), Some(cs.name.as_str()));
        assert!(matches!(
            s.select(999),
            Err(SessionError::NoSuchConcept(999))
        ));
    }

    #[test]
    fn undo_redo_cycle() {
        let mut s = session();
        let before = graph_to_schema(s.repository().workspace().working());
        s.issue_str("add_type_definition(Project)").unwrap();
        let after = graph_to_schema(s.repository().workspace().working());
        assert_ne!(before, after);

        s.undo().unwrap();
        assert_eq!(
            graph_to_schema(s.repository().workspace().working()),
            before
        );
        s.redo().unwrap();
        assert_eq!(graph_to_schema(s.repository().workspace().working()), after);
        assert!(matches!(s.redo(), Err(SessionError::NothingToRedo)));
        // A new operation clears the redo stack.
        s.undo().unwrap();
        s.issue_str("add_type_definition(Task)").unwrap();
        assert!(matches!(s.redo(), Err(SessionError::NothingToRedo)));
    }

    #[test]
    fn failed_issue_does_not_pollute_undo() {
        let mut s = session();
        assert!(s.issue_str("add_type_definition(Person)").is_err());
        assert!(matches!(s.undo(), Err(SessionError::NothingToUndo)));
    }

    #[test]
    fn parse_errors_surface() {
        let mut s = session();
        assert!(matches!(
            s.issue_str("frobnicate(Person)"),
            Err(SessionError::Parse(_))
        ));
    }

    #[test]
    fn save_load_preserves_session() {
        let mut s = session();
        s.issue_str("add_type_definition(Project)").unwrap();
        let dir = std::env::temp_dir().join(format!("sws_session_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        s.save(&dir).unwrap();
        let loaded = Session::load(&dir).unwrap();
        assert_eq!(
            graph_to_schema(loaded.repository().workspace().working()),
            graph_to_schema(s.repository().workspace().working())
        );
        assert!(loaded.recovery().is_some_and(|r| r.is_clean()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn issue_after_save_appends_durably() {
        let mut s = session();
        let dir = std::env::temp_dir().join(format!("sws_autosave_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        s.save(&dir).unwrap();
        assert_eq!(s.autosave_dir(), Some(dir.as_path()));

        // The op reaches the on-disk log via the append alone — no
        // explicit save between issue and load.
        s.issue_str("add_type_definition(Project)").unwrap();
        assert!(s.take_autosave_warning().is_none());
        let loaded = Session::load(&dir).unwrap();
        assert_eq!(
            graph_to_schema(loaded.repository().workspace().working()),
            graph_to_schema(s.repository().workspace().working())
        );
        // The derived files lag the appended op until a full save; the
        // salvage load regenerates them without data loss.
        assert!(!loaded.recovery().unwrap().data_loss());

        // Undo rewrites the directory (an append cannot shorten the log).
        s.undo().unwrap();
        let reloaded = Session::load(&dir).unwrap();
        assert!(reloaded.recovery().unwrap().is_clean());
        assert_eq!(reloaded.repository().workspace().log().len(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn autosave_failure_disables_itself_with_a_warning() {
        let mut s = session();
        let dir = std::env::temp_dir().join(format!("sws_autosave_gone_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        s.save(&dir).unwrap();
        // Make the directory unusable: a file where the log dir should be.
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::write(&dir, b"not a directory").unwrap();

        s.issue_str("add_type_definition(Project)").unwrap();
        let warning = s.take_autosave_warning().expect("append failure warned");
        assert!(warning.contains("autosave disabled"), "{warning}");
        assert_eq!(s.autosave_dir(), None);
        // Only warned once; the session itself keeps working.
        s.issue_str("add_type_definition(Task)").unwrap();
        assert!(s.take_autosave_warning().is_none());
        std::fs::remove_file(&dir).unwrap();
    }

    #[test]
    fn auto_checkpoint_fires_at_the_interval() {
        let mut s = session();
        s.set_checkpoint_interval(Some(2));
        assert_eq!(s.checkpoint_interval(), Some(2));
        let dir = std::env::temp_dir().join(format!("sws_autockpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        s.save(&dir).unwrap();

        s.issue_str("add_type_definition(Project)").unwrap();
        assert!(
            !dir.join("snapshot.1").exists(),
            "one op is below the interval"
        );
        s.issue_str("add_type_definition(Task)").unwrap();
        assert!(
            dir.join("snapshot.1").exists(),
            "the second op triggers the checkpoint"
        );
        assert_eq!(
            std::fs::read_to_string(dir.join("session.ops")).unwrap(),
            "",
            "tail truncated after the checkpoint"
        );
        // The next interval counts from the checkpoint, not from zero.
        s.issue_str("add_type_definition(Sprint)").unwrap();
        assert!(!dir.join("snapshot.2").exists());
        s.issue_str("add_type_definition(Epic)").unwrap();
        assert!(dir.join("snapshot.2").exists());

        let loaded = Session::load(&dir).unwrap();
        assert!(loaded.recovery().unwrap().is_clean());
        assert_eq!(
            graph_to_schema(loaded.repository().workspace().working()),
            graph_to_schema(s.repository().workspace().working())
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_commits_with_no_autosave_interleaved() {
        use std::sync::Arc;
        use sws_repository::io::{FaultIo, MemIo};

        // Session owns its RepoIo; share the FaultIo so the test can read
        // the micro-step journal after handing it over.
        #[derive(Debug, Clone)]
        struct SharedIo(Arc<FaultIo>);
        impl RepoIo for SharedIo {
            fn read(&self, p: &Path) -> std::io::Result<Vec<u8>> {
                self.0.read(p)
            }
            fn write_atomic(&self, p: &Path, d: &[u8]) -> std::io::Result<()> {
                self.0.write_atomic(p, d)
            }
            fn append_sync(&self, p: &Path, d: &[u8]) -> std::io::Result<()> {
                self.0.append_sync(p, d)
            }
            fn exists(&self, p: &Path) -> bool {
                self.0.exists(p)
            }
            fn create_dir_all(&self, p: &Path) -> std::io::Result<()> {
                self.0.create_dir_all(p)
            }
            fn remove(&self, p: &Path) -> std::io::Result<()> {
                self.0.remove(p)
            }
        }

        let io = Arc::new(FaultIo::new(MemIo::new()));
        let mut s = session();
        s.set_io(Box::new(SharedIo(io.clone())));
        s.set_checkpoint_interval(Some(1));
        let dir = PathBuf::from("/mem/session");
        s.save(&dir).unwrap();
        io.clear_journal();

        // One op at interval 1: the durable append must fully commit, then
        // the whole checkpoint runs; its MANIFEST rename is the commit
        // point, and no op-log append may land inside that window.
        s.issue_str("add_type_definition(Project)").unwrap();
        assert!(s.take_autosave_warning().is_none());
        let journal = io.journal();
        let log_append = "append /mem/session/session.ops";
        let append_at = journal
            .iter()
            .position(|l| l == log_append)
            .expect("durable append journaled");
        let snapshot_at = journal
            .iter()
            .position(|l| l.contains("snapshot.1"))
            .expect("snapshot written");
        let manifest_at = journal
            .iter()
            .rposition(|l| l.starts_with("rename") && l.ends_with("/MANIFEST"))
            .expect("manifest committed");
        assert!(
            append_at < snapshot_at,
            "append commits before the checkpoint starts: {journal:#?}"
        );
        assert!(snapshot_at < manifest_at, "{journal:#?}");
        assert!(
            journal[snapshot_at..manifest_at]
                .iter()
                .all(|l| l != log_append),
            "autosave interleaved into the checkpoint commit window: {journal:#?}"
        );
        // The tail truncation (an atomic rewrite, never an append) comes
        // only after the manifest rename committed the generation.
        assert!(
            journal[manifest_at..]
                .iter()
                .any(|l| l.starts_with("rename") && l.ends_with("/session.ops")),
            "{journal:#?}"
        );
    }

    #[test]
    fn strict_load_refuses_a_tampered_directory() {
        let mut s = session();
        let dir = std::env::temp_dir().join(format!("sws_strict_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        s.issue_str("add_type_definition(Project)").unwrap();
        s.save(&dir).unwrap();
        let custom = dir.join(sws_repository::CUSTOM_FILE);
        let mut bytes = std::fs::read(&custom).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&custom, &bytes).unwrap();

        assert!(matches!(
            Session::load_strict(&dir),
            Err(SessionError::Repo(RepoError::Corrupt { .. }))
        ));
        // Salvage mode loads, reports, and heals the same directory.
        let loaded = Session::load(&dir).unwrap();
        let report = loaded.recovery().unwrap();
        assert!(!report.is_clean());
        assert!(!report.data_loss());
        assert!(Session::load_strict(&dir).is_ok(), "healed on first load");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
