//! Crash dumps: turn the flight recorder's last-N events into a
//! checksummed `crash-report.json` when `swsd` panics or exits with an
//! error.
//!
//! The dump is one JSON object on a single line, with a **pinned key
//! order** (golden-tested):
//!
//! ```text
//! schema_version, reason, message, location, exit_code, sws_threads,
//! repo_path, recovery, active_spans, counters, events, dropped, checksum
//! ```
//!
//! `checksum` is the SplitMix64 repository checksum
//! ([`sws_repository::checksum`]) of every serialized byte before the
//! `,"checksum":…` suffix, hex-encoded — the same integrity primitive the
//! session manifest uses, so a truncated or hand-edited report is
//! detectable with [`checksum_valid`].
//!
//! Everything here is panic-hook-safe: locks are poison-tolerant and I/O
//! failures are reported to stderr, never unwound.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};
use sws_repository::checksum;
use sws_trace::export::{escape_json, event_json};
use sws_trace::flight;

/// Version of the crash-report JSON schema.
pub const SCHEMA_VERSION: u64 = 1;

/// The dump file name, created inside the crash directory.
pub const FILE_NAME: &str = "crash-report.json";

struct Context {
    repo_path: Option<String>,
    recovery: Option<String>,
    dump_dir: Option<PathBuf>,
}

static CONTEXT: Mutex<Context> = Mutex::new(Context {
    repo_path: None,
    recovery: None,
    dump_dir: None,
});

fn context() -> MutexGuard<'static, Context> {
    CONTEXT.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Record the schema file / session directory the process is working on.
pub fn set_repo_path(path: &str) {
    context().repo_path = Some(path.to_string());
}

/// Record the rendered salvage [`RecoveryReport`]
/// (sws_repository::RecoveryReport) of the loaded session, if any.
pub fn set_recovery(rendered: String) {
    context().recovery = Some(rendered);
}

/// Direct dumps into `dir` (normally the attached session directory).
pub fn set_dump_dir(dir: &Path) {
    context().dump_dir = Some(dir.to_path_buf());
}

/// Where a dump would be written right now: `SWS_CRASH_DIR` if set, else
/// the directory given to [`set_dump_dir`], else the current directory.
pub fn dump_path() -> PathBuf {
    let dir = std::env::var_os("SWS_CRASH_DIR")
        .map(PathBuf::from)
        .or_else(|| context().dump_dir.clone())
        .unwrap_or_else(|| PathBuf::from("."));
    dir.join(FILE_NAME)
}

fn json_opt_str(value: &Option<String>) -> String {
    match value {
        Some(s) => format!("\"{}\"", escape_json(s)),
        None => "null".to_string(),
    }
}

/// Serialize the report. `reason` is `"panic"` or `"error_exit"`.
fn render(reason: &str, message: &str, location: Option<&str>, exit_code: Option<u8>) -> String {
    let snapshot = flight::active().map(|f| f.snapshot()).unwrap_or_default();
    let stack = snapshot.stack_from(sws_trace::current_span_id());
    let ctx = {
        let guard = context();
        (guard.repo_path.clone(), guard.recovery.clone())
    };

    let mut out = String::with_capacity(4096);
    out.push_str(&format!("{{\"schema_version\":{SCHEMA_VERSION}"));
    out.push_str(&format!(",\"reason\":\"{}\"", escape_json(reason)));
    out.push_str(&format!(",\"message\":\"{}\"", escape_json(message)));
    out.push_str(&format!(
        ",\"location\":{}",
        json_opt_str(&location.map(str::to_string))
    ));
    match exit_code {
        Some(code) => out.push_str(&format!(",\"exit_code\":{code}")),
        None => out.push_str(",\"exit_code\":null"),
    }
    out.push_str(&format!(
        ",\"sws_threads\":{}",
        json_opt_str(&std::env::var("SWS_THREADS").ok())
    ));
    out.push_str(&format!(",\"repo_path\":{}", json_opt_str(&ctx.0)));
    out.push_str(&format!(",\"recovery\":{}", json_opt_str(&ctx.1)));
    out.push_str(",\"active_spans\":[");
    for (i, name) in stack.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", escape_json(name)));
    }
    out.push_str("],\"counters\":{");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{value}", escape_json(name)));
    }
    out.push_str("},\"events\":[");
    for (i, event) in snapshot.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&event_json(event));
    }
    out.push_str(&format!("],\"dropped\":{}", snapshot.dropped));
    let sum = checksum::checksum(out.as_bytes());
    out.push_str(&format!(",\"checksum\":\"{}\"}}", checksum::to_hex(sum)));
    out
}

/// Verify a report produced by this module: recompute the checksum over
/// everything before the `,"checksum":…` suffix.
pub fn checksum_valid(report: &str) -> bool {
    let report = report.trim_end();
    let Some(at) = report.rfind(",\"checksum\":\"") else {
        return false;
    };
    let body = &report[..at];
    let suffix = &report[at + ",\"checksum\":\"".len()..];
    let Some(hex) = suffix.strip_suffix("\"}") else {
        return false;
    };
    checksum::from_hex(hex) == Some(checksum::checksum(body.as_bytes()))
}

fn write_dump(reason: &str, message: &str, location: Option<&str>, exit_code: Option<u8>) {
    let path = dump_path();
    let mut report = render(reason, message, location, exit_code);
    report.push('\n');
    match std::fs::write(&path, report) {
        Ok(()) => eprintln!("swsd: crash report written to {}", path.display()),
        Err(e) => eprintln!("swsd: cannot write crash report to {}: {e}", path.display()),
    }
}

/// Dump a report for an error exit (load failure, corrupt session, I/O
/// failure) before the process returns `exit_code`.
pub fn dump_error_exit(message: &str, exit_code: u8) {
    write_dump("error_exit", message, None, Some(exit_code));
}

/// Install the panic hook: dump `crash-report.json`, then run the
/// previous hook (which prints the normal panic message). Idempotent per
/// process in effect, but call it once from `main`.
pub fn install_panic_hook() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".to_string());
        let location = info
            .location()
            .map(|l| format!("{}:{}", l.file(), l.line()));
        write_dump("panic", &message, location.as_deref(), None);
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_valid_json_with_pinned_keys_and_checksum() {
        let report = render("error_exit", "it \"broke\"", Some("src/x.rs:7"), Some(4));
        sws_trace::export::jsonl::check_value(&report).expect("valid JSON");
        assert!(checksum_valid(&report));
        // Key order is part of the format.
        let order = [
            "schema_version",
            "reason",
            "message",
            "location",
            "exit_code",
            "sws_threads",
            "repo_path",
            "recovery",
            "active_spans",
            "counters",
            "events",
            "dropped",
            "checksum",
        ];
        let mut last = 0;
        for key in order {
            let at = report
                .find(&format!("\"{key}\":"))
                .unwrap_or_else(|| panic!("missing key {key}"));
            assert!(
                at > last || key == "schema_version",
                "key {key} out of order"
            );
            last = at;
        }
        assert!(report.contains("\"reason\":\"error_exit\""));
        assert!(report.contains("\"exit_code\":4"));
        assert!(report.contains("it \\\"broke\\\""));
    }

    #[test]
    fn tampering_breaks_the_checksum() {
        let report = render("panic", "boom", None, None);
        assert!(checksum_valid(&report));
        let tampered = report.replace("\"reason\":\"panic\"", "\"reason\":\"calm!\"");
        assert_ne!(report, tampered);
        assert!(!checksum_valid(&tampered));
        assert!(!checksum_valid("not json at all"));
        assert!(!checksum_valid("{\"checksum\":\"00\"}"));
    }
}
