//! The transport-agnostic design service: many named client sessions
//! editing one repository under **optimistic concurrency**.
//!
//! [`DesignService`] wraps a [`Session`] behind a typed [`Request`] /
//! [`Response`] API. Every mutating request carries a `base_rev` — the
//! accepted-op total-order length (`Repository::total_ops`) the client
//! issued it against. A submit at the current head applies atomically and
//! advances the revision; a stale submit is never applied — it gets a
//! structured [`Response::Conflict`] carrying the **delta** of accepted
//! ops since `base_rev`, plus a commutation-based classification (the
//! `crates/analyze` footprint machinery) of whether the client can rebase
//! mechanically (`auto_rebasable`) or has a true conflict to resolve.
//!
//! Concurrency contract:
//!
//! * **Mutations are totally ordered.** `submit` and `checkpoint` take the
//!   core lock; the accepted-op log is the single serialization point, so
//!   a serial replay of the log always reproduces the live state.
//! * **Reads never take the core lock.** `report`, `export`, `log`,
//!   `lint`, and `ping` are served from an immutable [`ReadView`] snapshot
//!   (swapped atomically after each accepted mutation), so any number of
//!   sessions can read concurrently while another writes.
//! * **Checkpointing stays off the request path.** A submit never
//!   checkpoints inline; [`DesignService::maintain`] — called by the
//!   server *after* the response is written — compacts once enough ops
//!   accumulate (see `docs/serve.md`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

use sws_analyze::{analyze_ops, commutes, footprint};
use sws_core::oplang::{parse_statement, print_op};
use sws_core::{ConceptKind, ModOp};
use sws_model::SchemaGraph;

use crate::session::{Session, SessionError};

/// One operation inside a submit or lint batch: the concept-schema
/// context it is issued in, plus the op-language statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpEnvelope {
    pub context: ConceptKind,
    pub statement: String,
}

/// One accepted operation in the total order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Position in the accepted total order (== the `base_rev` a client
    /// must submit with to extend the log right after this op).
    pub seq: u64,
    /// The client session that submitted it.
    pub session: String,
    pub context: ConceptKind,
    /// `print_op` rendering; parses back with `parse_statement`.
    pub statement: String,
}

/// Why a stale submit could not be classified as auto-rebasable: the
/// submitted op and an accepted delta op have overlapping footprints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictHint {
    /// Index into the submitted batch.
    pub op: usize,
    /// Sequence number of the conflicting accepted op.
    pub seq: u64,
    pub reason: String,
}

/// One static-analysis finding, flattened for the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    pub index: usize,
    pub code: String,
    pub severity: String,
    pub message: String,
}

/// Machine-readable error classes (the `code` field of
/// [`Response::Error`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not a well-formed request (bad JSON, missing or
    /// ill-typed fields, unknown request type).
    MalformedFrame,
    /// The named session was never opened.
    UnknownSession,
    /// Structurally valid but unserviceable (e.g. `base_rev` ahead of the
    /// head, or a lint batch that does not parse).
    BadRequest,
    /// `base_rev` predates what this server still holds a delta for; the
    /// client must re-open and resync.
    DeltaHorizon,
}

impl ErrorCode {
    pub fn tag(self) -> &'static str {
        match self {
            ErrorCode::MalformedFrame => "malformed_frame",
            ErrorCode::UnknownSession => "unknown_session",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::DeltaHorizon => "delta_horizon",
        }
    }
}

/// A request to the design service. See `docs/serve.md` for the wire
/// encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open (or re-attach to) a named session; returns the current rev.
    Open { session: String },
    /// Apply an op batch atomically, issued against `base_rev`.
    Submit {
        session: String,
        base_rev: u64,
        ops: Vec<OpEnvelope>,
    },
    /// Statically analyze a batch against the current head (never applies).
    Lint {
        session: String,
        ops: Vec<OpEnvelope>,
    },
    /// Summary of the current design state.
    Report { session: String },
    /// The custom schema as extended ODL.
    Export { session: String },
    /// The accepted-op total order from `since` (a rev) to the head.
    Log { session: String, since: u64 },
    /// Force a checkpoint of the attached session directory.
    Checkpoint { session: String },
    /// Liveness probe.
    Ping,
    /// Stop serving; the server flushes autosave and exits cleanly.
    Shutdown,
}

/// A response from the design service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    Opened {
        session: String,
        rev: u64,
        types: usize,
        concepts: usize,
    },
    /// The whole batch applied; the head moved from `base_rev` to `rev`.
    Accepted {
        session: String,
        base_rev: u64,
        rev: u64,
        applied: usize,
        warnings: Vec<String>,
    },
    /// Stale `base_rev`: nothing applied. `delta` holds every accepted op
    /// in `[base_rev, rev)`; `auto_rebasable` is true when every submitted
    /// op commutes with every delta op *and* the batch still passes the
    /// static analyzer at the current head.
    Conflict {
        session: String,
        base_rev: u64,
        rev: u64,
        auto_rebasable: bool,
        delta: Vec<LogRecord>,
        conflicts: Vec<ConflictHint>,
    },
    /// The batch was rejected at `index` (parse error or the executor's
    /// permission/precondition pipeline); **nothing** was applied.
    Rejected {
        session: String,
        rev: u64,
        index: usize,
        error: String,
    },
    Linted {
        rev: u64,
        ops: usize,
        passes: bool,
        findings: Vec<LintFinding>,
    },
    Reported {
        rev: u64,
        types: usize,
        concepts: usize,
        errors: usize,
        warnings: usize,
    },
    Exported {
        rev: u64,
        odl: String,
    },
    LogSlice {
        rev: u64,
        since: u64,
        ops: Vec<LogRecord>,
    },
    Checkpointed {
        rev: u64,
        generation: Option<u64>,
        ops_covered: u64,
    },
    Pong {
        rev: u64,
        sessions: usize,
    },
    Bye,
    Error {
        code: ErrorCode,
        message: String,
    },
}

impl Response {
    /// The wire tag (the `type` field).
    pub fn tag(&self) -> &'static str {
        match self {
            Response::Opened { .. } => "opened",
            Response::Accepted { .. } => "accepted",
            Response::Conflict { .. } => "conflict",
            Response::Rejected { .. } => "rejected",
            Response::Linted { .. } => "linted",
            Response::Reported { .. } => "reported",
            Response::Exported { .. } => "exported",
            Response::LogSlice { .. } => "log",
            Response::Checkpointed { .. } => "checkpointed",
            Response::Pong { .. } => "pong",
            Response::Bye => "bye",
            Response::Error { .. } => "error",
        }
    }
}

/// The immutable read snapshot: refreshed under the core lock after every
/// accepted mutation, read lock-free(ish) by any number of sessions.
#[derive(Debug)]
pub struct ReadView {
    pub rev: u64,
    pub types: usize,
    pub concepts: usize,
    /// `Repository::custom_schema_odl` of the head state.
    pub odl: String,
    /// Cross-schema consistency error / warning counts at the head.
    pub errors: usize,
    pub warnings: usize,
    /// Head working graph (for lint's abstract interpreter).
    pub working: Arc<SchemaGraph>,
    /// The immutable shrink-wrap schema.
    pub shrink: Arc<SchemaGraph>,
}

#[derive(Debug, Clone, Copy)]
struct SessionMeta {
    /// The head rev when the session was (first) opened; reattaching keeps
    /// the original. Exposed via [`DesignService::opened_rev`].
    opened_rev: u64,
}

struct Core {
    session: Session,
}

/// The service. See the module docs for the locking contract; lock order
/// is always `sessions` → `core` → `log` → `view`.
pub struct DesignService {
    sessions: RwLock<HashMap<String, SessionMeta>>,
    core: Mutex<Core>,
    log: RwLock<Vec<LogRecord>>,
    view: RwLock<Arc<ReadView>>,
    /// First rev this service holds a delta from (the repository may have
    /// ops from before the service started; those are behind the horizon).
    start_rev: u64,
    /// Checkpoint every K accepted ops, off the request path (taken from
    /// the session's interval at construction; the session's own inline
    /// auto-checkpointing is disabled).
    checkpoint_every: Option<u64>,
    /// Accepted ops since the last checkpoint — lets [`Self::maintain`]
    /// bail out without touching the core lock.
    ops_since_checkpoint: AtomicU64,
    shutdown: AtomicBool,
}

impl std::fmt::Debug for DesignService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DesignService")
            .field("start_rev", &self.start_rev)
            .field("checkpoint_every", &self.checkpoint_every)
            .finish_non_exhaustive()
    }
}

fn lock_core(core: &Mutex<Core>) -> MutexGuard<'_, Core> {
    // A panic while applying an op leaves the repository on its pre-op
    // state (apply is transactional); serving must survive it.
    core.lock().unwrap_or_else(PoisonError::into_inner)
}

impl DesignService {
    /// Wrap a session. The session's inline auto-checkpoint interval (if
    /// any) moves to the service's off-request-path maintenance.
    pub fn new(mut session: Session) -> Self {
        let checkpoint_every = session.checkpoint_interval();
        session.set_checkpoint_interval(None);
        let start_rev = session.repository().total_ops();
        let view = Arc::new(Self::snapshot(&session));
        DesignService {
            sessions: RwLock::new(HashMap::new()),
            core: Mutex::new(Core { session }),
            log: RwLock::new(Vec::new()),
            view: RwLock::new(view),
            start_rev,
            checkpoint_every,
            ops_since_checkpoint: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    fn snapshot(session: &Session) -> ReadView {
        let repo = session.repository();
        let consistency = repo.consistency();
        ReadView {
            rev: repo.total_ops(),
            types: repo.workspace().working().type_count(),
            concepts: session.concept_list().len(),
            odl: repo.custom_schema_odl(),
            errors: consistency.errors().count(),
            warnings: consistency.warnings().count(),
            working: Arc::new(repo.workspace().working().clone()),
            shrink: Arc::new(repo.workspace().shrink_wrap().clone()),
        }
    }

    /// The current read snapshot.
    pub fn view(&self) -> Arc<ReadView> {
        self.view
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn refresh_view(&self, core: &Core) {
        let fresh = Arc::new(Self::snapshot(&core.session));
        *self.view.write().unwrap_or_else(PoisonError::into_inner) = fresh;
    }

    /// Has a shutdown been requested (by a `shutdown` frame or
    /// [`Self::request_shutdown`])?
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Ask the server loop to stop after in-flight requests.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Handle one request. The single entry point for every transport.
    pub fn handle(&self, request: Request) -> Response {
        let mut sp = sws_trace::span!("serve.request");
        sws_trace::counter("serve.requests", 1);
        let response = match request {
            Request::Open { session } => self.open(session),
            Request::Submit {
                session,
                base_rev,
                ops,
            } => self.submit(&session, base_rev, &ops),
            Request::Lint { session, ops } => self.lint(&session, &ops),
            Request::Report { session } => self.report(&session),
            Request::Export { session } => self.export(&session),
            Request::Log { session, since } => self.log_slice(&session, since),
            Request::Checkpoint { session } => self.checkpoint(&session),
            Request::Ping => self.ping(),
            Request::Shutdown => {
                self.request_shutdown();
                Response::Bye
            }
        };
        sp.record("type", response.tag());
        response
    }

    /// Checkpoint the attached session directory if enough ops accumulated
    /// since the last one. Called by the server *after* a response is
    /// written, so compaction cost never lands on a request's latency.
    /// Returns true when a checkpoint was committed.
    pub fn maintain(&self) -> bool {
        let Some(k) = self.checkpoint_every else {
            return false;
        };
        if self.ops_since_checkpoint.load(Ordering::Relaxed) < k {
            return false;
        }
        let mut core = lock_core(&self.core);
        if core.session.autosave_dir().is_none() {
            return false;
        }
        let pending = {
            let repo = core.session.repository();
            repo.total_ops()
                .saturating_sub(repo.checkpoint_state().tail_start())
        };
        if pending < k {
            self.ops_since_checkpoint.store(pending, Ordering::Relaxed);
            return false;
        }
        match core.session.checkpoint() {
            Ok(Some(_)) => {
                sws_trace::counter("serve.checkpoints", 1);
                self.ops_since_checkpoint.store(0, Ordering::Relaxed);
                true
            }
            Ok(None) => {
                self.ops_since_checkpoint.store(0, Ordering::Relaxed);
                false
            }
            Err(_) => {
                // A failed checkpoint never loses committed state; retry
                // at the next maintenance pass.
                sws_trace::counter("serve.checkpoint_failures", 1);
                false
            }
        }
    }

    /// Flush a final full save to the attached directory (clean shutdown).
    pub fn final_save(&self) -> Result<(), SessionError> {
        lock_core(&self.core).session.final_save()
    }

    /// Run `f` against the live session under the core lock (test and
    /// integration hook — e.g. to read the salvage report or swap I/O).
    pub fn with_session<R>(&self, f: impl FnOnce(&mut Session) -> R) -> R {
        f(&mut lock_core(&self.core).session)
    }

    fn open(&self, session: String) -> Response {
        let view = self.view();
        let mut sessions = self
            .sessions
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let fresh = !sessions.contains_key(&session);
        sessions.entry(session.clone()).or_insert(SessionMeta {
            opened_rev: view.rev,
        });
        if fresh {
            sws_trace::counter("serve.sessions_opened", 1);
        }
        Response::Opened {
            session,
            rev: view.rev,
            types: view.types,
            concepts: view.concepts,
        }
    }

    /// The head rev at the session's first `open`, if it is open at all.
    pub fn opened_rev(&self, session: &str) -> Option<u64> {
        self.sessions
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(session)
            .map(|meta| meta.opened_rev)
    }

    fn known(&self, session: &str) -> bool {
        self.sessions
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(session)
    }

    fn unknown_session(session: &str) -> Response {
        Response::Error {
            code: ErrorCode::UnknownSession,
            message: format!("session `{session}` is not open (send an `open` frame first)"),
        }
    }

    /// Parse a batch; `Err` carries the failing index and message.
    fn parse_batch(ops: &[OpEnvelope]) -> Result<Vec<(ConceptKind, ModOp)>, (usize, String)> {
        ops.iter()
            .enumerate()
            .map(|(i, env)| {
                parse_statement(&env.statement)
                    .map(|op| (env.context, op))
                    .map_err(|e| (i, format!("ops[{i}]: {e}")))
            })
            .collect()
    }

    fn submit(&self, session: &str, base_rev: u64, ops: &[OpEnvelope]) -> Response {
        if !self.known(session) {
            return Self::unknown_session(session);
        }
        let script = match Self::parse_batch(ops) {
            Ok(s) => s,
            Err((index, error)) => {
                sws_trace::counter("serve.rejected", 1);
                return Response::Rejected {
                    session: session.to_string(),
                    rev: self.view().rev,
                    index,
                    error,
                };
            }
        };

        let mut core = lock_core(&self.core);
        let rev = core.session.repository().total_ops();
        if base_rev > rev {
            return Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("base_rev {base_rev} is ahead of the head (rev {rev})"),
            };
        }
        if base_rev < rev {
            return self.conflict(&core, session, base_rev, rev, ops, &script);
        }

        // At the head: apply atomically. Any failure rolls the applied
        // prefix back, so a `rejected` response always means "nothing
        // happened".
        let mut warnings = Vec::new();
        for (i, (context, op)) in script.iter().enumerate() {
            core.session.set_context(*context);
            match core.session.issue(op.clone()) {
                Ok(feedback) => {
                    warnings.extend(feedback.warnings.iter().map(|w| format!("ops[{i}]: {w}")));
                }
                Err(e) => {
                    for _ in 0..i {
                        core.session
                            .undo()
                            .expect("undoing the just-applied batch prefix");
                    }
                    core.session.clear_history();
                    sws_trace::counter("serve.rejected", 1);
                    return Response::Rejected {
                        session: session.to_string(),
                        rev,
                        index: i,
                        error: e.to_string(),
                    };
                }
            }
        }
        if let Some(w) = core.session.take_autosave_warning() {
            warnings.push(format!("autosave: {w}"));
        }
        // The batch is in; drop the per-op undo snapshots (the service's
        // only rollback unit is the batch) and publish.
        core.session.clear_history();
        {
            let mut log = self.log.write().unwrap_or_else(PoisonError::into_inner);
            for (i, (context, op)) in script.iter().enumerate() {
                log.push(LogRecord {
                    seq: rev + i as u64,
                    session: session.to_string(),
                    context: *context,
                    statement: print_op(op),
                });
            }
        }
        self.ops_since_checkpoint
            .fetch_add(script.len() as u64, Ordering::Relaxed);
        sws_trace::counter("serve.ops_accepted", script.len() as u64);
        self.refresh_view(&core);
        Response::Accepted {
            session: session.to_string(),
            base_rev,
            rev: rev + script.len() as u64,
            applied: script.len(),
            warnings,
        }
    }

    /// Build the conflict report for a stale submit: the delta since
    /// `base_rev`, pairwise commutation hints, and the auto-rebasable
    /// verdict. Nothing is applied.
    fn conflict(
        &self,
        core: &Core,
        session: &str,
        base_rev: u64,
        rev: u64,
        ops: &[OpEnvelope],
        script: &[(ConceptKind, ModOp)],
    ) -> Response {
        if base_rev < self.start_rev {
            return Response::Error {
                code: ErrorCode::DeltaHorizon,
                message: format!(
                    "base_rev {base_rev} predates this server's log horizon ({}); \
                     re-open the session and resync",
                    self.start_rev
                ),
            };
        }
        let delta: Vec<LogRecord> = {
            let log = self.log.read().unwrap_or_else(PoisonError::into_inner);
            let from = (base_rev - self.start_rev) as usize;
            log[from..].to_vec()
        };
        let mut conflicts = Vec::new();
        for (i, (_, op)) in script.iter().enumerate() {
            let fp = footprint(op);
            for record in &delta {
                let accepted = parse_statement(&record.statement)
                    .expect("accepted log statements round-trip through print_op");
                if !commutes(&fp, &footprint(&accepted)) {
                    conflicts.push(ConflictHint {
                        op: i,
                        seq: record.seq,
                        reason: format!(
                            "`{}` does not commute with accepted #{} `{}`",
                            ops[i].statement, record.seq, record.statement
                        ),
                    });
                }
            }
        }
        // Auto-rebasable = order-independent (everything commutes) and the
        // analyzer proves the batch still applies cleanly at the head.
        let ws = core.session.repository().workspace();
        let auto_rebasable =
            conflicts.is_empty() && analyze_ops(ws.working(), ws.shrink_wrap(), script).passes();
        sws_trace::counter("serve.conflicts", 1);
        if auto_rebasable {
            sws_trace::counter("serve.rebase_auto", 1);
        } else {
            sws_trace::counter("serve.rebase_manual", 1);
        }
        Response::Conflict {
            session: session.to_string(),
            base_rev,
            rev,
            auto_rebasable,
            delta,
            conflicts,
        }
    }

    fn lint(&self, session: &str, ops: &[OpEnvelope]) -> Response {
        if !self.known(session) {
            return Self::unknown_session(session);
        }
        let script = match Self::parse_batch(ops) {
            Ok(s) => s,
            Err((_, error)) => {
                return Response::Error {
                    code: ErrorCode::BadRequest,
                    message: error,
                }
            }
        };
        let view = self.view();
        let report = analyze_ops(&view.working, &view.shrink, &script);
        Response::Linted {
            rev: view.rev,
            ops: script.len(),
            passes: report.passes(),
            findings: report
                .findings
                .iter()
                .map(|f| LintFinding {
                    index: f.index,
                    code: f.code.to_string(),
                    severity: format!("{:?}", f.severity).to_lowercase(),
                    message: f.message.clone(),
                })
                .collect(),
        }
    }

    fn report(&self, session: &str) -> Response {
        if !self.known(session) {
            return Self::unknown_session(session);
        }
        let view = self.view();
        Response::Reported {
            rev: view.rev,
            types: view.types,
            concepts: view.concepts,
            errors: view.errors,
            warnings: view.warnings,
        }
    }

    fn export(&self, session: &str) -> Response {
        if !self.known(session) {
            return Self::unknown_session(session);
        }
        let view = self.view();
        Response::Exported {
            rev: view.rev,
            odl: view.odl.clone(),
        }
    }

    fn log_slice(&self, session: &str, since: u64) -> Response {
        if !self.known(session) {
            return Self::unknown_session(session);
        }
        let view = self.view();
        if since > view.rev {
            return Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("since {since} is ahead of the head (rev {})", view.rev),
            };
        }
        if since < self.start_rev {
            return Response::Error {
                code: ErrorCode::DeltaHorizon,
                message: format!(
                    "since {since} predates this server's log horizon ({})",
                    self.start_rev
                ),
            };
        }
        let ops: Vec<LogRecord> = {
            let log = self.log.read().unwrap_or_else(PoisonError::into_inner);
            let from = (since - self.start_rev) as usize;
            // The view can trail the log by an in-flight publish; slice to
            // the view's rev so `rev` and `ops` are mutually consistent.
            let to = ((view.rev - self.start_rev) as usize).min(log.len());
            log[from.min(to)..to].to_vec()
        };
        Response::LogSlice {
            rev: view.rev,
            since,
            ops,
        }
    }

    fn checkpoint(&self, session: &str) -> Response {
        if !self.known(session) {
            return Self::unknown_session(session);
        }
        let mut core = lock_core(&self.core);
        if core.session.autosave_dir().is_none() {
            return Response::Error {
                code: ErrorCode::BadRequest,
                message: "no session directory attached; serve with --session <dir>".to_string(),
            };
        }
        let rev = core.session.repository().total_ops();
        match core.session.checkpoint() {
            Ok(Some(outcome)) => {
                sws_trace::counter("serve.checkpoints", 1);
                self.ops_since_checkpoint.store(0, Ordering::Relaxed);
                Response::Checkpointed {
                    rev,
                    generation: Some(outcome.generation),
                    ops_covered: outcome.ops_covered,
                }
            }
            Ok(None) => Response::Checkpointed {
                rev,
                generation: None,
                ops_covered: 0,
            },
            Err(e) => Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("checkpoint failed: {e}"),
            },
        }
    }

    fn ping(&self) -> Response {
        let view = self.view();
        let sessions = self
            .sessions
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len();
        Response::Pong {
            rev: view.rev,
            sessions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
    schema Dept {
        interface Person { attribute string name; }
        interface Employee : Person {
            attribute long badge;
            relationship Department works_in_a inverse Department::has;
        }
        interface Department {
            relationship set<Employee> has inverse Employee::works_in_a;
        }
    }"#;

    fn service() -> DesignService {
        DesignService::new(Session::from_odl(SRC).expect("test schema parses"))
    }

    fn wagon(stmt: &str) -> OpEnvelope {
        OpEnvelope {
            context: ConceptKind::WagonWheel,
            statement: stmt.to_string(),
        }
    }

    fn open(svc: &DesignService, name: &str) -> u64 {
        match svc.handle(Request::Open {
            session: name.to_string(),
        }) {
            Response::Opened { rev, .. } => rev,
            other => panic!("open: {other:?}"),
        }
    }

    #[test]
    fn open_submit_advances_rev() {
        let svc = service();
        let rev = open(&svc, "alice");
        assert_eq!(rev, 0);
        let resp = svc.handle(Request::Submit {
            session: "alice".into(),
            base_rev: 0,
            ops: vec![wagon("add_type_definition(Project)")],
        });
        match resp {
            Response::Accepted {
                rev, applied: 1, ..
            } => assert_eq!(rev, 1),
            other => panic!("submit: {other:?}"),
        }
        assert_eq!(svc.view().rev, 1);
        assert!(svc.view().odl.contains("Project"));
    }

    #[test]
    fn unknown_session_is_an_error() {
        let svc = service();
        let resp = svc.handle(Request::Report {
            session: "ghost".into(),
        });
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::UnknownSession,
                ..
            }
        ));
    }

    #[test]
    fn stale_submit_conflicts_with_delta_and_commute_classification() {
        let svc = service();
        open(&svc, "alice");
        open(&svc, "bob");
        // Alice moves the head to 1.
        svc.handle(Request::Submit {
            session: "alice".into(),
            base_rev: 0,
            ops: vec![wagon("add_type_definition(Project)")],
        });
        // Bob submits against rev 0: a disjoint op — auto-rebasable.
        let resp = svc.handle(Request::Submit {
            session: "bob".into(),
            base_rev: 0,
            ops: vec![wagon("add_type_definition(Task)")],
        });
        match resp {
            Response::Conflict {
                base_rev,
                rev,
                auto_rebasable,
                delta,
                conflicts,
                ..
            } => {
                assert_eq!((base_rev, rev), (0, 1));
                assert!(auto_rebasable, "disjoint adds commute");
                assert!(conflicts.is_empty());
                assert_eq!(delta.len(), 1);
                assert_eq!(delta[0].statement, "add_type_definition(Project)");
                assert_eq!(delta[0].session, "alice");
            }
            other => panic!("expected conflict: {other:?}"),
        }
        // Bob rebases: resubmits at the head; nothing was applied before.
        let resp = svc.handle(Request::Submit {
            session: "bob".into(),
            base_rev: 1,
            ops: vec![wagon("add_type_definition(Task)")],
        });
        assert!(matches!(resp, Response::Accepted { rev: 2, .. }));

        // A true conflict: both touch the same attribute.
        svc.handle(Request::Submit {
            session: "alice".into(),
            base_rev: 2,
            ops: vec![wagon("delete_attribute(Employee, badge)")],
        });
        let resp = svc.handle(Request::Submit {
            session: "bob".into(),
            base_rev: 2,
            ops: vec![wagon("delete_attribute(Employee, badge)")],
        });
        match resp {
            Response::Conflict {
                auto_rebasable,
                conflicts,
                ..
            } => {
                assert!(!auto_rebasable, "same-construct delete is a true conflict");
                assert_eq!(conflicts.len(), 1);
                assert_eq!(conflicts[0].op, 0);
                assert_eq!(conflicts[0].seq, 2);
            }
            other => panic!("expected conflict: {other:?}"),
        }
    }

    #[test]
    fn rejected_batch_applies_nothing() {
        let svc = service();
        open(&svc, "alice");
        let before = svc.view().odl.clone();
        // Second op fails preconditions (duplicate type): atomic rollback.
        let resp = svc.handle(Request::Submit {
            session: "alice".into(),
            base_rev: 0,
            ops: vec![
                wagon("add_type_definition(Project)"),
                wagon("add_type_definition(Person)"),
            ],
        });
        match resp {
            Response::Rejected { rev, index, .. } => {
                assert_eq!(rev, 0);
                assert_eq!(index, 1);
            }
            other => panic!("expected rejected: {other:?}"),
        }
        assert_eq!(svc.view().rev, 0);
        assert_eq!(svc.view().odl, before, "rollback restored the head");
        // The log recorded nothing.
        match svc.handle(Request::Log {
            session: "alice".into(),
            since: 0,
        }) {
            Response::LogSlice { ops, .. } => assert!(ops.is_empty()),
            other => panic!("log: {other:?}"),
        }
    }

    #[test]
    fn log_slice_replays_to_the_exported_state() {
        let svc = service();
        open(&svc, "alice");
        for stmt in [
            "add_type_definition(Project)",
            "add_attribute(Project, long, budget)",
            "delete_attribute(Employee, badge)",
        ] {
            let rev = svc.view().rev;
            let resp = svc.handle(Request::Submit {
                session: "alice".into(),
                base_rev: rev,
                ops: vec![wagon(stmt)],
            });
            assert!(
                matches!(resp, Response::Accepted { .. }),
                "{stmt}: {resp:?}"
            );
        }
        let (odl, records) = match (
            svc.handle(Request::Export {
                session: "alice".into(),
            }),
            svc.handle(Request::Log {
                session: "alice".into(),
                since: 0,
            }),
        ) {
            (Response::Exported { odl, .. }, Response::LogSlice { ops, .. }) => (odl, ops),
            other => panic!("{other:?}"),
        };
        assert_eq!(records.len(), 3);
        // Serial replay of the accepted total order reproduces the export
        // byte-for-byte.
        let mut replay = sws_repository::Repository::ingest_odl(SRC).expect("test schema parses");
        for record in &records {
            let op = parse_statement(&record.statement).expect("log statements parse");
            replay
                .workspace_mut()
                .apply(record.context, op)
                .expect("accepted ops replay cleanly");
        }
        assert_eq!(replay.custom_schema_odl(), odl);
    }

    #[test]
    fn lint_never_mutates() {
        let svc = service();
        open(&svc, "alice");
        let resp = svc.handle(Request::Lint {
            session: "alice".into(),
            ops: vec![wagon("delete_attribute(Employee, nonexistent)")],
        });
        match resp {
            Response::Linted {
                passes, findings, ..
            } => {
                assert!(!passes);
                assert!(!findings.is_empty());
            }
            other => panic!("lint: {other:?}"),
        }
        assert_eq!(svc.view().rev, 0);
    }

    #[test]
    fn shutdown_flag_and_ping() {
        let svc = service();
        assert!(matches!(
            svc.handle(Request::Ping),
            Response::Pong {
                rev: 0,
                sessions: 0
            }
        ));
        assert!(!svc.is_shutdown());
        assert!(matches!(svc.handle(Request::Shutdown), Response::Bye));
        assert!(svc.is_shutdown());
    }

    #[test]
    fn base_rev_ahead_of_head_is_bad_request() {
        let svc = service();
        open(&svc, "alice");
        let resp = svc.handle(Request::Submit {
            session: "alice".into(),
            base_rev: 99,
            ops: vec![wagon("add_type_definition(Project)")],
        });
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
    }
}
