//! The ACEDB family of genome-database schemas (paper §4, Figs. 9–11).
//!
//! ACEDB was built for the nematode genome project and manually reused for
//! the Arabidopsis database (AAtDB) and the Saccharomyces database
//! (SacchDB); the paper's case study observes that the three schemas share
//! a large set of same-named object types with largely identical structure,
//! and argues the descendants could have been derived from an ACEDB shrink
//! wrap schema with the modification operations.
//!
//! The published figures show only the shared object types and their
//! interconnections; we reconstruct those plus plausible attributes so the
//! case-study metrics are computable. Differences mirror the paper's
//! observations, e.g. ACEDB's `Strain` corresponds to AAtDB's `Phenotype`
//! (semantically equivalent animal/plant terms — under name equivalence
//! this is a delete + add, exactly the limitation §5 discusses).
//!
//! The three schemas are assembled from one common-core template so the
//! shared structure is shared by construction, as the paper observed of the
//! real systems.

use sws_model::SchemaGraph;

/// The common core shared by all three schemas. `@X@` markers are filled
/// per schema with extra members / interfaces.
const TEMPLATE: &str = r#"
schema @NAME@ {
    interface Map {
        extent maps;
        attribute string(32) map_name;
        keys map_name;
        relationship set<Locus> loci inverse Locus::mapped_on order_by (locus_name);
        relationship set<Contig> contigs inverse Contig::placed_on;
        @MAP@
    }
    interface Locus {
        extent loci;
        attribute string(32) locus_name;
        attribute double genetic_position;
        keys locus_name;
        relationship Map mapped_on inverse Map::loci;
        relationship set<Allele> alleles inverse Allele::allele_of;
        relationship set<Paper> described_in inverse Paper::describes_loci;
        @LOCUS@
    }
    interface Allele {
        attribute string(32) allele_name;
        attribute string(32) mutagen;
        relationship Locus allele_of inverse Locus::alleles;
        @ALLELE@
    }
    interface Clone {
        extent clones;
        attribute string(32) clone_name;
        attribute string(32) library;
        keys clone_name;
        part_of Contig contig inverse Contig::members;
        relationship set<Sequence> sequences inverse Sequence::sequence_of;
        relationship set<Probe> probed_by inverse Probe::hybridizes_to;
        @CLONE@
    }
    interface Contig {
        attribute string(32) contig_name;
        attribute unsigned_long length;
        relationship Map placed_on inverse Map::contigs;
        part_of set<Clone> members inverse Clone::contig order_by (clone_name);
    }
    interface Sequence {
        attribute string(32) seq_name;
        attribute unsigned_long length;
        relationship Clone sequence_of inverse Clone::sequences;
    }
    interface Probe {
        attribute string(32) probe_name;
        relationship set<Clone> hybridizes_to inverse Clone::probed_by;
    }
    interface Paper {
        extent papers;
        attribute string(128) title;
        attribute unsigned_long year;
        relationship set<Author> authors inverse Author::papers;
        relationship Journal published_in inverse Journal::papers;
        relationship set<Locus> describes_loci inverse Locus::described_in;
    }
    interface Author {
        attribute string(64) author_name;
        relationship set<Paper> papers inverse Paper::authors;
    }
    interface Journal {
        attribute string(64) journal_name;
        relationship set<Paper> papers inverse Paper::published_in;
    }
    @EXTRA@
}
"#;

fn instantiate(
    name: &str,
    map: &str,
    locus: &str,
    allele: &str,
    clone: &str,
    extra: &str,
) -> String {
    TEMPLATE
        .replace("@NAME@", name)
        .replace("@MAP@", map)
        .replace("@LOCUS@", locus)
        .replace("@ALLELE@", allele)
        .replace("@CLONE@", clone)
        .replace("@EXTRA@", extra)
}

/// ACEDB — the nematode (C. elegans) schema: the shrink wrap candidate.
pub fn acedb_source() -> String {
    instantiate(
        "Acedb",
        "relationship set<Rearrangement> rearrangements inverse Rearrangement::on_map;",
        "relationship set<TwoPointData> two_point_1 inverse TwoPointData::locus_1;
         relationship set<TwoPointData> two_point_2 inverse TwoPointData::locus_2;",
        "relationship set<Strain> carried_by inverse Strain::carries;",
        "",
        r#"
    interface Strain {
        extent strains;
        attribute string(32) strain_name;
        attribute string(64) genotype;
        keys strain_name;
        relationship set<Allele> carries inverse Allele::carried_by;
    }
    interface Rearrangement {
        attribute string(32) rearrangement_name;
        relationship Map on_map inverse Map::rearrangements;
    }
    interface TwoPointData {
        attribute double distance;
        attribute double lod_score;
        relationship Locus locus_1 inverse Locus::two_point_1;
        relationship Locus locus_2 inverse Locus::two_point_2;
    }
    "#,
    )
}

/// SacchDB — the yeast schema: drops the worm-specific genetics classes and
/// adds plasmids and protein information.
pub fn sacchdb_source() -> String {
    instantiate(
        "SacchDb",
        "",
        "relationship ProteinInfo protein_info inverse ProteinInfo::protein_of;",
        "",
        "relationship set<Plasmid> carried_in inverse Plasmid::contains;",
        r#"
    interface Plasmid {
        extent plasmids;
        attribute string(32) plasmid_name;
        attribute string(32) selection_marker;
        keys plasmid_name;
        relationship set<Clone> contains inverse Clone::carried_in;
    }
    interface ProteinInfo {
        attribute string(64) protein_name;
        attribute unsigned_long molecular_weight;
        relationship Locus protein_of inverse Locus::protein_info;
    }
    "#,
    )
}

/// AAtDB — the thale cress (Arabidopsis) schema: `Phenotype` replaces the
/// animal-discipline `Strain`, and ecotypes and images are added.
pub fn aatdb_source() -> String {
    instantiate(
        "AAtDb",
        "",
        "relationship set<Ecotype> found_in inverse Ecotype::loci;",
        "relationship set<Phenotype> carried_by inverse Phenotype::carries;",
        "relationship set<Image> images inverse Image::image_of;",
        r#"
    interface Phenotype {
        extent phenotypes;
        attribute string(32) phenotype_name;
        attribute string(64) description;
        keys phenotype_name;
        relationship set<Allele> carries inverse Allele::carried_by;
    }
    interface Ecotype {
        attribute string(32) ecotype_name;
        attribute string(64) collection_site;
        relationship set<Locus> loci inverse Locus::found_in;
    }
    interface Image {
        attribute string(64) image_file;
        attribute string(32) microscopy;
        relationship Clone image_of inverse Clone::images;
    }
    "#,
    )
}

/// Build the ACEDB schema graph.
pub fn acedb() -> SchemaGraph {
    crate::load(&acedb_source())
}

/// Build the SacchDB schema graph.
pub fn sacchdb() -> SchemaGraph {
    crate::load(&sacchdb_source())
}

/// Build the AAtDB schema graph.
pub fn aatdb() -> SchemaGraph {
    crate::load(&aatdb_source())
}

/// The type names shared by all three schemas (the Figs. 9–11 overlap).
pub fn shared_type_names() -> Vec<String> {
    let a = acedb();
    let s = sacchdb();
    let t = aatdb();
    a.types()
        .map(|(_, n)| n.name)
        .filter(|&n| s.type_id_sym(n).is_some() && t.type_id_sym(n).is_some())
        .map(|n| n.to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_schemas_share_the_core() {
        let shared = shared_type_names();
        for name in [
            "Map", "Locus", "Allele", "Clone", "Contig", "Sequence", "Probe", "Paper", "Author",
            "Journal",
        ] {
            assert!(
                shared.iter().any(|s| s == name),
                "missing shared type {name}"
            );
        }
        assert_eq!(shared.len(), 10);
    }

    #[test]
    fn specifics_are_disjoint() {
        let a = acedb();
        let s = sacchdb();
        let t = aatdb();
        assert!(a.type_id("Strain").is_some());
        assert!(s.type_id("Strain").is_none());
        assert!(t.type_id("Strain").is_none());
        assert!(s.type_id("Plasmid").is_some());
        assert!(t.type_id("Phenotype").is_some());
        // The strain/phenotype correspondence: same structure, different
        // discipline-specific name.
        let strain = a.ty(a.type_id("Strain").unwrap());
        let phenotype = t.ty(t.type_id("Phenotype").unwrap());
        assert_eq!(strain.rel_ends.len(), phenotype.rel_ends.len());
    }

    #[test]
    fn sizable_schemas() {
        // The case study needs non-toy schemas.
        assert!(acedb().construct_count() > 40);
        assert!(sacchdb().construct_count() > 40);
        assert!(aatdb().construct_count() > 40);
    }

    #[test]
    fn contig_clone_aggregation_shared() {
        for g in [acedb(), sacchdb(), aatdb()] {
            let contig = g.type_id("Contig").unwrap();
            assert_eq!(g.ty(contig).parent_links.len(), 1);
        }
    }
}
