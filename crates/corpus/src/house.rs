//! The lumber-yard house parts explosion (paper Fig. 5).
//!
//! "The construction supplies necessary to build a house … can be recorded
//! with the roof of the house consisting of plywood decking, tar paper, and
//! shingles."

use sws_model::SchemaGraph;

/// The extended-ODL source of the house aggregation schema.
pub const SOURCE: &str = r#"
schema LumberYard {
    interface House {
        extent houses;
        attribute string(64) plan_name;
        attribute unsigned_long square_feet;
        keys plan_name;
        part_of set<Structure> structures inverse Structure::house;
        part_of set<FinishElement> finish_elements inverse FinishElement::house;
    }
    interface Structure {
        attribute string(32) phase;
        part_of House house inverse House::structures;
        part_of set<Roof> roofs inverse Roof::structure;
        part_of set<Foundation> foundations inverse Foundation::structure;
    }
    interface Roof {
        attribute double pitch;
        part_of Structure structure inverse Structure::roofs;
        part_of set<PlywoodDecking> decking inverse PlywoodDecking::roof;
        part_of set<TarPaper> tar_paper inverse TarPaper::roof;
        part_of set<Shingle> shingles inverse Shingle::roof order_by (sku);
    }
    interface Foundation {
        attribute double depth;
        part_of Structure structure inverse Structure::foundations;
        part_of set<Plumbing> plumbing inverse Plumbing::foundation;
        part_of set<Rebar> rebar inverse Rebar::foundation;
    }
    interface FinishElement {
        attribute string(32) finish_grade;
        part_of House house inverse House::finish_elements;
        part_of set<Door> doors inverse Door::finish_element;
        part_of set<Window> windows inverse Window::finish_element;
    }
    interface PlywoodDecking {
        attribute string(16) sku;
        attribute double thickness;
        part_of Roof roof inverse Roof::decking;
    }
    interface TarPaper {
        attribute string(16) sku;
        attribute unsigned_long weight;
        part_of Roof roof inverse Roof::tar_paper;
    }
    interface Shingle {
        attribute string(16) sku;
        attribute string(16) color;
        part_of Roof roof inverse Roof::shingles;
    }
    interface Plumbing {
        attribute string(16) sku;
        attribute string(16) material;
        part_of Foundation foundation inverse Foundation::plumbing;
    }
    interface Rebar {
        attribute string(16) sku;
        attribute double gauge;
        part_of Foundation foundation inverse Foundation::rebar;
    }
    interface Door {
        attribute string(16) sku;
        attribute boolean exterior;
        part_of FinishElement finish_element inverse FinishElement::doors;
    }
    interface Window {
        attribute string(16) sku;
        attribute string(16) glazing;
        part_of FinishElement finish_element inverse FinishElement::windows;
    }
}
"#;

/// Build the house schema graph.
pub fn graph() -> SchemaGraph {
    crate::load(SOURCE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::query;
    use sws_odl::HierKind;

    #[test]
    fn aggregation_is_rooted_at_house() {
        let g = graph();
        let roots = query::hier_roots(&g, HierKind::PartOf);
        assert_eq!(roots, vec![g.type_id("House").unwrap()]);
    }

    #[test]
    fn roof_explodes_into_figure5_parts() {
        let g = graph();
        let roof = g.type_id("Roof").unwrap();
        let mut children: Vec<&str> = query::hier_children(&g, HierKind::PartOf, roof)
            .into_iter()
            .map(|(_, c)| g.type_name(c))
            .collect();
        children.sort();
        assert_eq!(children, vec!["PlywoodDecking", "Shingle", "TarPaper"]);
    }

    #[test]
    fn closure_covers_the_whole_explosion() {
        let g = graph();
        let house = g.type_id("House").unwrap();
        let (types, links) = query::hier_closure(&g, HierKind::PartOf, house);
        assert_eq!(types.len(), g.type_count());
        assert_eq!(links.len(), g.links().count());
    }
}
