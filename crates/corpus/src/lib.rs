//! Schema corpus: every example schema the paper uses, plus a seeded
//! synthetic generator for scaling experiments.
//!
//! * [`university`] — the university schema behind Figs. 3, 4, 7, and 8
//!   (course offerings, the student generalization hierarchy, the
//!   department/employee relationship).
//! * [`house`] — the lumber-yard house parts explosion of Fig. 5.
//! * [`software`] — the EMSL software-version instance-of sequence of
//!   Fig. 6.
//! * [`genome`] — reconstructions of the ACEDB, SacchDB, and AAtDB physical
//!   mapping schemas of Figs. 9–11 (§4 case study).
//! * [`synthetic`] — a deterministic random-schema generator (seeded by
//!   the in-tree [`rng`] module, no external PRNG dependency).
//!
//! All hand-written schemas are authored in extended ODL and parsed at
//! construction time, so they double as parser fixtures.
#![forbid(unsafe_code)]

pub mod business;
pub mod genome;
pub mod house;
pub mod rng;
pub mod software;
pub mod synthetic;
pub mod university;

use sws_model::{schema_to_graph, SchemaGraph};
use sws_odl::parse_schema;

/// Parse and lower an ODL source that is known to be valid.
pub(crate) fn load(src: &str) -> SchemaGraph {
    let ast = parse_schema(src).unwrap_or_else(|e| panic!("corpus schema parse error: {e}"));
    let issues = sws_odl::validate_schema(&ast);
    assert!(issues.is_empty(), "corpus schema invalid: {issues:?}");
    schema_to_graph(&ast).unwrap_or_else(|e| panic!("corpus schema lowering error: {e}"))
}

/// Every named corpus schema, for sweep-style tests and benches.
pub fn all_named() -> Vec<(&'static str, SchemaGraph)> {
    vec![
        ("university", university::graph()),
        ("house", house::graph()),
        ("software", software::graph()),
        ("business", business::graph()),
        ("acedb", genome::acedb()),
        ("sacchdb", genome::sacchdb()),
        ("aatdb", genome::aatdb()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_corpus_schemas_load_cleanly() {
        for (name, g) in all_named() {
            assert!(g.type_count() > 0, "{name} is empty");
            assert!(
                sws_model::check_well_formed(&g).is_empty(),
                "{name} is not well-formed"
            );
        }
    }
}
