//! A business-objects shrink wrap schema (order management).
//!
//! §5 points at interoperation through common objects: "Work in progress
//! is attempting to establish a Business Object Model to promote the
//! conduct of business over the network. In general, systems built from
//! the same shrink wrap schema (i.e., common objects) can be integrated
//! for information interchange." This schema is the repository's richest
//! shrink wrap: a deep generalization hierarchy, two parts explosions, an
//! instance-of chain, keys, extents, and operations — the workload for the
//! customization examples and stress tests.

use sws_model::SchemaGraph;

/// The extended-ODL source of the business shrink wrap schema.
pub const SOURCE: &str = r#"
schema BusinessObjects {
    // ---- parties ------------------------------------------------------
    abstract interface Party {
        attribute string(64) display_name;
        relationship set<Address> addresses inverse Address::party;
        relationship set<Communication> communications inverse Communication::party;
    }
    interface Person : Party {
        attribute string(32) given_name;
        attribute string(32) family_name;
        attribute date born;
    }
    interface Organization : Party {
        extent organizations;
        attribute string(16) tax_id;
        keys tax_id;
    }
    interface Customer : Party {
        extent customers;
        attribute string(16) customer_code;
        attribute double credit_limit;
        keys customer_code;
        relationship set<Order> orders inverse Order::placed_by order_by (order_number);
        double outstanding_balance();
    }
    interface Supplier : Organization {
        attribute string(32) payment_terms;
        relationship set<Product> supplies inverse Product::supplied_by;
    }
    interface EmployeeRecord : Person {
        attribute unsigned_long payroll_number;
        relationship set<Order> handled inverse Order::handled_by;
    }
    interface Address {
        attribute string(128) street;
        attribute string(32) city;
        attribute string(16) postal_code;
        attribute string(32) country;
        relationship Party party inverse Party::addresses;
    }
    interface Communication {
        attribute string(16) kind;
        attribute string(64) value;
        relationship Party party inverse Party::communications;
    }

    // ---- catalog ------------------------------------------------------
    interface Catalog {
        extent catalogs;
        attribute string(32) season;
        part_of set<CatalogSection> sections inverse CatalogSection::catalog
            order_by (heading);
    }
    interface CatalogSection {
        attribute string(64) heading;
        part_of Catalog catalog inverse Catalog::sections;
        relationship set<Product> features inverse Product::featured_in;
    }
    interface Product {
        extent products;
        attribute string(16) product_code;
        attribute string(128) description;
        keys product_code;
        relationship Supplier supplied_by inverse Supplier::supplies;
        relationship set<CatalogSection> featured_in inverse CatalogSection::features;
        instance_of set<Sku> skus inverse Sku::product;
        boolean discontinued();
    }
    interface Sku {
        attribute string(24) sku_code;
        attribute string(32) options;
        attribute double unit_price;
        instance_of Product product inverse Product::skus;
        relationship set<StockLevel> stock inverse StockLevel::sku;
    }
    interface StockLevel {
        attribute string(16) warehouse;
        attribute unsigned_long on_hand;
        relationship Sku sku inverse Sku::stock;
    }

    // ---- orders ---------------------------------------------------------
    interface Order {
        extent orders;
        attribute string(16) order_number;
        attribute date ordered_on;
        attribute string(16) status;
        keys order_number;
        relationship Customer placed_by inverse Customer::orders;
        relationship EmployeeRecord handled_by inverse EmployeeRecord::handled;
        relationship set<Shipment> shipments inverse Shipment::order;
        relationship Invoice billed_as inverse Invoice::bills;
        part_of list<OrderLine> lines inverse OrderLine::order order_by (line_number);
        double total() raises (Unpriced);
        void cancel(in string reason) raises (AlreadyShipped);
    }
    interface OrderLine {
        attribute unsigned_long line_number;
        attribute unsigned_long quantity;
        attribute double agreed_price;
        part_of Order order inverse Order::lines;
        relationship Sku ordered_sku inverse Sku::ordered_in;
    }
    interface Shipment {
        attribute string(24) tracking_number;
        attribute date shipped_on;
        relationship Order order inverse Order::shipments;
        relationship Address destination inverse Address::shipments_to;
    }
    interface Invoice {
        extent invoices;
        attribute string(16) invoice_number;
        attribute date issued_on;
        keys invoice_number;
        relationship Order bills inverse Order::billed_as;
        part_of list<InvoiceLine> lines inverse InvoiceLine::invoice order_by (line_number);
        relationship set<Payment> settled_by inverse Payment::settles;
    }
    interface InvoiceLine {
        attribute unsigned_long line_number;
        attribute string(128) narrative;
        attribute double amount;
        part_of Invoice invoice inverse Invoice::lines;
    }
    interface Payment {
        attribute double amount;
        attribute date received_on;
        attribute string(16) method;
        relationship Invoice settles inverse Invoice::settled_by;
    }
}
"#;

/// Build the business schema graph. (Fixes up the two relationship ends
/// that keep `SOURCE` readable: `Sku::ordered_in` and
/// `Address::shipments_to`.)
pub fn graph() -> SchemaGraph {
    let fixed = SOURCE
        .replace(
            "relationship set<StockLevel> stock inverse StockLevel::sku;",
            "relationship set<StockLevel> stock inverse StockLevel::sku;\n        \
             relationship set<OrderLine> ordered_in inverse OrderLine::ordered_sku;",
        )
        .replace(
            "relationship Party party inverse Party::addresses;",
            "relationship Party party inverse Party::addresses;\n        \
             relationship set<Shipment> shipments_to inverse Shipment::destination;",
        );
    crate::load(&fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::query;
    use sws_odl::HierKind;

    #[test]
    fn loads_and_is_rich() {
        let g = graph();
        assert_eq!(g.type_count(), 19);
        assert!(g.construct_count() > 80, "{}", g.construct_count());
    }

    #[test]
    fn party_hierarchy_is_single_rooted() {
        let g = graph();
        let components = query::generalization_components(&g);
        assert_eq!(components.len(), 1);
        let roots = query::component_roots(&g, &components[0]);
        assert_eq!(roots, vec![g.type_id("Party").unwrap()]);
        assert!(g.ty(roots[0]).is_abstract);
        // Supplier inherits through Organization to Party.
        let supplier = g.type_id("Supplier").unwrap();
        assert!(query::is_ancestor(&g, roots[0], supplier));
    }

    #[test]
    fn three_part_of_roots() {
        let g = graph();
        let mut roots: Vec<&str> = query::hier_roots(&g, HierKind::PartOf)
            .into_iter()
            .map(|t| g.type_name(t))
            .collect();
        roots.sort();
        assert_eq!(roots, vec!["Catalog", "Invoice", "Order"]);
    }

    #[test]
    fn sku_chain_is_instance_of() {
        let g = graph();
        assert_eq!(
            query::hier_roots(&g, HierKind::InstanceOf),
            vec![g.type_id("Product").unwrap()]
        );
    }
}
