//! The EMSL software-version schema (paper Fig. 6).
//!
//! "The C compiler is an application object that is related to many
//! versions … version 3.0 may have been compiled on many different
//! machines, each compilation creating a compiled version … The executable
//! is in turn installed on many machines" — a *linear* sequence of
//! instance-of links: Application → Version → CompiledVersion →
//! InstalledVersion.

use sws_model::SchemaGraph;

/// The extended-ODL source of the software-version schema.
pub const SOURCE: &str = r#"
schema Emsl {
    interface Application {
        extent applications;
        attribute string(64) name;
        attribute string(64) vendor;
        keys name;
        instance_of set<Version> versions inverse Version::application;
    }
    interface Version {
        attribute string(16) version_number;
        attribute date released;
        instance_of Application application inverse Application::versions;
        instance_of set<CompiledVersion> compilations inverse CompiledVersion::version;
    }
    interface CompiledVersion {
        attribute string(32) machine_type;
        attribute string(32) compiler_flags;
        instance_of Version version inverse Version::compilations;
        instance_of set<InstalledVersion> installations inverse InstalledVersion::compiled_version;
    }
    interface InstalledVersion {
        attribute string(64) machine;
        attribute string(128) install_path;
        attribute date installed_on;
        instance_of CompiledVersion compiled_version inverse CompiledVersion::installations;
    }
}
"#;

/// Build the software-version schema graph.
pub fn graph() -> SchemaGraph {
    crate::load(SOURCE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::query;
    use sws_odl::HierKind;

    #[test]
    fn chain_is_rooted_at_application() {
        let g = graph();
        assert_eq!(
            query::hier_roots(&g, HierKind::InstanceOf),
            vec![g.type_id("Application").unwrap()]
        );
    }

    #[test]
    fn chain_is_linear_with_three_links() {
        let g = graph();
        let app = g.type_id("Application").unwrap();
        let (types, links) = query::hier_closure(&g, HierKind::InstanceOf, app);
        assert_eq!(types.len(), 4);
        assert_eq!(links.len(), 3);
        // Linear: every member has at most one instance-of child.
        for &t in &types {
            assert!(query::hier_children(&g, HierKind::InstanceOf, t).len() <= 1);
        }
    }
}
