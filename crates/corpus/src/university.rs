//! The university conceptual schema (paper Figs. 3, 4, 7, 8).
//!
//! * The **course offering** neighbourhood (Fig. 3): a `CourseOffering` is
//!   an offering of a `Course` (instance-of), described by a `Syllabus`,
//!   with books, a time slot, a room, and a duration.
//! * The **student generalization hierarchy** (Fig. 4): Student ←
//!   {Undergraduate, Graduate}; Graduate ← {Masters, PhD}; Masters ←
//!   NonThesisMasters.
//! * The **department/employee** relationship (Fig. 8): `Department has
//!   set<Employee>` with inverse `works_in_a`, plus a `Student` sibling —
//!   the setup for the `modify_relationship_target_type` example.
//!
//! The `Schedule` aggregation of Fig. 7 is *not* part of the shrink wrap
//! schema: the Fig. 7 experiment adds it by elaboration.

use sws_model::SchemaGraph;

/// The extended-ODL source of the university shrink wrap schema.
pub const SOURCE: &str = r#"
schema University {
    interface Person {
        extent people;
        attribute string(64) name;
        attribute string(128) address;
        keys name;
    }

    // ---- Fig. 4: the student generalization hierarchy ---------------
    interface Student : Person {
        attribute unsigned_long student_id;
        relationship set<CourseOffering> enrolled_in
            inverse CourseOffering::enrolls order_by (room);
        float gpa(in unsigned_long term) raises (NoGrades);
    }
    interface Undergraduate : Student {
        attribute string(32) residence_hall;
    }
    interface Graduate : Student {
        attribute string(64) thesis_topic;
        relationship Faculty advised_by inverse Faculty::advises;
    }
    interface Masters : Graduate {
        attribute boolean thesis_option;
    }
    interface PhD : Graduate {
        attribute date candidacy_date;
    }
    interface NonThesisMasters : Masters {
        attribute unsigned_long exam_credits;
    }

    // ---- employees and departments (Fig. 8) --------------------------
    interface Employee : Person {
        attribute unsigned_long badge;
        attribute double salary;
        relationship Department works_in_a inverse Department::has;
    }
    interface Faculty : Employee {
        attribute string(32) rank;
        relationship set<CourseOffering> teaches inverse CourseOffering::taught_by;
        relationship set<Graduate> advises inverse Graduate::advised_by;
    }
    interface Department {
        extent departments;
        attribute string(64) dept_name;
        keys dept_name;
        relationship set<Employee> has inverse Employee::works_in_a order_by (badge);
        relationship set<Course> offers inverse Course::offered_by;
    }

    // ---- courses and offerings (Fig. 3) -----------------------------
    interface Course {
        extent courses;
        attribute string(16) number;
        attribute string(64) title;
        attribute unsigned_long credits;
        keys number;
        relationship Department offered_by inverse Department::offers;
        instance_of set<CourseOffering> offerings inverse CourseOffering::course;
    }
    interface CourseOffering {
        extent course_offerings;
        attribute string(16) room;
        attribute unsigned_long duration;
        attribute unsigned_long term;
        instance_of Course course inverse Course::offerings;
        relationship Syllabus described_by inverse Syllabus::describes;
        relationship set<Book> books inverse Book::book_for;
        relationship TimeSlot offered_during inverse TimeSlot::offerings;
        relationship set<Student> enrolls inverse Student::enrolled_in;
        relationship Faculty taught_by inverse Faculty::teaches;
    }
    interface Syllabus {
        attribute string(128) objectives;
        relationship CourseOffering describes inverse CourseOffering::described_by;
    }
    interface Book {
        attribute string(64) title;
        attribute string(16) isbn;
        keys isbn;
        relationship set<CourseOffering> book_for inverse CourseOffering::books;
    }
    interface TimeSlot {
        attribute time starts;
        attribute time ends;
        attribute string(16) days;
        relationship set<CourseOffering> offerings inverse CourseOffering::offered_during;
    }
}
"#;

/// Build the university schema graph.
pub fn graph() -> SchemaGraph {
    crate::load(SOURCE)
}

/// A canned design session against [`graph`]: `(context tag, statement)`
/// pairs in the modification language, every prefix of which is valid
/// through the full permission/constraint pipeline. The crash-consistency
/// and salvage test fixtures replay prefixes of this script.
pub const DESIGN_SCRIPT: &[(&str, &str)] = &[
    ("wagon_wheel", "add_type_definition(Schedule)"),
    ("wagon_wheel", "add_attribute(Schedule, string(32), label)"),
    (
        "wagon_wheel",
        "add_attribute(CourseOffering, string(16), building)",
    ),
    (
        "generalization",
        "modify_attribute(Employee, badge, Person)",
    ),
    ("wagon_wheel", "add_type_definition(Annex)"),
    (
        "wagon_wheel",
        "add_attribute(Annex, unsigned_long, capacity)",
    ),
    ("wagon_wheel", "add_attribute(Person, date, birthday)"),
    ("wagon_wheel", "add_attribute(Syllabus, string(64), author)"),
];

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::query;

    #[test]
    fn loads_with_expected_shape() {
        let g = graph();
        assert_eq!(g.type_count(), 15);
        assert!(g.type_id("CourseOffering").is_some());
        assert!(g.type_id("NonThesisMasters").is_some());
    }

    #[test]
    fn figure4_hierarchy_is_present() {
        let g = graph();
        let student = g.type_id("Student").unwrap();
        let ntm = g.type_id("NonThesisMasters").unwrap();
        assert!(query::is_ancestor(&g, student, ntm));
        // Person roots the single generalization component.
        let components = query::generalization_components(&g);
        assert_eq!(components.len(), 1);
        let roots = query::component_roots(&g, &components[0]);
        assert_eq!(roots, vec![g.type_id("Person").unwrap()]);
    }

    #[test]
    fn figure3_spokes_are_present() {
        let g = graph();
        let co = g.type_id("CourseOffering").unwrap();
        for path in [
            "described_by",
            "books",
            "offered_during",
            "enrolls",
            "taught_by",
        ] {
            assert!(g.find_rel_end(co, path).is_some(), "missing spoke {path}");
        }
        assert!(g
            .find_link(sws_odl::HierKind::InstanceOf, co, "course")
            .is_some());
    }

    #[test]
    fn figure8_relationship_is_present() {
        let g = graph();
        let dept = g.type_id("Department").unwrap();
        let (rid, e) = g.find_rel_end(dept, "has").unwrap();
        let other = g.rel(rid).other(e);
        assert_eq!(g.type_name(other.owner), "Employee");
        assert_eq!(other.path, "works_in_a");
    }

    #[test]
    fn schedule_is_not_in_the_shrink_wrap() {
        // Fig. 7 adds it by elaboration.
        assert!(graph().type_id("Schedule").is_none());
    }
}
