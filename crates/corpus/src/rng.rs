//! A small deterministic PRNG (SplitMix64) so the synthetic generator
//! works with no external dependencies. Sequential seeds decorrelate
//! through the mixing function, so `seed` and `seed + 1` give unrelated
//! streams.

/// SplitMix64 generator with convenience range/probability draws.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded construction; the same seed always yields the same stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift range reduction; bias is negligible at these sizes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        lo + self.below(u64::from(hi - lo)) as u32
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..200 {
            let x = a.range_usize(3, 17);
            assert_eq!(x, b.range_usize(3, 17));
            assert!((3..17).contains(&x));
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }
}
