//! Deterministic synthetic schema generator, for scaling benches and
//! property tests.
//!
//! Generated schemas are always well-formed: member names are globally
//! unique (so no inheritance conflicts), generalization and hierarchy links
//! only point from higher to lower indices (so no cycles), and every
//! relationship is created with both ends at once.

use crate::rng::SplitMix64;
use sws_model::SchemaGraph;
use sws_odl::{Cardinality, CollectionKind, DomainType, HierKind, Key, Operation, Param};

/// The default schema-size sweep for scaling benches.
pub const DEFAULT_SWEEP: [usize; 3] = [100, 1_000, 5_000];

/// The extended sweep for the incremental-consistency bench. The
/// steady-state incremental recheck costs O(dirty closure), not
/// O(schema), so it can sweep far past the sizes a from-scratch check is
/// timed at.
pub const LARGE_SWEEP: [usize; 5] = [100, 1_000, 5_000, 50_000, 100_000];

/// `SWS_BENCH_SIZES` parsed as a comma-separated list of type counts;
/// empty when unset or unparseable.
fn env_sizes() -> Vec<usize> {
    std::env::var("SWS_BENCH_SIZES")
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect()
        })
        .unwrap_or_default()
}

/// The schema sizes the scaling benches should sweep: [`DEFAULT_SWEEP`]
/// unless the `SWS_BENCH_SIZES` environment variable overrides it (used to
/// keep CI smoke runs fast).
pub fn sweep_sizes() -> Vec<usize> {
    let parsed = env_sizes();
    if parsed.is_empty() {
        DEFAULT_SWEEP.to_vec()
    } else {
        parsed
    }
}

/// Like [`sweep_sizes`], but defaulting to [`LARGE_SWEEP`]. The same
/// `SWS_BENCH_SIZES` override applies.
pub fn sweep_sizes_large() -> Vec<usize> {
    let parsed = env_sizes();
    if parsed.is_empty() {
        LARGE_SWEEP.to_vec()
    } else {
        parsed
    }
}

/// Generate one synthetic schema per sweep size, seeded deterministically.
pub fn size_sweep(seed: u64) -> Vec<(usize, SchemaGraph)> {
    sweep_sizes()
        .into_iter()
        .map(|n| (n, SyntheticSpec::sized(n, seed).generate()))
        .collect()
}

/// [`size_sweep`] over the extended [`sweep_sizes_large`] sizes.
pub fn size_sweep_large(seed: u64) -> Vec<(usize, SchemaGraph)> {
    sweep_sizes_large()
        .into_iter()
        .map(|n| (n, SyntheticSpec::sized(n, seed).generate()))
        .collect()
}

/// Parameters of a synthetic schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticSpec {
    /// Number of object types.
    pub types: usize,
    /// Attributes per type.
    pub attrs_per_type: usize,
    /// Operations per type.
    pub ops_per_type: usize,
    /// Total relationships (each connects two random types).
    pub relationships: usize,
    /// Fraction (in percent) of types that get a supertype.
    pub generalization_pct: u32,
    /// Total part-of links.
    pub part_of_links: usize,
    /// Total instance-of links.
    pub instance_of_links: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticSpec {
    /// A spec scaled to roughly `n` types with proportionate members.
    pub fn sized(n: usize, seed: u64) -> Self {
        SyntheticSpec {
            types: n,
            attrs_per_type: 4,
            ops_per_type: 1,
            relationships: n * 2,
            generalization_pct: 40,
            part_of_links: n / 4,
            instance_of_links: n / 8,
            seed,
        }
    }

    /// Generate the schema.
    pub fn generate(&self) -> SchemaGraph {
        let mut g = SchemaGraph::new(format!("synthetic_{}", self.types));
        let mut rng = SplitMix64::seed_from_u64(self.seed);
        let mut type_ids = Vec::with_capacity(self.types);

        for i in 0..self.types {
            let id = g.add_type(&format!("Type{i}")).expect("fresh name");
            type_ids.push(id);
            for j in 0..self.attrs_per_type {
                let domain = match rng.range_u32(0, 5) {
                    0 => DomainType::Long,
                    1 => DomainType::Double,
                    2 => DomainType::Bool,
                    3 => DomainType::set_of(DomainType::String),
                    _ => DomainType::String,
                };
                let size = if domain == DomainType::String && rng.chance(0.5) {
                    Some(rng.range_u32(8, 256))
                } else {
                    None
                };
                g.add_attribute(id, &format!("t{i}_a{j}"), domain, size)
                    .expect("fresh name");
            }
            for j in 0..self.ops_per_type {
                let op = Operation {
                    name: format!("t{i}_op{j}"),
                    return_type: DomainType::Void,
                    args: vec![Param::input(format!("t{i}_op{j}_x"), DomainType::Long)],
                    raises: Vec::new(),
                };
                g.add_operation(id, op).expect("fresh name");
            }
            if self.attrs_per_type > 0 && rng.chance(0.3) {
                g.add_key(id, Key::single(format!("t{i}_a0")))
                    .expect("fresh key");
            }
            if rng.chance(0.2) {
                g.set_extent(id, Some(format!("extent_t{i}")))
                    .expect("fresh extent");
            }
        }

        // Generalization: types with index > 0 may pick an earlier supertype.
        for i in 1..self.types {
            if rng.range_u32(0, 100) < self.generalization_pct {
                let sup = type_ids[rng.range_usize(0, i)];
                g.add_supertype(type_ids[i], sup)
                    .expect("acyclic by index order");
            }
        }

        // Relationships: random pairs, globally unique paths.
        for k in 0..self.relationships {
            let a = type_ids[rng.range_usize(0, self.types)];
            let b = type_ids[rng.range_usize(0, self.types)];
            let card = if rng.chance(0.6) {
                Cardinality::Many(CollectionKind::Set)
            } else {
                Cardinality::One
            };
            g.add_relationship(
                a,
                &format!("rel{k}"),
                card,
                Vec::new(),
                b,
                &format!("rel{k}_inv"),
                Cardinality::One,
                Vec::new(),
            )
            .expect("fresh paths");
        }

        // Hierarchy links: parent index < child index keeps them acyclic.
        if self.types >= 2 {
            for k in 0..self.part_of_links {
                let pi = rng.range_usize(0, self.types - 1);
                let ci = rng.range_usize(pi + 1, self.types);
                g.add_link(
                    HierKind::PartOf,
                    type_ids[pi],
                    &format!("po{k}_parts"),
                    CollectionKind::Set,
                    Vec::new(),
                    type_ids[ci],
                    &format!("po{k}_whole"),
                )
                .expect("acyclic by index order");
            }
            for k in 0..self.instance_of_links {
                let pi = rng.range_usize(0, self.types - 1);
                let ci = rng.range_usize(pi + 1, self.types);
                g.add_link(
                    HierKind::InstanceOf,
                    type_ids[pi],
                    &format!("io{k}_instances"),
                    CollectionKind::Set,
                    Vec::new(),
                    type_ids[ci],
                    &format!("io{k}_generic"),
                )
                .expect("acyclic by index order");
            }
        }

        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let spec = SyntheticSpec::sized(40, 7);
        let a = sws_model::graph_to_schema(&spec.generate());
        let b = sws_model::graph_to_schema(&spec.generate());
        assert_eq!(a, b);
        let c = sws_model::graph_to_schema(&SyntheticSpec { seed: 8, ..spec }.generate());
        assert_ne!(a, c);
    }

    #[test]
    fn generated_schemas_are_well_formed() {
        for n in [5, 50, 200] {
            let g = SyntheticSpec::sized(n, 42).generate();
            assert_eq!(g.type_count(), n);
            let issues = sws_model::check_well_formed(&g);
            assert!(issues.is_empty(), "n={n}: {issues:?}");
        }
    }

    #[test]
    fn generated_schemas_round_trip_through_odl() {
        let g = SyntheticSpec::sized(30, 3).generate();
        let text = sws_odl::print_schema(&sws_model::graph_to_schema(&g));
        let reparsed = sws_odl::parse_schema(&text).unwrap();
        let relowered = sws_model::schema_to_graph(&reparsed).unwrap();
        assert_eq!(
            sws_model::graph_to_schema(&relowered),
            sws_model::graph_to_schema(&g)
        );
    }

    #[test]
    fn sweep_sizes_default_and_generation() {
        // Don't touch the env var (tests run in parallel); just check the
        // default constant path and that generation honors the sizes.
        assert_eq!(DEFAULT_SWEEP, [100, 1_000, 5_000]);
        assert_eq!(SyntheticSpec::sized(5, 1).generate().type_count(), 5);
    }

    #[test]
    fn tiny_specs_work() {
        let g = SyntheticSpec {
            types: 1,
            attrs_per_type: 0,
            ops_per_type: 0,
            relationships: 0,
            generalization_pct: 0,
            part_of_links: 0,
            instance_of_links: 0,
            seed: 0,
        }
        .generate();
        assert_eq!(g.type_count(), 1);
    }
}
