//! The soundness oracle: for any script, the analyzer's prediction must
//! *exactly* match the executor. If `Workspace::replay` rejects at index
//! `i` with error `e`, then `analyze_ops` must report `stopped_at == i`
//! and `predicted == e` — violation lists compared structurally, in
//! order. If replay accepts, the analyzer must pass the script.
//!
//! Zero false negatives are tolerated (a script the executor rejects that
//! the analyzer passed), and zero error-level false positives (a script
//! the executor accepts that the analyzer stopped). Both directions are
//! hard assertions, swept over the whole corpus, synthetic graphs, and
//! three generator families (valid, churn, adversarial) across many
//! seeds, plus a proptest run over random sizes and seeds.

use sws_analyze::analyze_ops;
use sws_bench::edit_scripts::{churn_stream, edit_stream, faulty_stream};
use sws_core::{ConceptKind, ModOp, Workspace};
use sws_corpus::synthetic::SyntheticSpec;
use sws_model::SchemaGraph;

/// Run both sides and demand exact agreement. Returns what the executor
/// did, so callers can count rejections.
fn assert_sound(label: &str, base: &SchemaGraph, script: &[(ConceptKind, ModOp)]) -> bool {
    let report = analyze_ops(base, base, script);
    let mut ws = Workspace::new(base.clone());
    match ws.replay(script.iter().cloned()) {
        Ok(()) => {
            assert!(
                report.passes(),
                "{label}: false positive — executor accepted all {} ops, analyzer stopped at \
                 {:?} predicting {:?}",
                script.len(),
                report.stopped_at,
                report.predicted,
            );
            false
        }
        Err((i, e)) => {
            assert_eq!(
                report.stopped_at,
                Some(i),
                "{label}: executor rejected op #{i} ({e}), analyzer said stopped_at={:?} \
                 predicted={:?}",
                report.stopped_at,
                report.predicted,
            );
            assert_eq!(
                report.predicted.as_ref(),
                Some(&e),
                "{label}: stop index agrees ({i}) but the predicted error differs",
            );
            true
        }
    }
}

#[test]
fn corpus_valid_streams_are_predicted_clean() {
    for (name, g) in sws_corpus::all_named() {
        for seed in 0..4 {
            let script = edit_stream(&g, 24, seed);
            let rejected = assert_sound(&format!("{name}/edit/{seed}"), &g, &script);
            assert!(!rejected, "{name}: edit_stream must be executor-clean");
            let script = churn_stream(&g, 24, seed);
            let rejected = assert_sound(&format!("{name}/churn/{seed}"), &g, &script);
            assert!(!rejected, "{name}: churn_stream must be executor-clean");
        }
    }
}

#[test]
fn corpus_faulty_streams_predict_the_exact_first_error() {
    let mut rejections = 0usize;
    for (name, g) in sws_corpus::all_named() {
        for seed in 0..12 {
            let script = faulty_stream(&g, 32, seed);
            if assert_sound(&format!("{name}/faulty/{seed}"), &g, &script) {
                rejections += 1;
            }
        }
    }
    // The sweep is vacuous if the adversarial generator stopped generating
    // executor-visible faults.
    assert!(
        rejections > 20,
        "only {rejections} rejected streams across the corpus sweep"
    );
}

#[test]
fn synthetic_graph_sweep() {
    for size in [5, 12, 25] {
        for seed in 0..8 {
            let g = SyntheticSpec::sized(size, seed).generate();
            assert_sound(
                &format!("synthetic{size}/faulty/{seed}"),
                &g,
                &faulty_stream(&g, 40, seed * 31 + 7),
            );
            assert_sound(
                &format!("synthetic{size}/edit/{seed}"),
                &g,
                &edit_stream(&g, 24, seed),
            );
        }
    }
}

/// Concatenating a valid prefix with an adversarial tail moves the first
/// failure deep into the script; prediction must still be index-exact.
#[test]
fn mixed_prefix_scripts_fail_deep() {
    for (name, g) in sws_corpus::all_named() {
        let mut script = edit_stream(&g, 12, 3);
        script.extend(faulty_stream(&g, 24, 5));
        assert_sound(&format!("{name}/mixed"), &g, &script);
    }
}

mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The oracle holds for random graph sizes, stream lengths, and
        /// seeds.
        #[test]
        fn analyzer_is_sound_on_random_adversarial_streams(
            size in 2usize..18,
            gseed in 0u64..500,
            count in 1usize..48,
            sseed in 0u64..500,
        ) {
            let g = SyntheticSpec::sized(size, gseed).generate();
            let script = faulty_stream(&g, count, sseed);
            assert_sound(&format!("prop/{size}/{gseed}/{count}/{sseed}"), &g, &script);
        }

        /// Valid streams never produce error findings, at any scale.
        #[test]
        fn analyzer_passes_random_valid_streams(
            size in 2usize..18,
            gseed in 0u64..500,
            count in 1usize..48,
            sseed in 0u64..500,
        ) {
            let g = SyntheticSpec::sized(size, gseed).generate();
            let script = edit_stream(&g, count, sseed);
            let rejected = assert_sound(&format!("prop-valid/{size}/{gseed}"), &g, &script);
            prop_assert!(!rejected);
        }
    }
}
