//! Golden `LintReport` fixtures: one minimal script per diagnostic code,
//! with the full single-line JSON report pinned byte-for-byte under
//! `tests/fixtures/`. A change to report serialization, code assignment,
//! message wording, or the checksum breaks these on purpose.
//!
//! To re-bless after an intentional change:
//! `SWS_BLESS=1 cargo test -p sws-analyze --test golden`.

use sws_analyze::{analyze_ops, LintReport};
use sws_core::{ConceptKind, ModOp};
use sws_model::{schema_to_graph, SchemaGraph};
use sws_odl::{parse_schema, Cardinality, CollectionKind, DomainType};

fn base() -> SchemaGraph {
    let src = r#"
    schema Golden {
        interface Person { attribute string name; }
        interface Employee : Person {
            relationship Department works_in_a inverse Department::has;
        }
        interface Department {
            relationship set<Employee> has inverse Employee::works_in_a;
        }
    }"#;
    schema_to_graph(&parse_schema(src).expect("fixture parses")).expect("fixture lowers")
}

fn ww(op: ModOp) -> (ConceptKind, ModOp) {
    (ConceptKind::WagonWheel, op)
}

fn gen(op: ModOp) -> (ConceptKind, ModOp) {
    (ConceptKind::Generalization, op)
}

/// `(fixture name, expected code, script)` for every stable code.
fn cases() -> Vec<(&'static str, &'static str, Vec<(ConceptKind, ModOp)>)> {
    vec![
        (
            "a001_use_before_def",
            "A001",
            vec![ww(ModOp::DeleteTypeDefinition { ty: "Ghost".into() })],
        ),
        (
            "a002_use_after_delete",
            "A002",
            vec![
                ww(ModOp::AddTypeDefinition { ty: "Temp".into() }),
                ww(ModOp::DeleteTypeDefinition { ty: "Temp".into() }),
                ww(ModOp::AddAttribute {
                    ty: "Temp".into(),
                    domain: DomainType::Long,
                    size: None,
                    name: "x".into(),
                }),
            ],
        ),
        (
            "a003_duplicate_def",
            "A003",
            vec![ww(ModOp::AddTypeDefinition {
                ty: "Person".into(),
            })],
        ),
        (
            "a004_stale_value",
            "A004",
            vec![ww(ModOp::ModifyAttributeType {
                ty: "Person".into(),
                name: "name".into(),
                old: DomainType::Long,
                new: DomainType::Double,
            })],
        ),
        (
            "a005_cycle",
            "A005",
            vec![gen(ModOp::AddSupertype {
                ty: "Person".into(),
                supertype: "Employee".into(),
            })],
        ),
        (
            "a006_inherited_conflict",
            "A006",
            vec![ww(ModOp::AddAttribute {
                ty: "Employee".into(),
                domain: DomainType::String,
                size: None,
                name: "name".into(),
            })],
        ),
        (
            "a007_semantic_stability",
            "A007",
            vec![gen(ModOp::ModifyAttribute {
                ty: "Person".into(),
                name: "name".into(),
                new_ty: "Department".into(),
            })],
        ),
        (
            "a008_unresolvable_order_by",
            "A008",
            vec![ww(ModOp::AddRelationship {
                ty: "Department".into(),
                target: "Person".into(),
                cardinality: Cardinality::Many(CollectionKind::Set),
                path: "staff".into(),
                inverse_path: "staff_of".into(),
                order_by: vec!["ghost_attr".into()],
            })],
        ),
        (
            "a009_structural_misuse",
            "A009",
            vec![(
                ConceptKind::Aggregation,
                ModOp::AddPartOfRelationship {
                    ty: "Department".into(),
                    collection: Some(CollectionKind::Set),
                    target: "Department".into(),
                    path: "parts".into(),
                    inverse_path: "part_of".into(),
                    order_by: vec![],
                },
            )],
        ),
        (
            "a010_referential",
            "A010",
            vec![ww(ModOp::AddAttribute {
                ty: "Person".into(),
                domain: DomainType::Long,
                size: Some(8),
                name: "badge".into(),
            })],
        ),
        (
            "a011_not_permitted",
            "A011",
            vec![ww(ModOp::AddSupertype {
                ty: "Department".into(),
                supertype: "Person".into(),
            })],
        ),
        (
            "w101_redundant_modify",
            "W101",
            vec![ww(ModOp::ModifyAttributeType {
                ty: "Person".into(),
                name: "name".into(),
                old: DomainType::String,
                new: DomainType::String,
            })],
        ),
        (
            "w102_delete_of_own_create",
            "W102",
            vec![
                ww(ModOp::AddTypeDefinition { ty: "Temp".into() }),
                ww(ModOp::DeleteTypeDefinition { ty: "Temp".into() }),
            ],
        ),
        (
            "w103_dead_store",
            "W103",
            vec![
                ww(ModOp::ModifyAttributeSize {
                    ty: "Person".into(),
                    name: "name".into(),
                    old: None,
                    new: Some(32),
                }),
                ww(ModOp::DeleteAttribute {
                    ty: "Person".into(),
                    name: "name".into(),
                }),
            ],
        ),
        (
            "clean_with_commuting_pair",
            "",
            vec![
                ww(ModOp::AddTypeDefinition {
                    ty: "CourseA".into(),
                }),
                ww(ModOp::AddTypeDefinition {
                    ty: "CourseB".into(),
                }),
            ],
        ),
    ]
}

#[test]
fn every_diagnostic_code_has_a_byte_stable_golden_report() {
    let g = base();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let bless = std::env::var_os("SWS_BLESS").is_some();
    if bless {
        std::fs::create_dir_all(&dir).expect("fixtures dir");
    }
    let mut failures = Vec::new();
    for (name, code, script) in cases() {
        let report = analyze_ops(&g, &g, &script);
        if !code.is_empty() {
            assert!(
                report.findings.iter().any(|f| f.code == code),
                "{name}: expected a {code} finding, got {report:?}"
            );
        } else {
            assert!(report.is_clean(), "{name}: expected clean, got {report:?}");
            assert!(
                !report.commuting_pairs.is_empty(),
                "{name}: expected a commuting pair"
            );
        }
        let line = report.to_json();
        assert!(LintReport::checksum_valid(&line), "{name}: bad checksum");
        let path = dir.join(format!("{name}.json"));
        if bless {
            std::fs::write(&path, format!("{line}\n")).expect("bless write");
            continue;
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name}: missing golden fixture {path:?}: {e}"));
        if golden.trim_end() != line {
            failures.push(format!(
                "{name}:\n  golden: {}\n  actual: {line}",
                golden.trim_end()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden mismatches (SWS_BLESS=1 to re-bless):\n{}",
        failures.join("\n")
    );
}
