//! The op scripts under `crates/corpus/scripts/` are what CI feeds to
//! `swsd lint`. Two invariants keep them honest:
//!
//! * `university.odl` is a byte copy of `sws_corpus::university::SOURCE`,
//!   so the on-disk schema can never drift from the in-crate one.
//! * Every `<name>.<context>.ops` script parses, lints clean in the
//!   context named by its filename, and replays clean through the
//!   executor — CI green means the scripts are genuinely valid, not just
//!   unexercised.

use std::path::PathBuf;
use sws_analyze::analyze_script;
use sws_core::{ConceptKind, Workspace};

fn scripts_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../corpus/scripts")
}

#[test]
fn on_disk_schema_matches_the_corpus_source() {
    let disk = std::fs::read_to_string(scripts_dir().join("university.odl"))
        .expect("crates/corpus/scripts/university.odl exists");
    assert_eq!(
        disk,
        sws_corpus::university::SOURCE.trim_start_matches('\n'),
        "university.odl drifted from sws_corpus::university::SOURCE"
    );
}

#[test]
fn every_corpus_script_lints_clean_in_its_named_context() {
    let g = sws_corpus::university::graph();
    let mut seen = 0usize;
    for entry in std::fs::read_dir(scripts_dir()).expect("scripts dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("ops") {
            continue;
        }
        seen += 1;
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf8 stem");
        let tag = stem.rsplit('.').next().expect("non-empty stem");
        let context = ConceptKind::from_tag(tag)
            .unwrap_or_else(|| panic!("{stem}: unknown context tag {tag:?}"));
        let src = std::fs::read_to_string(&path).expect("readable script");

        let report = analyze_script(&g, &g, context, &src)
            .unwrap_or_else(|e| panic!("{stem}: parse error: {e}"));
        assert!(
            report.is_clean(),
            "{stem}: expected a clean lint, got {report:?}"
        );

        let script = sws_core::parse_script(&src)
            .expect("parsed once already")
            .into_iter()
            .map(|op| (context, op));
        let mut ws = Workspace::new(g.clone());
        ws.replay(script)
            .unwrap_or_else(|(i, e)| panic!("{stem}: executor rejected op #{i}: {e}"));
    }
    assert!(seen >= 4, "expected at least 4 .ops scripts, found {seen}");
}
