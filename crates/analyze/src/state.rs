//! [`AbsState`]: the abstract interpreter's schema state — a copy-on-write
//! overlay over a base [`SchemaGraph`] that is never mutated.
//!
//! The state implements [`SchemaView`], so the *identical* precondition
//! checker the executor runs (`sws_core::check_preconditions_view`) runs
//! over it unchanged — the analyzer cannot drift from the executor on what
//! a script may do. What remains to mirror is the *transfer function*: the
//! effect of one accepted operation on the state, which follows
//! `sws_core::ops::apply::apply_op` and the `SchemaGraph` mutators
//! statement by statement (minus undo journaling, generation bumps, and
//! cascade reporting, none of which are observable through the view).
//!
//! Two properties the mirror preserves exactly:
//!
//! * **ID discipline** — arena slots are tombstoned and never reused, new
//!   nodes append. The overlay mints IDs from the base slot counts, so a
//!   parallel real application produces the same IDs.
//! * **List order** — member and edge lists (`attrs`, `rel_ends`,
//!   `supertypes`, …) are pushed and `retain`ed in the same order as the
//!   real mutators, so traversal-order-sensitive checker output (BFS
//!   ancestor order, visible-member shadowing, violation order) is
//!   identical.
//!
//! Deliberate divergence: `remove_type` discovers incident relationships
//! and links through the *node's own* adjacency lists (`rel_ends`,
//! `parent_links`, `child_links`) instead of the executor's full-arena
//! scan. The graph invariant (a live edge is registered on both of its
//! endpoint types) makes the two discovery routes find the same edge set,
//! and the final state is identical; the analyzer stays O(script), not
//! O(graph), per operation.

use std::collections::{BTreeSet, HashMap, HashSet};
use sws_core::ModOp;
use sws_model::{
    AttrId, AttrNode, LinkId, LinkNode, LinkSide, OpId, OpNode, RelEnd, RelId, RelNode,
    SchemaGraph, SchemaView, SymKey, Symbol, TypeId, TypeNode,
};
use sws_odl::{Cardinality, CollectionKind, HierKind, Operation};

/// Copy-on-write overlay state. See the module docs.
pub struct AbsState<'a> {
    base: &'a SchemaGraph,
    /// Overlay nodes, keyed by raw arena index. An entry shadows the base
    /// slot (or is a minted node at an index past the base slot count).
    types: HashMap<u32, TypeNode>,
    attrs: HashMap<u32, AttrNode>,
    rels: HashMap<u32, RelNode>,
    ops: HashMap<u32, OpNode>,
    links: HashMap<u32, LinkNode>,
    /// Tombstones. A dead index never resolves, whatever the overlay holds.
    dead_types: HashSet<u32>,
    dead_attrs: HashSet<u32>,
    dead_rels: HashSet<u32>,
    dead_ops: HashSet<u32>,
    dead_links: HashSet<u32>,
    /// Next IDs to mint, seeded from the base arena slot counts.
    next_type: u32,
    next_attr: u32,
    next_rel: u32,
    next_op: u32,
    next_link: u32,
    /// Base slot counts (indices below resolve through the base arena).
    base_type_slots: u32,
    /// Name-resolution overlay: `Some(id)` after an add, `None` after a
    /// delete; absence falls through to the base index.
    by_name: HashMap<Symbol, Option<TypeId>>,
}

impl<'a> AbsState<'a> {
    /// Start from `base` with an empty overlay.
    pub fn new(base: &'a SchemaGraph) -> Self {
        let stats = base.arena_stats();
        AbsState {
            base,
            types: HashMap::new(),
            attrs: HashMap::new(),
            rels: HashMap::new(),
            ops: HashMap::new(),
            links: HashMap::new(),
            dead_types: HashSet::new(),
            dead_attrs: HashSet::new(),
            dead_rels: HashSet::new(),
            dead_ops: HashSet::new(),
            dead_links: HashSet::new(),
            next_type: (stats.types_live + stats.types_dead) as u32,
            next_attr: (stats.attrs_live + stats.attrs_dead) as u32,
            next_rel: (stats.rels_live + stats.rels_dead) as u32,
            next_op: (stats.ops_live + stats.ops_dead) as u32,
            next_link: (stats.links_live + stats.links_dead) as u32,
            base_type_slots: (stats.types_live + stats.types_dead) as u32,
            by_name: HashMap::new(),
        }
    }

    /// How many arena slots the overlay shadows or minted (test aid).
    pub fn overlay_len(&self) -> usize {
        self.types.len() + self.attrs.len() + self.rels.len() + self.ops.len() + self.links.len()
    }

    fn live_ty(&self, i: u32) -> Option<&TypeNode> {
        if self.dead_types.contains(&i) {
            return None;
        }
        if let Some(n) = self.types.get(&i) {
            return Some(n);
        }
        if i < self.base_type_slots {
            self.base.try_ty(TypeId(i))
        } else {
            None
        }
    }

    // -- copy-on-write mutable accessors --------------------------------

    fn type_mut(&mut self, id: TypeId) -> &mut TypeNode {
        self.types.entry(id.0).or_insert_with(|| {
            self.base
                .try_ty(id)
                .expect("analyzer touched a type the checker did not resolve")
                .clone()
        })
    }

    fn attr_mut(&mut self, id: AttrId) -> &mut AttrNode {
        self.attrs.entry(id.0).or_insert_with(|| {
            self.base
                .try_attr(id)
                .expect("analyzer touched an attribute the checker did not resolve")
                .clone()
        })
    }

    fn rel_mut(&mut self, id: RelId) -> &mut RelNode {
        self.rels.entry(id.0).or_insert_with(|| {
            self.base
                .try_rel(id)
                .expect("analyzer touched a relationship the checker did not resolve")
                .clone()
        })
    }

    fn op_mut(&mut self, id: OpId) -> &mut OpNode {
        self.ops.entry(id.0).or_insert_with(|| {
            self.base
                .try_op(id)
                .expect("analyzer touched an operation the checker did not resolve")
                .clone()
        })
    }

    fn link_mut(&mut self, id: LinkId) -> &mut LinkNode {
        self.links.entry(id.0).or_insert_with(|| {
            self.base
                .try_link(id)
                .expect("analyzer touched a link the checker did not resolve")
                .clone()
        })
    }

    fn require(&self, name: &str) -> TypeId {
        SchemaView::type_id(self, name).expect("precondition checker resolved this type")
    }

    // -- mirrored mutators ----------------------------------------------
    // Each function follows the same-named `SchemaGraph` mutator. Error
    // paths are omitted: `transfer` runs only on operations the shared
    // precondition checker accepted, which (by the coverage contract the
    // differential suite enforces) implies the mutator succeeds.

    fn add_type(&mut self, name: &str) {
        let sym = Symbol::intern(name);
        let id = TypeId(self.next_type);
        self.next_type += 1;
        self.types.insert(id.0, TypeNode::fresh(sym));
        self.by_name.insert(sym, Some(id));
    }

    fn remove_type(&mut self, id: TypeId) {
        let node = self.ty(id).clone();

        // Relationships with an end here — via the node's adjacency list
        // instead of the executor's arena scan (see module docs). A
        // self-loop registers twice; dedup preserves first-seen order,
        // matching the arena scan's ascending-ID order because adjacency
        // lists are push-ordered.
        let mut seen = BTreeSet::new();
        for &(rid, _) in &node.rel_ends {
            if seen.insert(rid) {
                self.remove_relationship(rid);
            }
        }
        let mut seen_links = BTreeSet::new();
        for &lid in node.parent_links.iter().chain(&node.child_links) {
            if seen_links.insert(lid) {
                self.remove_link(lid);
            }
        }

        // Members die with the type.
        for &a in &node.attrs {
            self.dead_attrs.insert(a.0);
        }
        for &o in &node.ops {
            self.dead_ops.insert(o.0);
        }

        // Supertype edges up.
        for &sup in &node.supertypes {
            self.type_mut(sup).subtypes.retain(|&s| s != id);
        }

        // Subtype edges down, rewired across the removed type
        // (`RemoveTypeMode::RewireSubtypes`, the only mode the apply
        // pipeline uses).
        for &sub in &node.subtypes {
            self.type_mut(sub).supertypes.retain(|&s| s != id);
            for &sup in &node.supertypes {
                if !self.ty(sub).supertypes.contains(&sup) {
                    self.type_mut(sub).supertypes.push(sup);
                    self.type_mut(sup).subtypes.push(sub);
                }
            }
        }

        self.dead_types.insert(id.0);
        self.by_name.insert(node.name, None);
    }

    fn add_supertype(&mut self, sub: TypeId, sup: TypeId) {
        self.type_mut(sub).supertypes.push(sup);
        self.type_mut(sup).subtypes.push(sub);
    }

    fn remove_supertype(&mut self, sub: TypeId, sup: TypeId) {
        self.type_mut(sub).supertypes.retain(|&s| s != sup);
        self.type_mut(sup).subtypes.retain(|&s| s != sub);
    }

    fn set_extent(&mut self, id: TypeId, extent: Option<&str>) {
        self.type_mut(id).extent = extent.map(Symbol::intern);
    }

    fn add_key(&mut self, id: TypeId, key: &sws_odl::Key) {
        let skey = SymKey::from_key(key);
        self.type_mut(id).keys.push(skey);
    }

    fn remove_key(&mut self, id: TypeId, key: &sws_odl::Key) {
        let skey = SymKey::from_key(key);
        self.type_mut(id).keys.retain(|k| *k != skey);
    }

    fn add_attribute(
        &mut self,
        owner: TypeId,
        name: &str,
        ty: sws_odl::DomainType,
        size: Option<u32>,
    ) {
        let id = AttrId(self.next_attr);
        self.next_attr += 1;
        self.attrs
            .insert(id.0, AttrNode::fresh(owner, Symbol::intern(name), ty, size));
        self.type_mut(owner).attrs.push(id);
    }

    fn remove_attribute(&mut self, id: AttrId) {
        let (owner, name) = {
            let a = self.attr(id);
            (a.owner, a.name)
        };
        self.prune_attr_references(owner, name);
        self.dead_attrs.insert(id.0);
        self.type_mut(owner).attrs.retain(|&a| a != id);
    }

    fn move_attribute(&mut self, id: AttrId, new_owner: TypeId) {
        let (old_owner, name) = {
            let a = self.attr(id);
            (a.owner, a.name)
        };
        if old_owner == new_owner {
            return;
        }
        self.prune_attr_references(old_owner, name);
        self.type_mut(old_owner).attrs.retain(|&a| a != id);
        self.type_mut(new_owner).attrs.push(id);
        self.attr_mut(id).owner = new_owner;
    }

    /// Mirror of `SchemaGraph::prune_attr_references`, using the owner's
    /// adjacency lists instead of the arena scans (see module docs: the
    /// opposite-end condition in the executor's scan selects exactly the
    /// relationships registered on `owner`, and the child-link condition
    /// selects exactly `owner`'s `child_links`).
    fn prune_attr_references(&mut self, owner: TypeId, name: Symbol) {
        self.type_mut(owner).keys.retain(|k| !k.0.contains(&name));
        let rel_ends = self.ty(owner).rel_ends.clone();
        for (rid, me) in rel_ends {
            let far = (1 - me) as usize;
            if self.rel(rid).ends[far].order_by.contains(&name) {
                self.rel_mut(rid).ends[far].order_by.retain(|&a| a != name);
            }
        }
        let child_links = self.ty(owner).child_links.clone();
        for lid in child_links {
            if self.link(lid).order_by.contains(&name) {
                self.link_mut(lid).order_by.retain(|&a| a != name);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn add_relationship(
        &mut self,
        a_owner: TypeId,
        a_path: &str,
        a_cardinality: Cardinality,
        a_order_by: &[String],
        b_owner: TypeId,
        b_path: &str,
        b_cardinality: Cardinality,
        b_order_by: &[String],
    ) {
        let id = RelId(self.next_rel);
        self.next_rel += 1;
        self.rels.insert(
            id.0,
            RelNode::fresh([
                RelEnd {
                    owner: a_owner,
                    path: Symbol::intern(a_path),
                    cardinality: a_cardinality,
                    order_by: a_order_by.iter().map(|s| Symbol::intern(s)).collect(),
                },
                RelEnd {
                    owner: b_owner,
                    path: Symbol::intern(b_path),
                    cardinality: b_cardinality,
                    order_by: b_order_by.iter().map(|s| Symbol::intern(s)).collect(),
                },
            ]),
        );
        self.type_mut(a_owner).rel_ends.push((id, 0));
        self.type_mut(b_owner).rel_ends.push((id, 1));
    }

    fn remove_relationship(&mut self, id: RelId) {
        let (a, b) = {
            let r = self.rel(id);
            (r.ends[0].owner, r.ends[1].owner)
        };
        self.type_mut(a).rel_ends.retain(|&(r, _)| r != id);
        self.type_mut(b).rel_ends.retain(|&(r, _)| r != id);
        self.dead_rels.insert(id.0);
    }

    fn retarget_rel_end(&mut self, id: RelId, end: u8, new_owner: TypeId) {
        let old_owner = self.rel(id).ends[end as usize].owner;
        if old_owner == new_owner {
            return;
        }
        self.type_mut(old_owner)
            .rel_ends
            .retain(|&(r, e)| !(r == id && e == end));
        self.type_mut(new_owner).rel_ends.push((id, end));
        self.rel_mut(id).ends[end as usize].owner = new_owner;
    }

    fn add_operation(&mut self, owner: TypeId, op: Operation) {
        let id = OpId(self.next_op);
        self.next_op += 1;
        self.ops.insert(id.0, OpNode::fresh(owner, op));
        self.type_mut(owner).ops.push(id);
    }

    fn remove_operation(&mut self, id: OpId) {
        let owner = self.op(id).owner;
        self.type_mut(owner).ops.retain(|&o| o != id);
        self.dead_ops.insert(id.0);
    }

    fn move_operation(&mut self, id: OpId, new_owner: TypeId) {
        let old_owner = self.op(id).owner;
        if old_owner == new_owner {
            return;
        }
        self.type_mut(old_owner).ops.retain(|&o| o != id);
        self.type_mut(new_owner).ops.push(id);
        self.op_mut(id).owner = new_owner;
    }

    #[allow(clippy::too_many_arguments)]
    fn add_link(
        &mut self,
        kind: HierKind,
        parent: TypeId,
        parent_path: &str,
        collection: CollectionKind,
        order_by: &[String],
        child: TypeId,
        child_path: &str,
    ) {
        let id = LinkId(self.next_link);
        self.next_link += 1;
        self.links.insert(
            id.0,
            LinkNode::fresh(
                kind,
                parent,
                Symbol::intern(parent_path),
                collection,
                order_by.iter().map(|s| Symbol::intern(s)).collect(),
                child,
                Symbol::intern(child_path),
            ),
        );
        self.type_mut(parent).parent_links.push(id);
        self.type_mut(child).child_links.push(id);
    }

    fn remove_link(&mut self, id: LinkId) {
        let (parent, child) = {
            let l = self.link(id);
            (l.parent, l.child)
        };
        self.type_mut(parent).parent_links.retain(|&l| l != id);
        self.type_mut(child).child_links.retain(|&l| l != id);
        self.dead_links.insert(id.0);
    }

    fn retarget_link_end(&mut self, id: LinkId, side: LinkSide, new_type: TypeId) {
        let old_type = match side {
            LinkSide::Parent => self.link(id).parent,
            LinkSide::Child => self.link(id).child,
        };
        if old_type == new_type {
            return;
        }
        match side {
            LinkSide::Parent => {
                self.type_mut(old_type).parent_links.retain(|&l| l != id);
                self.type_mut(new_type).parent_links.push(id);
                self.link_mut(id).parent = new_type;
            }
            LinkSide::Child => {
                self.type_mut(old_type).child_links.retain(|&l| l != id);
                self.type_mut(new_type).child_links.push(id);
                self.link_mut(id).child = new_type;
            }
        }
    }

    /// Abstract transfer: the effect of one *accepted* operation. Mirrors
    /// `apply_op` arm by arm; callers must run the precondition checker
    /// first (the `analyze` driver does).
    pub fn transfer(&mut self, op: &ModOp) {
        match op {
            ModOp::AddTypeDefinition { ty } => self.add_type(ty),
            ModOp::DeleteTypeDefinition { ty } => {
                let id = self.require(ty);
                self.remove_type(id);
            }
            ModOp::AddSupertype { ty, supertype } => {
                let sub = self.require(ty);
                let sup = self.require(supertype);
                self.add_supertype(sub, sup);
            }
            ModOp::DeleteSupertype { ty, supertype } => {
                let sub = self.require(ty);
                let sup = self.require(supertype);
                self.remove_supertype(sub, sup);
            }
            ModOp::ModifySupertype { ty, old, new } => {
                let sub = self.require(ty);
                for sup_name in old {
                    let sup = self.require(sup_name);
                    self.remove_supertype(sub, sup);
                }
                for sup_name in new {
                    let sup = self.require(sup_name);
                    self.add_supertype(sub, sup);
                }
            }
            ModOp::AddExtentName { ty, extent }
            | ModOp::ModifyExtentName {
                ty, new: extent, ..
            } => {
                let id = self.require(ty);
                self.set_extent(id, Some(extent));
            }
            ModOp::DeleteExtentName { ty, .. } => {
                let id = self.require(ty);
                self.set_extent(id, None);
            }
            ModOp::AddKeyList { ty, keys } => {
                let id = self.require(ty);
                for key in keys {
                    self.add_key(id, key);
                }
            }
            ModOp::DeleteKeyList { ty, keys } => {
                let id = self.require(ty);
                for key in keys {
                    self.remove_key(id, key);
                }
            }
            ModOp::ModifyKeyList { ty, old, new } => {
                let id = self.require(ty);
                for key in old {
                    self.remove_key(id, key);
                }
                for key in new {
                    self.add_key(id, key);
                }
            }
            ModOp::AddAttribute {
                ty,
                domain,
                size,
                name,
            } => {
                let id = self.require(ty);
                self.add_attribute(id, name, domain.clone(), *size);
            }
            ModOp::DeleteAttribute { ty, name } => {
                let id = self.require(ty);
                let aid = self
                    .find_attr(id, name)
                    .expect("precondition checker resolved this attribute");
                self.remove_attribute(aid);
            }
            ModOp::ModifyAttribute { ty, name, new_ty } => {
                let id = self.require(ty);
                let dest = self.require(new_ty);
                let aid = self
                    .find_attr(id, name)
                    .expect("precondition checker resolved this attribute");
                self.move_attribute(aid, dest);
            }
            ModOp::ModifyAttributeType { ty, name, new, .. } => {
                let id = self.require(ty);
                let aid = self
                    .find_attr(id, name)
                    .expect("precondition checker resolved this attribute");
                let had_size = self.attr(aid).size;
                self.attr_mut(aid).ty = new.clone();
                if had_size.is_some() && !new.admits_size() {
                    self.attr_mut(aid).size = None;
                }
            }
            ModOp::ModifyAttributeSize { ty, name, new, .. } => {
                let id = self.require(ty);
                let aid = self
                    .find_attr(id, name)
                    .expect("precondition checker resolved this attribute");
                self.attr_mut(aid).size = *new;
            }
            ModOp::AddRelationship {
                ty,
                target,
                cardinality,
                path,
                inverse_path,
                order_by,
            } => {
                let a = self.require(ty);
                let b = self.require(target);
                self.add_relationship(
                    a,
                    path,
                    *cardinality,
                    order_by,
                    b,
                    inverse_path,
                    Cardinality::One,
                    &[],
                );
            }
            ModOp::DeleteRelationship { ty, path } => {
                let id = self.require(ty);
                let (rid, _) = self
                    .find_rel_end(id, path)
                    .expect("precondition checker resolved this relationship");
                self.remove_relationship(rid);
            }
            ModOp::ModifyRelationshipTargetType {
                ty,
                path,
                new_target,
                ..
            } => {
                let id = self.require(ty);
                let dest = self.require(new_target);
                let (rid, e) = self
                    .find_rel_end(id, path)
                    .expect("precondition checker resolved this relationship");
                self.retarget_rel_end(rid, 1 - e, dest);
            }
            ModOp::ModifyRelationshipCardinality { ty, path, new, .. } => {
                let id = self.require(ty);
                let (rid, e) = self
                    .find_rel_end(id, path)
                    .expect("precondition checker resolved this relationship");
                self.rel_mut(rid).ends[e as usize].cardinality = *new;
            }
            ModOp::ModifyRelationshipOrderBy { ty, path, new, .. } => {
                let id = self.require(ty);
                let (rid, e) = self
                    .find_rel_end(id, path)
                    .expect("precondition checker resolved this relationship");
                self.rel_mut(rid).ends[e as usize].order_by =
                    new.iter().map(|s| Symbol::intern(s)).collect();
            }
            ModOp::AddOperation {
                ty,
                return_type,
                name,
                args,
                raises,
            } => {
                let id = self.require(ty);
                self.add_operation(
                    id,
                    Operation {
                        name: name.clone(),
                        return_type: return_type.clone(),
                        args: args.clone(),
                        raises: raises.clone(),
                    },
                );
            }
            ModOp::DeleteOperation { ty, name } => {
                let id = self.require(ty);
                let oid = self
                    .find_op(id, name)
                    .expect("precondition checker resolved this operation");
                self.remove_operation(oid);
            }
            ModOp::ModifyOperation { ty, name, new_ty } => {
                let id = self.require(ty);
                let dest = self.require(new_ty);
                let oid = self
                    .find_op(id, name)
                    .expect("precondition checker resolved this operation");
                self.move_operation(oid, dest);
            }
            ModOp::ModifyOperationReturnType { ty, name, new, .. } => {
                let id = self.require(ty);
                let oid = self
                    .find_op(id, name)
                    .expect("precondition checker resolved this operation");
                self.op_mut(oid).op.return_type = new.clone();
            }
            ModOp::ModifyOperationArgList { ty, name, new, .. } => {
                let id = self.require(ty);
                let oid = self
                    .find_op(id, name)
                    .expect("precondition checker resolved this operation");
                self.op_mut(oid).op.args = new.clone();
            }
            ModOp::ModifyOperationExceptionsRaised { ty, name, new, .. } => {
                let id = self.require(ty);
                let oid = self
                    .find_op(id, name)
                    .expect("precondition checker resolved this operation");
                self.op_mut(oid).op.raises = new.clone();
            }
            ModOp::AddPartOfRelationship {
                ty,
                collection,
                target,
                path,
                inverse_path,
                order_by,
            } => self.transfer_add_link(
                HierKind::PartOf,
                ty,
                *collection,
                target,
                path,
                inverse_path,
                order_by,
            ),
            ModOp::DeletePartOfRelationship { ty, path } => {
                self.transfer_delete_link(HierKind::PartOf, ty, path)
            }
            ModOp::ModifyPartOfTargetType {
                ty,
                path,
                new_target,
                ..
            } => self.transfer_retarget_link(HierKind::PartOf, ty, path, new_target),
            ModOp::ModifyPartOfCardinality { ty, path, new, .. } => {
                self.transfer_set_link_collection(HierKind::PartOf, ty, path, *new)
            }
            ModOp::ModifyPartOfOrderBy { ty, path, new, .. } => {
                self.transfer_set_link_order_by(HierKind::PartOf, ty, path, new)
            }
            ModOp::AddInstanceOfRelationship {
                ty,
                collection,
                target,
                path,
                inverse_path,
                order_by,
            } => self.transfer_add_link(
                HierKind::InstanceOf,
                ty,
                *collection,
                target,
                path,
                inverse_path,
                order_by,
            ),
            ModOp::DeleteInstanceOfRelationship { ty, path } => {
                self.transfer_delete_link(HierKind::InstanceOf, ty, path)
            }
            ModOp::ModifyInstanceOfTargetType {
                ty,
                path,
                new_target,
                ..
            } => self.transfer_retarget_link(HierKind::InstanceOf, ty, path, new_target),
            ModOp::ModifyInstanceOfCardinality { ty, path, new, .. } => {
                self.transfer_set_link_collection(HierKind::InstanceOf, ty, path, *new)
            }
            ModOp::ModifyInstanceOfOrderBy { ty, path, new, .. } => {
                self.transfer_set_link_order_by(HierKind::InstanceOf, ty, path, new)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn transfer_add_link(
        &mut self,
        kind: HierKind,
        ty: &str,
        collection: Option<CollectionKind>,
        target: &str,
        path: &str,
        inverse_path: &str,
        order_by: &[String],
    ) {
        let a = self.require(ty);
        let b = self.require(target);
        match collection {
            // To-parts / to-instance-entities form: `ty` is the parent.
            Some(kind_coll) => self.add_link(kind, a, path, kind_coll, order_by, b, inverse_path),
            // To-whole / to-generic-entity form: `ty` is the child.
            None => self.add_link(kind, b, inverse_path, CollectionKind::Set, &[], a, path),
        }
    }

    fn transfer_delete_link(&mut self, kind: HierKind, ty: &str, path: &str) {
        let id = self.require(ty);
        let (lid, _) = self
            .find_link(kind, id, path)
            .expect("precondition checker resolved this link");
        self.remove_link(lid);
    }

    fn transfer_retarget_link(&mut self, kind: HierKind, ty: &str, path: &str, new_target: &str) {
        let id = self.require(ty);
        let dest = self.require(new_target);
        let (lid, side) = self
            .find_link(kind, id, path)
            .expect("precondition checker resolved this link");
        // The path belongs to `ty`; its target is the opposite side.
        let opposite = match side {
            LinkSide::Parent => LinkSide::Child,
            LinkSide::Child => LinkSide::Parent,
        };
        self.retarget_link_end(lid, opposite, dest);
    }

    fn transfer_set_link_collection(
        &mut self,
        kind: HierKind,
        ty: &str,
        path: &str,
        collection: CollectionKind,
    ) {
        let id = self.require(ty);
        let (lid, _) = self
            .find_link(kind, id, path)
            .expect("precondition checker resolved this link");
        self.link_mut(lid).collection = collection;
    }

    fn transfer_set_link_order_by(&mut self, kind: HierKind, ty: &str, path: &str, new: &[String]) {
        let id = self.require(ty);
        let (lid, _) = self
            .find_link(kind, id, path)
            .expect("precondition checker resolved this link");
        self.link_mut(lid).order_by = new.iter().map(|s| Symbol::intern(s)).collect();
    }
}

impl SchemaView for AbsState<'_> {
    fn type_id(&self, name: &str) -> Option<TypeId> {
        let sym = Symbol::try_lookup(name)?;
        if let Some(entry) = self.by_name.get(&sym) {
            return *entry;
        }
        self.base.type_id(name)
    }

    fn ty(&self, id: TypeId) -> &TypeNode {
        self.live_ty(id.0)
            .expect("AbsState::ty on a dead or unknown type")
    }

    fn attr(&self, id: AttrId) -> &AttrNode {
        if self.dead_attrs.contains(&id.0) {
            panic!("AbsState::attr on a dead attribute");
        }
        self.attrs
            .get(&id.0)
            .or_else(|| self.base.try_attr(id))
            .expect("AbsState::attr on an unknown attribute")
    }

    fn rel(&self, id: RelId) -> &RelNode {
        if self.dead_rels.contains(&id.0) {
            panic!("AbsState::rel on a dead relationship");
        }
        self.rels
            .get(&id.0)
            .or_else(|| self.base.try_rel(id))
            .expect("AbsState::rel on an unknown relationship")
    }

    fn op(&self, id: OpId) -> &OpNode {
        if self.dead_ops.contains(&id.0) {
            panic!("AbsState::op on a dead operation");
        }
        self.ops
            .get(&id.0)
            .or_else(|| self.base.try_op(id))
            .expect("AbsState::op on an unknown operation")
    }

    fn link(&self, id: LinkId) -> &LinkNode {
        if self.dead_links.contains(&id.0) {
            panic!("AbsState::link on a dead link");
        }
        self.links
            .get(&id.0)
            .or_else(|| self.base.try_link(id))
            .expect("AbsState::link on an unknown link")
    }

    fn types_iter(&self) -> Box<dyn Iterator<Item = (TypeId, &TypeNode)> + '_> {
        Box::new((0..self.next_type).filter_map(move |i| self.live_ty(i).map(|n| (TypeId(i), n))))
    }
}
