//! Diagnostics: stable codes, findings, and the machine-readable report.
//!
//! Codes are append-only and never renumbered (scripts and CI greps may
//! pin them):
//!
//! | Code | Meaning |
//! |------|---------|
//! | A001 | use-before-def: a referenced type/member does not exist |
//! | A002 | use-after-delete: the referent existed, but an earlier op in this script deleted it |
//! | A003 | duplicate-def: name/edge/key/extent already defined |
//! | A004 | stale-value: a modify's `old` does not match the current schema |
//! | A005 | cycle: the op would close a generalization or hierarchy cycle |
//! | A006 | inherited-conflict: the member would collide with an inherited member |
//! | A007 | semantic-stability: a move off the shrink-wrap generalization path |
//! | A008 | unresolvable-order-by: a key/order-by names an attribute that is not visible |
//! | A009 | structural-misuse: self link, child-end modification, order-by on child end |
//! | A010 | referential: unknown domain type, inadmissible size constraint |
//! | A011 | not-permitted: Table 1 forbids the op in its concept-schema context |
//! | W101 | redundant: a modify whose `new` equals its `old` (no-op) |
//! | W102 | delete-of-own-create: deletes a construct this same script created |
//! | W103 | dead-store: a modify whose construct a later op in the script deletes |
//! | I201 | commuting adjacent pair (safe to reorder) |
//!
//! [`LintReport::to_json`] follows the crash-report discipline: one line,
//! pinned key order, and a trailing SplitMix64 checksum over everything
//! before it, so external tooling can both diff reports textually and
//! verify they were not truncated.

use std::fmt;
use sws_core::{ConstraintCategory, ConstraintViolation, OpError};
use sws_trace::export::escape_json;

/// Report format version, bumped on any key change.
pub const SCHEMA_VERSION: u32 = 1;

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The executor would reject the script at this operation.
    Error,
    /// Legal but suspicious (redundant / conflicting operations).
    Warning,
    /// Neutral structure notes (commutation).
    Info,
}

impl Severity {
    /// Lowercase name used in the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic, anchored to an operation index in the script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Zero-based index of the operation in the script.
    pub index: usize,
    /// Stable diagnostic code (see the module table).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// The operation, rendered canonically.
    pub op: String,
    /// Human-readable explanation.
    pub message: String,
}

/// The analyzer's verdict on one script.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintReport {
    /// Number of operations in the script.
    pub ops: usize,
    /// All findings, in script order (errors only at `stopped_at`).
    pub findings: Vec<Finding>,
    /// Index of the operation the executor would reject, if any. The
    /// analyzer stops interpreting there, exactly like
    /// `Workspace::apply_script`.
    pub stopped_at: Option<usize>,
    /// The exact error `Workspace::apply` would return at `stopped_at` —
    /// the differential oracle compares this against a real run.
    pub predicted: Option<OpError>,
    /// Adjacent operation pairs `(i, i+1)` that commute (independent
    /// footprints; safe to reorder). Computed for the accepted prefix.
    pub commuting_pairs: Vec<(usize, usize)>,
}

impl LintReport {
    /// True when nothing was found at any severity.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// True when the executor would accept the whole script.
    pub fn passes(&self) -> bool {
        self.stopped_at.is_none()
    }

    /// Count findings of one severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Render the report as exactly one JSON line with pinned key order:
    /// `schema_version`, `ops`, `stopped_at`, `clean`, `findings`,
    /// `commuting_pairs`, `checksum`. The checksum (SplitMix64, same
    /// algorithm as the repository's content checksums) covers every byte
    /// before its own key.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.findings.len() * 96);
        out.push_str(&format!("{{\"schema_version\":{SCHEMA_VERSION}"));
        out.push_str(&format!(",\"ops\":{}", self.ops));
        match self.stopped_at {
            Some(i) => out.push_str(&format!(",\"stopped_at\":{i}")),
            None => out.push_str(",\"stopped_at\":null"),
        }
        out.push_str(&format!(",\"clean\":{}", self.is_clean()));
        out.push_str(",\"findings\":[");
        for (n, f) in self.findings.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"index\":{},\"code\":\"{}\",\"severity\":\"{}\",\"op\":\"{}\",\"message\":\"{}\"}}",
                f.index,
                f.code,
                f.severity.name(),
                escape_json(&f.op),
                escape_json(&f.message),
            ));
        }
        out.push_str("],\"commuting_pairs\":[");
        for (n, (a, b)) in self.commuting_pairs.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{a},{b}]"));
        }
        out.push(']');
        let sum = checksum(out.as_bytes());
        out.push_str(&format!(",\"checksum\":\"{sum:016x}\"}}"));
        out
    }

    /// Verify the checksum of a line produced by [`Self::to_json`].
    pub fn checksum_valid(line: &str) -> bool {
        let Some(pos) = line.rfind(",\"checksum\":\"") else {
            return false;
        };
        let body = &line[..pos];
        let tail = &line[pos + ",\"checksum\":\"".len()..];
        let Some(hex) = tail.strip_suffix("\"}") else {
            return false;
        };
        u64::from_str_radix(hex, 16).ok() == Some(checksum(body.as_bytes()))
    }

    /// Render a human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            out.push_str(&format!("lint: {} op(s), no findings\n", self.ops));
        } else {
            out.push_str(&format!(
                "lint: {} op(s), {} error(s), {} warning(s), {} info\n",
                self.ops,
                self.count(Severity::Error),
                self.count(Severity::Warning),
                self.count(Severity::Info),
            ));
        }
        for f in &self.findings {
            out.push_str(&format!(
                "  [{}] {} op #{}: {} — {}\n",
                f.code, f.severity, f.index, f.op, f.message
            ));
        }
        if let Some(i) = self.stopped_at {
            out.push_str(&format!(
                "  script stops at op #{i}; the apply pipeline would reject it there\n"
            ));
        }
        if !self.commuting_pairs.is_empty() {
            out.push_str(&format!(
                "  {} adjacent pair(s) commute and may be reordered\n",
                self.commuting_pairs.len()
            ));
        }
        out
    }
}

/// Map one precondition violation to its stable code. `deleted_earlier`
/// refines existence failures: true when the missing name was removed by
/// an earlier operation of the same script (use-after-delete rather than
/// use-before-def).
pub fn code_for(v: &ConstraintViolation, deleted_earlier: bool) -> &'static str {
    match v {
        ConstraintViolation::GeneralizationCycle { .. }
        | ConstraintViolation::HierarchyCycle { .. } => "A005",
        ConstraintViolation::InheritedConflict { .. } => "A006",
        ConstraintViolation::AttributeNotVisible { .. } => "A008",
        ConstraintViolation::SelfLink { .. }
        | ConstraintViolation::NotParentEnd { .. }
        | ConstraintViolation::OrderByOnChildEnd { .. } => "A009",
        _ => match v.category() {
            ConstraintCategory::Existence => {
                if deleted_earlier {
                    "A002"
                } else {
                    "A001"
                }
            }
            ConstraintCategory::Uniqueness => "A003",
            ConstraintCategory::Currency => "A004",
            ConstraintCategory::SemanticStability => "A007",
            // Remaining structural/referential variants are matched above;
            // keep a total mapping for future checker variants.
            ConstraintCategory::Structural => "A005",
            ConstraintCategory::Referential => "A010",
        },
    }
}

/// SplitMix64 streaming checksum — the same construction as
/// `sws_repository::checksum`, restated here so the analysis crate stays
/// free of the I/O layer (a designer test pins the two implementations
/// together).
pub fn checksum(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0x5357_5352_4550_4f31;
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut state = SEED;
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        state = mix(state
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from_le_bytes(word)));
    }
    mix(state ^ bytes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_one_line_with_valid_checksum() {
        let report = LintReport {
            ops: 2,
            findings: vec![Finding {
                index: 1,
                code: "A001",
                severity: Severity::Error,
                op: "delete_type_definition(Ghost)".into(),
                message: "type `Ghost` does not exist".into(),
            }],
            stopped_at: Some(1),
            predicted: None,
            commuting_pairs: vec![(0, 1)],
        };
        let line = report.to_json();
        assert!(!line.contains('\n'));
        assert!(line.starts_with("{\"schema_version\":1,\"ops\":2,\"stopped_at\":1"));
        assert!(LintReport::checksum_valid(&line));
        assert!(!LintReport::checksum_valid(&line.replace("Ghost", "Blast")));
        assert!(sws_trace::export::jsonl::check_value(&line).is_ok());
    }

    #[test]
    fn empty_report_is_clean_and_stable() {
        let line = LintReport::default().to_json();
        assert!(line.contains("\"clean\":true"));
        assert!(line.contains("\"stopped_at\":null"));
        assert!(LintReport::checksum_valid(&line));
    }
}
