//! `sws-analyze` — static analysis for modification-operation scripts.
//!
//! The analyzer is an **abstract interpreter** over op scripts: it tracks
//! the symbolic state a script builds ([`AbsState`], a copy-on-write
//! overlay over the starting [`SchemaGraph`]) without ever mutating a
//! graph, and runs the *executor's own* permission matrix and precondition
//! checker (`sws_core::check_preconditions_view`, generic over
//! `SchemaView`) at every step. That construction makes it **sound against
//! the apply pipeline by design**: the first error the analyzer predicts is
//! the first error `Workspace::apply`/`replay` produces — a property the
//! differential test suite (`tests/differential.rs`) enforces over the
//! whole corpus and randomized scripts, with zero tolerated false
//! negatives.
//!
//! On top of the error prediction the analyzer reports script hygiene:
//! redundant operations, deletes of the script's own creations, dead-store
//! modifies, and which adjacent operations commute ([`commute`]). All
//! diagnostics carry stable codes ([`diag`]) and the report serializes to
//! a single JSON line with a checksum, crash-report style.
//!
//! Cost: O(script) graph-independent work per operation, plus whatever the
//! shared precondition checker reads (extent checks scan live types in the
//! executor too — see `docs/static-analysis.md` for the caveat).
//!
//! Observability: `core.analyze` span; counters `core.analyze.scripts`,
//! `core.analyze.ops`, `core.analyze.findings`,
//! `core.analyze.commuting_pairs`.

#![forbid(unsafe_code)]

pub mod commute;
pub mod diag;
pub mod state;

use std::collections::{HashMap, HashSet};
use sws_core::{
    check_preconditions_view, print_op, ConceptKind, ConstraintViolation, ModOp, OpError,
};
use sws_model::{QueryCache, SchemaGraph, SchemaView};
use sws_odl::OdlError;

pub use commute::{commutes, footprint, Footprint};
pub use diag::{code_for, Finding, LintReport, Severity, SCHEMA_VERSION};
pub use state::AbsState;

/// Analyze a script of `(context, op)` pairs against the `base` working
/// schema, judging semantic stability against `shrink_wrap` — exactly the
/// inputs `Workspace::replay` would consume. Never mutates either graph.
pub fn analyze_ops(
    base: &SchemaGraph,
    shrink_wrap: &SchemaGraph,
    script: &[(ConceptKind, ModOp)],
) -> LintReport {
    let mut sp = sws_trace::span!("core.analyze", ops = script.len());
    sws_trace::counter("core.analyze.scripts", 1);
    let matrix = sws_core::ops::PermissionMatrix::new();
    let qc_shrink = QueryCache::new();
    let mut state = AbsState::new(base);
    let mut report = LintReport {
        ops: script.len(),
        ..LintReport::default()
    };

    // Script-level def/use environment for diagnostic refinement.
    let mut deleted_types: HashSet<String> = HashSet::new();
    let mut deleted_members: HashSet<(String, String)> = HashSet::new();
    let mut created: HashSet<String> = HashSet::new();
    // construct key -> indices of in-place modifies not yet consumed.
    let mut pending_modifies: HashMap<String, Vec<usize>> = HashMap::new();
    let mut footprints = Vec::with_capacity(script.len());
    let mut accepted = 0usize;

    for (i, (context, op)) in script.iter().enumerate() {
        sws_trace::counter("core.analyze.ops", 1);
        if !matrix.allows(*context, op.kind()) {
            report.findings.push(Finding {
                index: i,
                code: "A011",
                severity: Severity::Error,
                op: print_op(op),
                message: format!(
                    "operation `{}` is not permitted in a {} concept schema (Table 1)",
                    op.kind().name(),
                    context.tag()
                ),
            });
            report.stopped_at = Some(i);
            report.predicted = Some(OpError::NotPermitted {
                op: op.kind(),
                context: *context,
            });
            break;
        }
        let violations = check_preconditions_view(op, &state, shrink_wrap, &qc_shrink);
        if !violations.is_empty() {
            for v in &violations {
                let deleted_earlier = match v {
                    ConstraintViolation::UnknownType(n) => deleted_types.contains(n),
                    ConstraintViolation::UnknownMember { ty, member, .. } => {
                        deleted_types.contains(ty)
                            || deleted_members.contains(&(ty.clone(), member.clone()))
                    }
                    _ => false,
                };
                report.findings.push(Finding {
                    index: i,
                    code: code_for(v, deleted_earlier),
                    severity: Severity::Error,
                    op: print_op(op),
                    message: v.to_string(),
                });
            }
            report.stopped_at = Some(i);
            report.predicted = Some(OpError::Violations(violations));
            break;
        }

        // The op is accepted: hygiene warnings, then the state transfer.
        if let Some(msg) = redundant_modify(op) {
            report.findings.push(Finding {
                index: i,
                code: "W101",
                severity: Severity::Warning,
                op: print_op(op),
                message: msg,
            });
        }
        track_script_flow(
            &state,
            op,
            i,
            &mut created,
            &mut deleted_types,
            &mut deleted_members,
            &mut pending_modifies,
            &mut report.findings,
        );
        footprints.push(commute::footprint(op));
        state.transfer(op);
        accepted += 1;
    }

    for i in 1..accepted {
        if commutes(&footprints[i - 1], &footprints[i]) {
            report.commuting_pairs.push((i - 1, i));
        }
    }
    report.findings.sort_by_key(|f| f.index);
    sws_trace::counter("core.analyze.findings", report.findings.len() as u64);
    sws_trace::counter(
        "core.analyze.commuting_pairs",
        report.commuting_pairs.len() as u64,
    );
    sp.record("findings", report.findings.len());
    sp.record("accepted", accepted);
    report
}

/// Parse `src` as an op-language script and analyze it with every
/// statement issued in `context` (the `swsd lint` entry point).
pub fn analyze_script(
    base: &SchemaGraph,
    shrink_wrap: &SchemaGraph,
    context: ConceptKind,
    src: &str,
) -> Result<LintReport, OdlError> {
    let ops = sws_core::parse_script(src)?;
    let script: Vec<(ConceptKind, ModOp)> = ops.into_iter().map(|op| (context, op)).collect();
    Ok(analyze_ops(base, shrink_wrap, &script))
}

/// A modify whose `new` state equals its `old` state is a no-op the script
/// can drop.
fn redundant_modify(op: &ModOp) -> Option<String> {
    let noop = |what: &str| {
        Some(format!(
            "{what}: `new` equals `old`; the operation is a no-op"
        ))
    };
    match op {
        ModOp::ModifySupertype { old, new, .. } => {
            let mut o = old.clone();
            let mut n = new.clone();
            o.sort();
            n.sort();
            (o == n).then(|| "modify_supertype keeps the same supertype set".to_string())
        }
        ModOp::ModifyExtentName { old, new, .. } if old == new => noop("modify_extent_name"),
        ModOp::ModifyKeyList { old, new, .. } if old == new => noop("modify_key_list"),
        ModOp::ModifyAttribute { ty, new_ty, .. } if ty == new_ty => {
            Some("modify_attribute moves the attribute to its current owner".to_string())
        }
        ModOp::ModifyAttributeType { old, new, .. } if old == new => noop("modify_attribute_type"),
        ModOp::ModifyAttributeSize { old, new, .. } if old == new => noop("modify_attribute_size"),
        ModOp::ModifyRelationshipTargetType {
            old_target,
            new_target,
            ..
        }
        | ModOp::ModifyPartOfTargetType {
            old_target,
            new_target,
            ..
        }
        | ModOp::ModifyInstanceOfTargetType {
            old_target,
            new_target,
            ..
        } if old_target == new_target => noop("target-type modify"),
        ModOp::ModifyRelationshipCardinality { old, new, .. } if old == new => {
            noop("modify_relationship_cardinality")
        }
        ModOp::ModifyRelationshipOrderBy { old, new, .. } if old == new => {
            noop("modify_relationship_order_by")
        }
        ModOp::ModifyOperation { ty, new_ty, .. } if ty == new_ty => {
            Some("modify_operation moves the operation to its current owner".to_string())
        }
        ModOp::ModifyOperationReturnType { old, new, .. } if old == new => {
            noop("modify_operation_return_type")
        }
        ModOp::ModifyOperationArgList { old, new, .. } if old == new => {
            noop("modify_operation_arg_list")
        }
        ModOp::ModifyOperationExceptionsRaised { old, new, .. } if old == new => {
            noop("modify_operation_exceptions_raised")
        }
        ModOp::ModifyPartOfCardinality { old, new, .. }
        | ModOp::ModifyInstanceOfCardinality { old, new, .. }
            if old == new =>
        {
            noop("cardinality modify")
        }
        ModOp::ModifyPartOfOrderBy { old, new, .. }
        | ModOp::ModifyInstanceOfOrderBy { old, new, .. }
            if old == new =>
        {
            noop("order-by modify")
        }
        _ => None,
    }
}

/// Track creations, deletions, and in-place modifies across the script:
/// feeds the A002 refinement, W102 (delete of own create), and W103 (a
/// modify whose construct a later op deletes). Runs *before* the state
/// transfer of `op`, so deletions can resolve the constructs they remove
/// (e.g. the inverse end of a relationship) through the still-live state.
#[allow(clippy::too_many_arguments)]
fn track_script_flow(
    state: &AbsState<'_>,
    op: &ModOp,
    i: usize,
    created: &mut HashSet<String>,
    deleted_types: &mut HashSet<String>,
    deleted_members: &mut HashSet<(String, String)>,
    pending_modifies: &mut HashMap<String, Vec<usize>>,
    findings: &mut Vec<Finding>,
) {
    let member_key = |t: &str, m: &str| format!("{t}::{m}");
    let warn_own_create = |key: &str, findings: &mut Vec<Finding>| {
        if created.contains(key) {
            findings.push(Finding {
                index: i,
                code: "W102",
                severity: Severity::Warning,
                op: print_op(op),
                message: format!("deletes `{key}`, which this script itself created"),
            });
        }
    };
    let drain_modifies =
        |key: &str, pending: &mut HashMap<String, Vec<usize>>, findings: &mut Vec<Finding>| {
            if let Some(idxs) = pending.remove(key) {
                for idx in idxs {
                    findings.push(Finding {
                        index: idx,
                        code: "W103",
                        severity: Severity::Warning,
                        op: print_op(op),
                        message: format!(
                            "modifies `{key}`, but op #{i} deletes it later in the same script"
                        ),
                    });
                }
            }
        };
    match op {
        ModOp::AddTypeDefinition { ty } => {
            created.insert(ty.clone());
            deleted_types.remove(ty);
        }
        ModOp::DeleteTypeDefinition { ty } => {
            warn_own_create(ty, findings);
            drain_modifies(ty, pending_modifies, findings);
            // Members and incident edges die with the type.
            if let Some(id) = SchemaView::type_id(state, ty) {
                let node = state.ty(id);
                for &(rid, e) in &node.rel_ends {
                    let far = state.rel(rid).end(1 - e);
                    deleted_members
                        .insert((state.type_name(far.owner).to_string(), far.path.to_string()));
                }
                for &lid in node.parent_links.iter().chain(&node.child_links) {
                    let l = state.link(lid);
                    deleted_members.insert((
                        state.type_name(l.parent).to_string(),
                        l.parent_path.to_string(),
                    ));
                    deleted_members.insert((
                        state.type_name(l.child).to_string(),
                        l.child_path.to_string(),
                    ));
                }
            }
            let prefix = format!("{ty}::");
            let dead_keys: Vec<String> = pending_modifies
                .keys()
                .filter(|k| k.starts_with(&prefix))
                .cloned()
                .collect();
            for k in dead_keys {
                drain_modifies(&k, pending_modifies, findings);
            }
            deleted_types.insert(ty.clone());
        }
        ModOp::AddAttribute { ty, name, .. } | ModOp::AddOperation { ty, name, .. } => {
            created.insert(member_key(ty, name));
            deleted_members.remove(&(ty.clone(), name.clone()));
        }
        ModOp::AddRelationship {
            ty,
            target,
            path,
            inverse_path,
            ..
        }
        | ModOp::AddPartOfRelationship {
            ty,
            target,
            path,
            inverse_path,
            ..
        }
        | ModOp::AddInstanceOfRelationship {
            ty,
            target,
            path,
            inverse_path,
            ..
        } => {
            created.insert(member_key(ty, path));
            created.insert(member_key(target, inverse_path));
            deleted_members.remove(&(ty.clone(), path.clone()));
            deleted_members.remove(&(target.clone(), inverse_path.clone()));
        }
        ModOp::DeleteAttribute { ty, name } | ModOp::DeleteOperation { ty, name } => {
            let key = member_key(ty, name);
            warn_own_create(&key, findings);
            drain_modifies(&key, pending_modifies, findings);
            deleted_members.insert((ty.clone(), name.clone()));
        }
        ModOp::DeleteRelationship { ty, path } => {
            let key = member_key(ty, path);
            warn_own_create(&key, findings);
            drain_modifies(&key, pending_modifies, findings);
            deleted_members.insert((ty.clone(), path.clone()));
            // The inverse end, resolved through the pre-transfer state.
            if let Some(id) = SchemaView::type_id(state, ty) {
                if let Some((rid, e)) = state.find_rel_end(id, path) {
                    let far = state.rel(rid).end(1 - e);
                    let far_ty = state.type_name(far.owner).to_string();
                    let far_path = far.path.to_string();
                    drain_modifies(&member_key(&far_ty, &far_path), pending_modifies, findings);
                    deleted_members.insert((far_ty, far_path));
                }
            }
        }
        ModOp::DeletePartOfRelationship { ty, path }
        | ModOp::DeleteInstanceOfRelationship { ty, path } => {
            let key = member_key(ty, path);
            warn_own_create(&key, findings);
            drain_modifies(&key, pending_modifies, findings);
            deleted_members.insert((ty.clone(), path.clone()));
            let kind = match op {
                ModOp::DeletePartOfRelationship { .. } => sws_odl::HierKind::PartOf,
                _ => sws_odl::HierKind::InstanceOf,
            };
            if let Some(id) = SchemaView::type_id(state, ty) {
                if let Some((lid, _)) = state.find_link(kind, id, path) {
                    let l = state.link(lid);
                    for (t, p) in [(l.parent, l.parent_path), (l.child, l.child_path)] {
                        let tn = state.type_name(t).to_string();
                        drain_modifies(&member_key(&tn, p.as_str()), pending_modifies, findings);
                        deleted_members.insert((tn, p.to_string()));
                    }
                }
            }
        }
        // In-place modifies become dead stores if their construct is later
        // deleted.
        ModOp::ModifyAttributeType { ty, name, .. }
        | ModOp::ModifyAttributeSize { ty, name, .. }
        | ModOp::ModifyOperationReturnType { ty, name, .. }
        | ModOp::ModifyOperationArgList { ty, name, .. }
        | ModOp::ModifyOperationExceptionsRaised { ty, name, .. } => {
            pending_modifies
                .entry(member_key(ty, name))
                .or_default()
                .push(i);
        }
        ModOp::ModifyRelationshipCardinality { ty, path, .. }
        | ModOp::ModifyRelationshipOrderBy { ty, path, .. }
        | ModOp::ModifyPartOfCardinality { ty, path, .. }
        | ModOp::ModifyPartOfOrderBy { ty, path, .. }
        | ModOp::ModifyInstanceOfCardinality { ty, path, .. }
        | ModOp::ModifyInstanceOfOrderBy { ty, path, .. } => {
            pending_modifies
                .entry(member_key(ty, path))
                .or_default()
                .push(i);
        }
        ModOp::AddExtentName { ty, .. }
        | ModOp::ModifyExtentName { ty, .. }
        | ModOp::AddKeyList { ty, .. }
        | ModOp::ModifyKeyList { ty, .. } => {
            pending_modifies.entry(ty.clone()).or_default().push(i);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::schema_to_graph;
    use sws_odl::parse_schema;

    fn dept() -> SchemaGraph {
        let src = r#"
        schema Dept {
            interface Person { attribute string name; }
            interface Employee : Person {
                relationship Department works_in_a inverse Department::has;
            }
            interface Department {
                relationship set<Employee> has inverse Employee::works_in_a;
            }
        }"#;
        schema_to_graph(&parse_schema(src).expect("fixture parses")).expect("fixture lowers")
    }

    fn ww(op: ModOp) -> (ConceptKind, ModOp) {
        (ConceptKind::WagonWheel, op)
    }

    #[test]
    fn clean_script_passes() {
        let g = dept();
        let script = vec![
            ww(ModOp::AddTypeDefinition {
                ty: "Course".into(),
            }),
            ww(ModOp::AddAttribute {
                ty: "Course".into(),
                domain: sws_odl::DomainType::String,
                size: None,
                name: "title".into(),
            }),
        ];
        let report = analyze_ops(&g, &g, &script);
        assert!(report.passes(), "{report:?}");
        assert!(report.is_clean());
    }

    #[test]
    fn use_before_def_is_a001_use_after_delete_is_a002() {
        let g = dept();
        let r = analyze_ops(
            &g,
            &g,
            &[ww(ModOp::DeleteTypeDefinition { ty: "Ghost".into() })],
        );
        assert_eq!(r.findings[0].code, "A001");
        let r = analyze_ops(
            &g,
            &g,
            &[
                ww(ModOp::AddTypeDefinition { ty: "T".into() }),
                ww(ModOp::DeleteTypeDefinition { ty: "T".into() }),
                ww(ModOp::AddAttribute {
                    ty: "T".into(),
                    domain: sws_odl::DomainType::Long,
                    size: None,
                    name: "x".into(),
                }),
            ],
        );
        assert_eq!(r.stopped_at, Some(2));
        assert_eq!(
            r.findings
                .iter()
                .find(|f| f.code == "A002")
                .map(|f| f.index),
            Some(2)
        );
        // ...and the delete-of-own-create warning rides along.
        assert!(r.findings.iter().any(|f| f.code == "W102"));
    }

    #[test]
    fn not_permitted_is_a011_and_stops() {
        let g = dept();
        let r = analyze_ops(
            &g,
            &g,
            &[ww(ModOp::AddSupertype {
                ty: "Department".into(),
                supertype: "Person".into(),
            })],
        );
        assert_eq!(r.stopped_at, Some(0));
        assert_eq!(r.findings[0].code, "A011");
        assert!(matches!(r.predicted, Some(OpError::NotPermitted { .. })));
    }

    #[test]
    fn dead_store_modify_then_delete_is_w103() {
        let g = dept();
        let r = analyze_ops(
            &g,
            &g,
            &[
                ww(ModOp::ModifyAttributeSize {
                    ty: "Person".into(),
                    name: "name".into(),
                    old: None,
                    new: Some(32),
                }),
                ww(ModOp::DeleteAttribute {
                    ty: "Person".into(),
                    name: "name".into(),
                }),
            ],
        );
        assert!(r.passes());
        let w = r.findings.iter().find(|f| f.code == "W103").expect("W103");
        assert_eq!(w.index, 0);
    }

    #[test]
    fn redundant_modify_is_w101() {
        let g = dept();
        let r = analyze_ops(
            &g,
            &g,
            &[ww(ModOp::ModifyAttributeType {
                ty: "Person".into(),
                name: "name".into(),
                old: sws_odl::DomainType::String,
                new: sws_odl::DomainType::String,
            })],
        );
        assert!(r.passes());
        assert_eq!(r.findings[0].code, "W101");
    }

    #[test]
    fn commuting_adjacent_pairs_are_reported() {
        let g = dept();
        let r = analyze_ops(
            &g,
            &g,
            &[
                ww(ModOp::AddTypeDefinition { ty: "A".into() }),
                ww(ModOp::AddTypeDefinition { ty: "B".into() }),
            ],
        );
        assert_eq!(r.commuting_pairs, vec![(0, 1)]);
    }

    #[test]
    fn isa_cycle_is_a005_on_the_abstract_hierarchy() {
        let g = dept();
        // Person under Employee closes a cycle with the existing edge.
        let r = analyze_ops(
            &g,
            &g,
            &[(
                ConceptKind::Generalization,
                ModOp::AddSupertype {
                    ty: "Person".into(),
                    supertype: "Employee".into(),
                },
            )],
        );
        assert_eq!(r.findings[0].code, "A005");
    }
}
