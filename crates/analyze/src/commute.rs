//! Commutation analysis: which adjacent operation pairs are independent.
//!
//! Each operation gets a syntactic *footprint* — the set of schema
//! resources it reads and writes, as string tokens:
//!
//! * `ty:<name>` — existence of a type,
//! * `mem:<ty>::<name>` — one member slot (`mem:<ty>::*` = any member of
//!   the type),
//! * `hier:<name>` — the generalization / aggregation / instance-of
//!   neighbourhood of a type,
//! * `extent:<ty>` / `extname:<name>` / `keys:<ty>` — extent and key state,
//! * `attref:<name>` — by-name references to an attribute from key lists
//!   and order-by lists (pruning is by name, across owners),
//! * `mem:*`, `*` — wildcards for operations whose effect cannot be
//!   bounded syntactically (supertype rewiring re-judges inheritance
//!   everywhere; type deletion cascades arbitrarily).
//!
//! Two operations **commute** when neither's writes intersect the other's
//! reads or writes. The analysis is deliberately *conservative*: a pair
//! marked commuting is claimed safe to reorder; an unmarked pair is merely
//! unproven. Everything here is O(1) per operation — footprints never
//! traverse the graph, which keeps `analyze` O(script).

use std::collections::BTreeSet;
use sws_core::ModOp;
use sws_odl::DomainType;

/// The read/write sets of one operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Resources whose state the op's preconditions or effect depend on.
    pub reads: BTreeSet<String>,
    /// Resources the op changes.
    pub writes: BTreeSet<String>,
}

fn token_match(a: &str, b: &str) -> bool {
    if a == "*" || b == "*" {
        return true;
    }
    if let Some(prefix) = a.strip_suffix('*') {
        if b.starts_with(prefix) {
            return true;
        }
    }
    if let Some(prefix) = b.strip_suffix('*') {
        if a.starts_with(prefix) {
            return true;
        }
    }
    a == b
}

fn sets_conflict(xs: &BTreeSet<String>, ys: &BTreeSet<String>) -> bool {
    xs.iter().any(|x| ys.iter().any(|y| token_match(x, y)))
}

/// True when reordering the two operations provably cannot change the
/// outcome: neither's writes touch the other's reads or writes.
pub fn commutes(a: &Footprint, b: &Footprint) -> bool {
    !sets_conflict(&a.writes, &b.writes)
        && !sets_conflict(&a.writes, &b.reads)
        && !sets_conflict(&b.writes, &a.reads)
}

fn ty(name: &str) -> String {
    format!("ty:{name}")
}

fn mem(owner: &str, name: &str) -> String {
    format!("mem:{owner}::{name}")
}

fn hier(name: &str) -> String {
    format!("hier:{name}")
}

fn attref(name: &str) -> String {
    format!("attref:{name}")
}

fn domain_reads(domain: &DomainType, reads: &mut BTreeSet<String>) {
    let mut refs = Vec::new();
    domain.referenced_types(&mut refs);
    for r in refs {
        reads.insert(ty(r));
    }
}

/// Compute the footprint of one operation. Purely syntactic — see the
/// module docs for the conservatism contract.
pub fn footprint(op: &ModOp) -> Footprint {
    let mut f = Footprint::default();
    match op {
        ModOp::AddTypeDefinition { ty: t } => {
            f.writes.insert(ty(t));
        }
        ModOp::DeleteTypeDefinition { .. } => {
            // Cascades may remove relationships, links, and prune lists
            // anywhere in the schema: unbounded syntactically.
            f.writes.insert("*".into());
        }
        ModOp::AddSupertype { ty: t, supertype } => {
            supertype_footprint(&mut f, t, std::slice::from_ref(supertype), &[]);
        }
        ModOp::DeleteSupertype { ty: t, supertype } => {
            supertype_footprint(&mut f, t, &[], std::slice::from_ref(supertype));
        }
        ModOp::ModifySupertype { ty: t, old, new } => {
            supertype_footprint(&mut f, t, new, old);
        }
        ModOp::AddExtentName { ty: t, extent }
        | ModOp::ModifyExtentName {
            ty: t, new: extent, ..
        } => {
            f.reads.insert(ty(t));
            // Extent names are unique across the schema.
            f.writes.insert(format!("extname:{extent}"));
            f.writes.insert(format!("extent:{t}"));
        }
        ModOp::DeleteExtentName { ty: t, extent } => {
            f.reads.insert(ty(t));
            f.writes.insert(format!("extname:{extent}"));
            f.writes.insert(format!("extent:{t}"));
        }
        ModOp::AddKeyList { ty: t, keys } | ModOp::DeleteKeyList { ty: t, keys } => {
            f.reads.insert(ty(t));
            f.writes.insert(format!("keys:{t}"));
            for key in keys {
                for part in &key.0 {
                    f.reads.insert(attref(part));
                    f.reads.insert(hier(t));
                }
            }
        }
        ModOp::ModifyKeyList { ty: t, old, new } => {
            f.reads.insert(ty(t));
            f.writes.insert(format!("keys:{t}"));
            for key in old.iter().chain(new) {
                for part in &key.0 {
                    f.reads.insert(attref(part));
                    f.reads.insert(hier(t));
                }
            }
        }
        ModOp::AddAttribute {
            ty: t,
            domain,
            name,
            ..
        } => {
            member_add_footprint(&mut f, t, name);
            domain_reads(domain, &mut f.reads);
        }
        ModOp::DeleteAttribute { ty: t, name } => {
            f.reads.insert(ty(t));
            f.writes.insert(mem(t, name));
            f.writes.insert(format!("keys:{t}"));
            // Pruning removes by-name references from order-by lists of
            // relationships and links targeting the owner.
            f.writes.insert(attref(name));
        }
        ModOp::ModifyAttribute {
            ty: t,
            name,
            new_ty,
        } => {
            f.reads.insert(ty(t));
            f.reads.insert(ty(new_ty));
            f.reads.insert(hier(t));
            f.reads.insert(hier(new_ty));
            f.writes.insert(mem(t, name));
            f.writes.insert(mem(new_ty, name));
            f.writes.insert(format!("keys:{t}"));
            f.writes.insert(attref(name));
        }
        ModOp::ModifyAttributeType {
            ty: t, name, new, ..
        } => {
            f.reads.insert(ty(t));
            f.writes.insert(mem(t, name));
            domain_reads(new, &mut f.reads);
        }
        ModOp::ModifyAttributeSize { ty: t, name, .. } => {
            f.reads.insert(ty(t));
            f.writes.insert(mem(t, name));
        }
        ModOp::AddRelationship {
            ty: t,
            target,
            path,
            inverse_path,
            order_by,
            ..
        } => {
            member_add_footprint(&mut f, t, path);
            member_add_footprint(&mut f, target, inverse_path);
            for a in order_by {
                f.reads.insert(attref(a));
            }
        }
        ModOp::DeleteRelationship { ty: t, path } => {
            // The inverse end's owner is not in the statement: the delete
            // may clear a member slot on any type.
            f.reads.insert(ty(t));
            f.writes.insert(mem(t, path));
            f.writes.insert("mem:*".into());
        }
        ModOp::ModifyRelationshipTargetType {
            ty: t,
            path,
            old_target,
            new_target,
        } => {
            f.reads.insert(ty(t));
            f.reads.insert(ty(old_target));
            f.reads.insert(ty(new_target));
            f.reads.insert(hier(old_target));
            f.reads.insert(hier(new_target));
            f.writes.insert(mem(t, path));
            f.writes.insert(format!("mem:{old_target}::*"));
            f.writes.insert(format!("mem:{new_target}::*"));
        }
        ModOp::ModifyRelationshipCardinality { ty: t, path, .. } => {
            f.reads.insert(ty(t));
            f.writes.insert(mem(t, path));
        }
        ModOp::ModifyRelationshipOrderBy {
            ty: t, path, new, ..
        } => {
            f.reads.insert(ty(t));
            f.writes.insert(mem(t, path));
            for a in new {
                f.reads.insert(attref(a));
            }
        }
        ModOp::AddOperation {
            ty: t,
            return_type,
            name,
            args,
            ..
        } => {
            member_add_footprint(&mut f, t, name);
            domain_reads(return_type, &mut f.reads);
            for p in args {
                domain_reads(&p.ty, &mut f.reads);
            }
        }
        ModOp::DeleteOperation { ty: t, name } => {
            f.reads.insert(ty(t));
            f.writes.insert(mem(t, name));
        }
        ModOp::ModifyOperation {
            ty: t,
            name,
            new_ty,
        } => {
            f.reads.insert(ty(t));
            f.reads.insert(ty(new_ty));
            f.reads.insert(hier(t));
            f.reads.insert(hier(new_ty));
            f.writes.insert(mem(t, name));
            f.writes.insert(mem(new_ty, name));
        }
        ModOp::ModifyOperationReturnType {
            ty: t, name, new, ..
        } => {
            f.reads.insert(ty(t));
            f.writes.insert(mem(t, name));
            domain_reads(new, &mut f.reads);
        }
        ModOp::ModifyOperationArgList {
            ty: t, name, new, ..
        } => {
            f.reads.insert(ty(t));
            f.writes.insert(mem(t, name));
            for p in new {
                domain_reads(&p.ty, &mut f.reads);
            }
        }
        ModOp::ModifyOperationExceptionsRaised { ty: t, name, .. } => {
            f.reads.insert(ty(t));
            f.writes.insert(mem(t, name));
        }
        ModOp::AddPartOfRelationship {
            ty: t,
            target,
            path,
            inverse_path,
            order_by,
            ..
        }
        | ModOp::AddInstanceOfRelationship {
            ty: t,
            target,
            path,
            inverse_path,
            order_by,
            ..
        } => {
            member_add_footprint(&mut f, t, path);
            member_add_footprint(&mut f, target, inverse_path);
            f.writes.insert(hier(t));
            f.writes.insert(hier(target));
            for a in order_by {
                f.reads.insert(attref(a));
            }
        }
        ModOp::DeletePartOfRelationship { ty: t, path }
        | ModOp::DeleteInstanceOfRelationship { ty: t, path } => {
            f.reads.insert(ty(t));
            f.writes.insert(mem(t, path));
            f.writes.insert(hier(t));
            f.writes.insert("mem:*".into());
            f.writes.insert("hier:*".into());
        }
        ModOp::ModifyPartOfTargetType {
            ty: t,
            path,
            old_target,
            new_target,
        }
        | ModOp::ModifyInstanceOfTargetType {
            ty: t,
            path,
            old_target,
            new_target,
        } => {
            f.reads.insert(ty(t));
            f.reads.insert(ty(old_target));
            f.reads.insert(ty(new_target));
            f.writes.insert(mem(t, path));
            f.writes.insert(format!("mem:{old_target}::*"));
            f.writes.insert(format!("mem:{new_target}::*"));
            f.writes.insert(hier(t));
            f.writes.insert(hier(old_target));
            f.writes.insert(hier(new_target));
        }
        ModOp::ModifyPartOfCardinality { ty: t, path, .. }
        | ModOp::ModifyInstanceOfCardinality { ty: t, path, .. } => {
            f.reads.insert(ty(t));
            f.writes.insert(mem(t, path));
        }
        ModOp::ModifyPartOfOrderBy {
            ty: t, path, new, ..
        }
        | ModOp::ModifyInstanceOfOrderBy {
            ty: t, path, new, ..
        } => {
            f.reads.insert(ty(t));
            f.writes.insert(mem(t, path));
            for a in new {
                f.reads.insert(attref(a));
            }
        }
    }
    f
}

/// Adding a member to `owner` reads the owner's existence and inheritance
/// neighbourhood (member-free and conflict checks walk it) and writes the
/// member slot.
fn member_add_footprint(f: &mut Footprint, owner: &str, name: &str) {
    f.reads.insert(ty(owner));
    f.reads.insert(hier(owner));
    f.writes.insert(mem(owner, name));
}

/// Supertype rewiring re-judges inheritance conflicts across the whole
/// region below the subtype, so it reads every member slot.
fn supertype_footprint(f: &mut Footprint, sub: &str, added: &[String], removed: &[String]) {
    f.reads.insert(ty(sub));
    f.reads.insert("mem:*".into());
    f.writes.insert(hier(sub));
    for s in added.iter().chain(removed) {
        f.reads.insert(ty(s));
        f.writes.insert(hier(s));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_adds_commute() {
        let a = footprint(&ModOp::AddTypeDefinition { ty: "A".into() });
        let b = footprint(&ModOp::AddTypeDefinition { ty: "B".into() });
        assert!(commutes(&a, &b));
        let c = footprint(&ModOp::AddTypeDefinition { ty: "A".into() });
        assert!(!commutes(&a, &c));
    }

    #[test]
    fn type_delete_conflicts_with_everything() {
        let del = footprint(&ModOp::DeleteTypeDefinition { ty: "A".into() });
        let other = footprint(&ModOp::AddTypeDefinition { ty: "B".into() });
        assert!(!commutes(&del, &other));
    }

    #[test]
    fn attr_delete_conflicts_with_order_by_naming_it() {
        // delete_attribute prunes by-name references; an order-by list that
        // names the attribute must not be reordered across the delete.
        let del = footprint(&ModOp::DeleteAttribute {
            ty: "T".into(),
            name: "a".into(),
        });
        let set = footprint(&ModOp::ModifyRelationshipOrderBy {
            ty: "S".into(),
            path: "p".into(),
            old: vec![],
            new: vec!["a".into()],
        });
        assert!(!commutes(&del, &set));
    }

    #[test]
    fn supertype_rewire_conflicts_with_member_adds() {
        let sup = footprint(&ModOp::AddSupertype {
            ty: "Sub".into(),
            supertype: "Sup".into(),
        });
        let add = footprint(&ModOp::AddAttribute {
            ty: "Other".into(),
            domain: sws_odl::DomainType::Long,
            size: None,
            name: "n".into(),
        });
        assert!(!commutes(&sup, &add));
    }

    #[test]
    fn unrelated_member_ops_commute() {
        let a = footprint(&ModOp::ModifyAttributeSize {
            ty: "A".into(),
            name: "x".into(),
            old: None,
            new: Some(16),
        });
        let b = footprint(&ModOp::DeleteOperation {
            ty: "B".into(),
            name: "f".into(),
        });
        assert!(commutes(&a, &b));
    }
}
