//! `swslint` — source-invariant linter for this workspace.
//!
//! Token-level (not AST-level) checks for invariants the compiler cannot
//! express, run in CI over the whole workspace:
//!
//! - **unwrap**: no bare `.unwrap()` outside test code (`#[cfg(test)]`
//!   modules, `#[test]` fns, `tests/`, `benches/`, the bench and
//!   proptest-shim crates). `.expect("message")` is allowed everywhere.
//! - **trace-names**: every `span!("…")` / `span("…")` / `counter("…")`
//!   name must appear in the `docs/observability.md` table (rows ending in
//!   `*` are prefix wildcards).
//! - **string-keys**: no `…Map<String, …>` in `sws-model`/`sws-core` —
//!   schema names must cross as interned `Symbol`s. A deliberate exception
//!   carries a `// swslint: allow(string-keys): reason` comment.
//! - **repo-io**: inside `crates/repository`, only `src/io.rs` (the
//!   `RepoIo` boundary) and test code may touch `std::fs`.
//! - **forbid-unsafe**: every crate's `lib.rs` must carry
//!   `#![forbid(unsafe_code)]` (or the `cfg_attr` variant for crates with
//!   feature-gated unsafe, e.g. the alloc-stats allocator in `sws-trace`).
//!
//! The scanner masks comments and string literals first (preserving byte
//! offsets), then brace-matches `#[cfg(test)]` / `#[test]` items so rules
//! can exempt test regions precisely — a trailing `#[cfg(test)]` helper in
//! the middle of a file does not exempt the code after it.
//!
//! Exit codes: 0 clean, 8 findings, 5 I/O error.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const EXIT_LINT: u8 = 8;
const EXIT_IO: u8 = 5;

struct Lint {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

/// A source file with comments and string-literal bodies blanked out
/// (offsets preserved), plus the captured string literals.
struct Masked {
    code: Vec<u8>,
    /// `(byte_offset_of_opening_quote, contents)` for each string literal.
    strings: Vec<(usize, String)>,
    /// Sorted byte ranges covered by test-only items.
    test_ranges: Vec<(usize, usize)>,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let root = args.next().map(PathBuf::from).unwrap_or_else(|| ".".into());
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "swslint: {} does not look like a workspace root",
            root.display()
        );
        return ExitCode::from(EXIT_IO);
    }
    let trace_names = match load_trace_table(&root.join("docs/observability.md")) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("swslint: cannot read docs/observability.md: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };

    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    collect_rs(&root.join("src"), &mut files);
    collect_rs(&root.join("tests"), &mut files);
    files.sort();

    let mut lints = Vec::new();
    for path in &files {
        let src = match fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("swslint: cannot read {}: {e}", path.display());
                return ExitCode::from(EXIT_IO);
            }
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        check_file(&rel, &src, &trace_names, &mut lints);
    }
    check_forbid_unsafe(&root, &mut lints);

    if lints.is_empty() {
        println!("swslint: {} file(s), no findings", files.len());
        return ExitCode::SUCCESS;
    }
    lints.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    for l in &lints {
        println!("{}:{}: [{}] {}", l.file, l.line, l.rule, l.message);
    }
    println!(
        "swslint: {} finding(s) in {} file(s)",
        lints.len(),
        files.len()
    );
    ExitCode::from(EXIT_LINT)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Paths whose whole contents are test/bench support: bare unwrap allowed.
fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("crates/bench/")
        || rel.starts_with("crates/proptest-shim/")
}

fn check_file(rel: &str, src: &str, trace_names: &[String], lints: &mut Vec<Lint>) {
    let m = mask(src);
    let line_of = |off: usize| {
        src.as_bytes()[..off]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
            + 1
    };
    let lint = |lints: &mut Vec<Lint>, off: usize, rule: &'static str, message: String| {
        lints.push(Lint {
            file: rel.to_string(),
            line: line_of(off),
            rule,
            message,
        });
    };

    // unwrap -----------------------------------------------------------
    if !is_test_path(rel) {
        for off in find_all(&m.code, b".unwrap()") {
            if !in_ranges(&m.test_ranges, off) {
                lint(
                    lints,
                    off,
                    "unwrap",
                    "bare `.unwrap()` outside test code; use `.expect(\"why this cannot fail\")`"
                        .into(),
                );
            }
        }
    }

    // trace-names ------------------------------------------------------
    // The trace crate itself (macro definitions, doc examples) is exempt.
    if !rel.starts_with("crates/trace/") {
        for &(off, ref s) in &m.strings {
            if !is_trace_name_site(&m.code, off) || in_ranges(&m.test_ranges, off) {
                continue;
            }
            let known = trace_names.iter().any(|t| {
                t.strip_suffix('*')
                    .map_or(t == s, |prefix| s.starts_with(prefix))
            });
            if !known {
                lint(
                    lints,
                    off,
                    "trace-names",
                    format!("trace name `{s}` is not documented in docs/observability.md"),
                );
            }
        }
    }

    // string-keys ------------------------------------------------------
    if rel.starts_with("crates/model/") || rel.starts_with("crates/core/") {
        for off in find_all(&m.code, b"Map<String") {
            if in_ranges(&m.test_ranges, off) {
                continue;
            }
            let line = line_of(off);
            if has_waiver(src, line, "string-keys") {
                continue;
            }
            lint(
                lints,
                off,
                "string-keys",
                "String-keyed map in the Symbol zone; intern the key or add a \
                 `// swslint: allow(string-keys): reason` waiver"
                    .into(),
            );
        }
    }

    // repo-io ----------------------------------------------------------
    if rel.starts_with("crates/repository/") && !rel.ends_with("/io.rs") {
        for off in find_all(&m.code, b"std::fs") {
            if !in_ranges(&m.test_ranges, off) {
                lint(
                    lints,
                    off,
                    "repo-io",
                    "filesystem access outside the RepoIo boundary (src/io.rs)".into(),
                );
            }
        }
    }
}

/// Every crate's `lib.rs` (and the root one) must forbid unsafe code,
/// either unconditionally or behind `cfg_attr` for feature-gated unsafe.
fn check_forbid_unsafe(root: &Path, lints: &mut Vec<Lint>) {
    let mut libs = vec![root.join("src/lib.rs")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let lib = entry.path().join("src/lib.rs");
            if lib.is_file() {
                libs.push(lib);
            }
        }
    }
    libs.sort();
    for lib in libs {
        let Ok(src) = fs::read_to_string(&lib) else {
            continue;
        };
        if !src.contains("forbid(unsafe_code)") {
            lints.push(Lint {
                file: lib
                    .strip_prefix(root)
                    .unwrap_or(&lib)
                    .to_string_lossy()
                    .replace('\\', "/"),
                line: 1,
                rule: "forbid-unsafe",
                message: "crate root is missing `#![forbid(unsafe_code)]` \
                          (or a `cfg_attr` variant for feature-gated unsafe)"
                    .into(),
            });
        }
    }
}

/// Does the code immediately before the string at `off` end with a
/// `span!(` / `span(` / `counter(` call?
fn is_trace_name_site(code: &[u8], off: usize) -> bool {
    let head = &code[..off];
    let trimmed_len = head
        .iter()
        .rposition(|&b| !b.is_ascii_whitespace())
        .map_or(0, |i| i + 1);
    let head = &head[..trimmed_len];
    [&b"span!("[..], &b"span("[..], &b"counter("[..]]
        .iter()
        .any(|pat| head.ends_with(pat))
}

/// `// swslint: allow(rule)` on the same line, or anywhere in the
/// contiguous comment block directly above it, waives a finding.
fn has_waiver(src: &str, line: usize, rule: &str) -> bool {
    let needle = format!("swslint: allow({rule})");
    let lines: Vec<&str> = src.lines().collect();
    let idx = line.saturating_sub(1);
    if lines.get(idx).is_some_and(|l| l.contains(&needle)) {
        return true;
    }
    lines[..idx]
        .iter()
        .rev()
        .take_while(|l| l.trim_start().starts_with("//"))
        .any(|l| l.contains(&needle))
}

fn find_all(haystack: &[u8], needle: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while from + needle.len() <= haystack.len() {
        match haystack[from..]
            .windows(needle.len())
            .position(|w| w == needle)
        {
            Some(p) => {
                out.push(from + p);
                from += p + 1;
            }
            None => break,
        }
    }
    out
}

fn in_ranges(ranges: &[(usize, usize)], off: usize) -> bool {
    ranges.iter().any(|&(s, e)| off >= s && off < e)
}

/// Read the `docs/observability.md` tables: every backticked token in the
/// first cell of a table row is a documented span/counter name (a cell may
/// document several, e.g. `` `ws.ops_applied`, `ws.ops_rejected` ``).
fn load_trace_table(path: &Path) -> Result<Vec<String>, std::io::Error> {
    let doc = fs::read_to_string(path)?;
    let mut names = Vec::new();
    for line in doc.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let Some(cell) = line.trim_start_matches('|').split('|').next() else {
            continue;
        };
        let mut rest = cell.trim();
        while let Some(open) = rest.find('`') {
            let Some(len) = rest[open + 1..].find('`') else {
                break;
            };
            names.push(rest[open + 1..open + 1 + len].to_string());
            rest = &rest[open + len + 2..];
        }
    }
    Ok(names)
}

/// Blank out comments and string/char literal bodies, preserving offsets,
/// capture string literals, and record `#[cfg(test)]` / `#[test]` item
/// ranges by brace matching.
fn mask(src: &str) -> Masked {
    let bytes = src.as_bytes();
    let mut code = bytes.to_vec();
    let mut strings = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    code[i] = b' ';
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                code[i] = b' ';
                code[i + 1] = b' ';
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        code[i + 1] = b' ';
                        i += 1;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        code[i + 1] = b' ';
                        i += 1;
                    }
                    if bytes[i] != b'\n' {
                        code[i] = b' ';
                    }
                    i += 1;
                }
            }
            b'r' | b'b'
                if matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#'))
                    && raw_str_len(&bytes[i..]).is_some() =>
            {
                let len = raw_str_len(&bytes[i..]).expect("checked above");
                for c in code.iter_mut().skip(i + 1).take(len - 1) {
                    if *c != b'\n' {
                        *c = b' ';
                    }
                }
                i += len;
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut lit = String::new();
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' && i + 1 < bytes.len() {
                        lit.push(bytes[i] as char);
                        lit.push(bytes[i + 1] as char);
                        code[i] = b' ';
                        code[i + 1] = b' ';
                        i += 2;
                        continue;
                    }
                    lit.push(bytes[i] as char);
                    if bytes[i] != b'\n' {
                        code[i] = b' ';
                    }
                    i += 1;
                }
                strings.push((start, lit));
                i += 1;
            }
            b'\'' => {
                // Char literal or lifetime. A lifetime has no closing quote
                // nearby; a char literal is 'x' or an escape like '\n'.
                if bytes.get(i + 1) == Some(&b'\\') && bytes.get(i + 3) == Some(&b'\'') {
                    code[i + 1] = b' ';
                    code[i + 2] = b' ';
                    i += 4;
                } else if bytes.get(i + 2) == Some(&b'\'') && bytes.get(i + 1) != Some(&b'\'') {
                    code[i + 1] = b' ';
                    i += 3;
                } else {
                    i += 1; // lifetime
                }
            }
            _ => i += 1,
        }
    }
    let test_ranges = find_test_ranges(&code);
    Masked {
        code,
        strings,
        test_ranges,
    }
}

/// Length of a raw (or raw-byte) string literal starting at `bytes[0]`
/// (which is `r` or `b`), or `None` if this is not one.
fn raw_str_len(bytes: &[u8]) -> Option<usize> {
    let mut j = 0;
    if bytes[0] == b'b' {
        j = 1;
    }
    if bytes.get(j) != Some(&b'r') && j == 1 {
        return None;
    }
    if bytes[0] == b'r' {
        j = 1;
    } else {
        j += 1; // past the 'r' after 'b'
    }
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    while j < bytes.len() {
        if bytes[j..].starts_with(&closer) {
            return Some(j + closer.len());
        }
        j += 1;
    }
    Some(bytes.len())
}

/// Find byte ranges of items annotated `#[test]` or `#[cfg(test)]`-like,
/// by brace matching on masked code. The range runs from the attribute to
/// the item's closing `}` (or terminating `;`).
fn find_test_ranges(code: &[u8]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    for start in find_all(code, b"#[") {
        let Some(close) = code[start..].iter().position(|&b| b == b']') else {
            continue;
        };
        let attr: String = code[start + 2..start + close]
            .iter()
            .map(|&b| b as char)
            .filter(|c| !c.is_whitespace())
            .collect();
        let is_test_attr =
            attr == "test" || attr.starts_with("cfg(test") || attr.starts_with("cfg(all(test");
        if !is_test_attr {
            continue;
        }
        // Walk to the end of the annotated item: the matching `}` of its
        // first block, or a `;` before any block opens.
        let mut j = start + close + 1;
        let mut depth = 0usize;
        let mut end = code.len();
        while j < code.len() {
            match code[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = j + 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        ranges.push((start, end));
    }
    ranges
}
