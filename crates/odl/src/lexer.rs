//! Hand-written lexer for extended ODL (and for the modification-operation
//! language, which shares this token set).
//!
//! Comments: `// line` and `/* block */`. Identifiers are
//! `[A-Za-z_][A-Za-z0-9_]*`; keywords are recognized by the parser, not the
//! lexer, so application names may coincide with soft keywords where
//! unambiguous.

use crate::error::{OdlError, OdlErrorKind, Span};

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Unsigned integer literal.
    Number(u32),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `:`
    Colon,
    /// `::`
    ColonColon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// End of input (synthetic; exactly one, last).
    Eof,
}

impl Token {
    /// A short human-readable rendering for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("`{s}`"),
            Token::Number(n) => format!("`{n}`"),
            Token::LBrace => "`{`".into(),
            Token::RBrace => "`}`".into(),
            Token::LParen => "`(`".into(),
            Token::RParen => "`)`".into(),
            Token::Lt => "`<`".into(),
            Token::Gt => "`>`".into(),
            Token::Colon => "`:`".into(),
            Token::ColonColon => "`::`".into(),
            Token::Semi => "`;`".into(),
            Token::Comma => "`,`".into(),
            Token::Eof => "end of input".into(),
        }
    }
}

/// A token plus the source position where it starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it starts.
    pub span: Span,
}

/// Tokenize `src` fully. The resulting vector always ends with [`Token::Eof`].
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, OdlError> {
    let mut out = Vec::new();
    let mut chars = src.char_indices().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        ($c:expr) => {{
            if $c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }};
    }

    while let Some(&(_, c)) = chars.peek() {
        let span = Span::at(line, col);
        if c.is_whitespace() {
            chars.next();
            bump!(c);
            continue;
        }
        if c == '/' {
            // Possible comment.
            let mut ahead = chars.clone();
            ahead.next();
            match ahead.peek().map(|&(_, c2)| c2) {
                Some('/') => {
                    // Line comment: consume to end of line.
                    for (_, c2) in chars.by_ref() {
                        bump!(c2);
                        if c2 == '\n' {
                            break;
                        }
                    }
                    continue;
                }
                Some('*') => {
                    chars.next();
                    bump!('/');
                    chars.next();
                    bump!('*');
                    let mut closed = false;
                    let mut prev = '\0';
                    for (_, c2) in chars.by_ref() {
                        bump!(c2);
                        if prev == '*' && c2 == '/' {
                            closed = true;
                            break;
                        }
                        prev = c2;
                    }
                    if !closed {
                        return Err(OdlError::new(span, OdlErrorKind::UnterminatedComment));
                    }
                    continue;
                }
                _ => {
                    return Err(OdlError::new(span, OdlErrorKind::UnexpectedChar('/')));
                }
            }
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut ident = String::new();
            while let Some(&(_, c2)) = chars.peek() {
                if c2.is_ascii_alphanumeric() || c2 == '_' {
                    ident.push(c2);
                    chars.next();
                    bump!(c2);
                } else {
                    break;
                }
            }
            out.push(Spanned {
                token: Token::Ident(ident),
                span,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let mut digits = String::new();
            while let Some(&(_, c2)) = chars.peek() {
                if c2.is_ascii_digit() {
                    digits.push(c2);
                    chars.next();
                    bump!(c2);
                } else {
                    break;
                }
            }
            let value: u32 = digits
                .parse()
                .map_err(|_| OdlError::new(span, OdlErrorKind::NumberOverflow(digits.clone())))?;
            out.push(Spanned {
                token: Token::Number(value),
                span,
            });
            continue;
        }
        let token = match c {
            '{' => Token::LBrace,
            '}' => Token::RBrace,
            '(' => Token::LParen,
            ')' => Token::RParen,
            '<' => Token::Lt,
            '>' => Token::Gt,
            ';' => Token::Semi,
            ',' => Token::Comma,
            ':' => {
                chars.next();
                bump!(':');
                if let Some(&(_, ':')) = chars.peek() {
                    chars.next();
                    bump!(':');
                    out.push(Spanned {
                        token: Token::ColonColon,
                        span,
                    });
                } else {
                    out.push(Spanned {
                        token: Token::Colon,
                        span,
                    });
                }
                continue;
            }
            other => return Err(OdlError::new(span, OdlErrorKind::UnexpectedChar(other))),
        };
        chars.next();
        bump!(c);
        out.push(Spanned { token, span });
    }
    out.push(Spanned {
        token: Token::Eof,
        span: Span::at(line, col),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("interface A : B { }"),
            vec![
                Token::Ident("interface".into()),
                Token::Ident("A".into()),
                Token::Colon,
                Token::Ident("B".into()),
                Token::LBrace,
                Token::RBrace,
                Token::Eof
            ]
        );
    }

    #[test]
    fn double_colon_vs_single() {
        assert_eq!(
            toks("A::b : c"),
            vec![
                Token::Ident("A".into()),
                Token::ColonColon,
                Token::Ident("b".into()),
                Token::Colon,
                Token::Ident("c".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_generics() {
        assert_eq!(
            toks("string(32) set<Course>"),
            vec![
                Token::Ident("string".into()),
                Token::LParen,
                Token::Number(32),
                Token::RParen,
                Token::Ident("set".into()),
                Token::Lt,
                Token::Ident("Course".into()),
                Token::Gt,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // c1\n /* multi\nline */ b"),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        let err = tokenize("/* oops").unwrap_err();
        assert_eq!(err.kind, OdlErrorKind::UnterminatedComment);
    }

    #[test]
    fn unexpected_char_errors() {
        let err = tokenize("a % b").unwrap_err();
        assert_eq!(err.kind, OdlErrorKind::UnexpectedChar('%'));
        assert_eq!(err.span, Span::at(1, 3));
    }

    #[test]
    fn number_overflow_errors() {
        let err = tokenize("99999999999999999999").unwrap_err();
        assert!(matches!(err.kind, OdlErrorKind::NumberOverflow(_)));
    }

    #[test]
    fn spans_track_lines() {
        let spanned = tokenize("a\n  b").unwrap();
        assert_eq!(spanned[0].span, Span::at(1, 1));
        assert_eq!(spanned[1].span, Span::at(2, 3));
    }

    #[test]
    fn lone_slash_is_error() {
        assert!(tokenize("a / b").is_err());
    }
}
