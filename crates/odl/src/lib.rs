//! Extended ODMG ODL: the data-definition substrate of the shrink-wrap-schema
//! system.
//!
//! The paper (Delcambre & Langston, 1995) formally defines concept schemas and
//! their modification operations over the ODMG-93 Object Definition Language,
//! *extended* with two relationship kinds absent from the standard Object
//! Model:
//!
//! * the **part-of** (aggregation) relationship, with an implicit 1:N
//!   cardinality between a whole and its components, and
//! * the **instance-of** relationship, with an implicit 1:N cardinality
//!   between a generic specification entity and its instances.
//!
//! This crate provides:
//!
//! * [`ast`] — the abstract syntax tree for extended-ODL schemas,
//! * [`types`] — the domain-type language (primitives, named types, and the
//!   `set`/`list`/`bag`/`array` constructors the paper lists as a future-work
//!   extension),
//! * [`lexer`] and [`parser`] — a hand-written lexer and recursive-descent
//!   parser for the concrete syntax documented in [`parser`],
//! * [`printer`] — a canonical pretty-printer whose output round-trips
//!   through the parser,
//! * [`validate`] — source-level well-formedness checks (name uniqueness,
//!   reference resolution, inverse reciprocity, hierarchy-link cardinality).
//!
//! # Example
//!
//! ```
//! use sws_odl::{parse_schema, printer::print_schema};
//!
//! let src = r#"
//! interface Department {
//!     extent departments;
//!     attribute string(64) name;
//!     relationship set<Employee> has inverse Employee::works_in_a;
//! }
//! interface Employee {
//!     relationship Department works_in_a inverse Department::has;
//! }
//! "#;
//! let schema = parse_schema(src).unwrap();
//! assert_eq!(schema.interfaces.len(), 2);
//! let printed = print_schema(&schema);
//! assert_eq!(sws_odl::parse_schema(&printed).unwrap(), schema);
//! ```
#![forbid(unsafe_code)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod types;
pub mod validate;

pub use ast::{
    Attribute, Cardinality, HierKind, HierLink, Interface, Key, Operation, Param, ParamDir,
    Relationship, Schema,
};
pub use error::{OdlError, OdlErrorKind, Span, MAX_TYPE_NESTING};
pub use parser::{parse_interface, parse_schema};
pub use printer::{print_interface, print_schema};
pub use types::{CollectionKind, DomainType};
pub use validate::{validate_schema, ValidationIssue};
