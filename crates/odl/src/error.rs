//! Error and source-location types shared by the lexer and parser.

use std::fmt;

/// A half-open source region, tracked as 1-based line/column of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// Construct a span at the given position.
    pub fn at(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maximum `set<set<...>>` type-nesting depth the parsers accept. Beyond
/// this the input is hostile or broken, and unguarded recursion would
/// overflow the stack before producing an error.
pub const MAX_TYPE_NESTING: usize = 64;

/// What went wrong while lexing or parsing extended ODL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OdlErrorKind {
    /// A character that can start no token.
    UnexpectedChar(char),
    /// A numeric literal that does not fit in `u32`.
    NumberOverflow(String),
    /// Unterminated block comment.
    UnterminatedComment,
    /// The parser found `found` where it expected `expected`.
    Expected { expected: String, found: String },
    /// Input ended mid-construct.
    UnexpectedEof { expected: String },
    /// A size constraint was attached to a type that does not admit one.
    SizeNotAllowed(String),
    /// Collection/array type nesting exceeded [`MAX_TYPE_NESTING`].
    NestingTooDeep { limit: usize },
}

impl fmt::Display for OdlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OdlErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            OdlErrorKind::NumberOverflow(s) => write!(f, "numeric literal out of range: {s}"),
            OdlErrorKind::UnterminatedComment => f.write_str("unterminated block comment"),
            OdlErrorKind::Expected { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            OdlErrorKind::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            OdlErrorKind::SizeNotAllowed(ty) => {
                write!(f, "type `{ty}` does not admit a size constraint")
            }
            OdlErrorKind::NestingTooDeep { limit } => {
                write!(f, "type nesting deeper than {limit} levels")
            }
        }
    }
}

/// A lex/parse error with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OdlError {
    /// Where the error occurred.
    pub span: Span,
    /// The error itself.
    pub kind: OdlErrorKind,
}

impl OdlError {
    /// Construct an error at a span.
    pub fn new(span: Span, kind: OdlErrorKind) -> Self {
        OdlError { span, kind }
    }
}

impl fmt::Display for OdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ODL error at {}: {}", self.span, self.kind)
    }
}

impl std::error::Error for OdlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = OdlError::new(
            Span::at(3, 7),
            OdlErrorKind::Expected {
                expected: "`;`".into(),
                found: "`}`".into(),
            },
        );
        assert_eq!(e.to_string(), "ODL error at 3:7: expected `;`, found `}`");
        let e = OdlError::new(Span::at(1, 1), OdlErrorKind::UnexpectedChar('%'));
        assert!(e.to_string().contains("unexpected character"));
    }
}
