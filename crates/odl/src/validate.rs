//! Source-level (AST) well-formedness checks for extended-ODL schemas.
//!
//! These checks enforce the paper's standing assumptions (§3.2) at the schema
//! boundary: *uniqueness* (type, relationship, attribute, and operation names
//! identify their constructs) and structural sanity of the extended
//! relationship kinds (reciprocal inverses, the implicit 1:N cardinality of
//! part-of and instance-of). Deeper graph invariants (hierarchy acyclicity,
//! inheritance conflicts) are checked by `sws-model`'s well-formedness pass,
//! which operates on the resolved schema graph.

use crate::ast::{HierKind, HierLink, Interface, Schema};
use std::collections::HashSet;
use std::fmt;

/// One validation finding. All issues are reported; none abort validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationIssue {
    /// Two interfaces share a name.
    DuplicateInterface { name: String },
    /// Two members of one interface share a name.
    DuplicateMember { interface: String, member: String },
    /// Two extents share a name.
    DuplicateExtent { name: String },
    /// A supertype reference does not resolve.
    UnknownSupertype {
        interface: String,
        supertype: String,
    },
    /// A relationship / part-of / instance-of target does not resolve.
    UnknownTarget {
        interface: String,
        path: String,
        target: String,
    },
    /// A key references a missing attribute.
    UnknownKeyAttribute {
        interface: String,
        attribute: String,
    },
    /// An order-by list references an attribute missing on the target type.
    UnknownOrderByAttribute {
        interface: String,
        path: String,
        attribute: String,
    },
    /// The declared inverse does not exist on the target type.
    MissingInverse {
        interface: String,
        path: String,
        target: String,
        inverse: String,
    },
    /// The declared inverse exists but does not point back at this path.
    InverseMismatch {
        interface: String,
        path: String,
        target: String,
        inverse: String,
    },
    /// Both ends of a part-of / instance-of link are collection-valued (or
    /// both single-valued), violating the implicit 1:N cardinality.
    BadHierCardinality {
        kind: HierKind,
        interface: String,
        path: String,
    },
    /// An attribute's domain references a type missing from the schema.
    UnknownAttributeType {
        interface: String,
        attribute: String,
        target: String,
    },
    /// An interface is (transitively) its own supertype.
    SupertypeCycle { interface: String },
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationIssue::DuplicateInterface { name } => {
                write!(f, "duplicate interface name `{name}`")
            }
            ValidationIssue::DuplicateMember { interface, member } => {
                write!(f, "duplicate member `{member}` in interface `{interface}`")
            }
            ValidationIssue::DuplicateExtent { name } => {
                write!(f, "duplicate extent name `{name}`")
            }
            ValidationIssue::UnknownSupertype { interface, supertype } => {
                write!(f, "interface `{interface}` names unknown supertype `{supertype}`")
            }
            ValidationIssue::UnknownTarget { interface, path, target } => write!(
                f,
                "`{interface}::{path}` targets unknown type `{target}`"
            ),
            ValidationIssue::UnknownKeyAttribute { interface, attribute } => write!(
                f,
                "key of `{interface}` references missing attribute `{attribute}`"
            ),
            ValidationIssue::UnknownOrderByAttribute { interface, path, attribute } => write!(
                f,
                "`{interface}::{path}` orders by missing target attribute `{attribute}`"
            ),
            ValidationIssue::MissingInverse { interface, path, target, inverse } => write!(
                f,
                "`{interface}::{path}` declares inverse `{target}::{inverse}`, which does not exist"
            ),
            ValidationIssue::InverseMismatch { interface, path, target, inverse } => write!(
                f,
                "`{interface}::{path}` declares inverse `{target}::{inverse}`, which does not point back"
            ),
            ValidationIssue::BadHierCardinality { kind, interface, path } => write!(
                f,
                "{kind} link `{interface}::{path}` violates the implicit 1:N cardinality"
            ),
            ValidationIssue::UnknownAttributeType { interface, attribute, target } => write!(
                f,
                "attribute `{interface}::{attribute}` references unknown type `{target}`"
            ),
            ValidationIssue::SupertypeCycle { interface } => {
                write!(f, "interface `{interface}` participates in a supertype cycle")
            }
        }
    }
}

/// Validate a schema, returning every issue found (empty = well-formed).
pub fn validate_schema(schema: &Schema) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();
    let mut names: HashSet<&str> = HashSet::new();
    for iface in &schema.interfaces {
        if !names.insert(&iface.name) {
            issues.push(ValidationIssue::DuplicateInterface {
                name: iface.name.clone(),
            });
        }
    }

    let mut extents: HashSet<&str> = HashSet::new();
    for iface in &schema.interfaces {
        if let Some(extent) = &iface.extent {
            if !extents.insert(extent) {
                issues.push(ValidationIssue::DuplicateExtent {
                    name: extent.clone(),
                });
            }
        }
        check_members(schema, iface, &names, &mut issues);
    }

    for iface in &schema.interfaces {
        if has_supertype_cycle(schema, &iface.name) {
            issues.push(ValidationIssue::SupertypeCycle {
                interface: iface.name.clone(),
            });
        }
    }
    issues
}

fn check_members(
    schema: &Schema,
    iface: &Interface,
    known: &HashSet<&str>,
    issues: &mut Vec<ValidationIssue>,
) {
    let mut members: HashSet<&str> = HashSet::new();
    for m in iface.member_names() {
        if !members.insert(m) {
            issues.push(ValidationIssue::DuplicateMember {
                interface: iface.name.clone(),
                member: m.to_string(),
            });
        }
    }

    for st in &iface.supertypes {
        if !known.contains(st.as_str()) {
            issues.push(ValidationIssue::UnknownSupertype {
                interface: iface.name.clone(),
                supertype: st.clone(),
            });
        }
    }

    for key in &iface.keys {
        for attr in &key.0 {
            if iface.attribute(attr).is_none() {
                issues.push(ValidationIssue::UnknownKeyAttribute {
                    interface: iface.name.clone(),
                    attribute: attr.clone(),
                });
            }
        }
    }

    for attr in &iface.attributes {
        let mut refs = Vec::new();
        attr.ty.referenced_types(&mut refs);
        for target in refs {
            if !known.contains(target) {
                issues.push(ValidationIssue::UnknownAttributeType {
                    interface: iface.name.clone(),
                    attribute: attr.name.clone(),
                    target: target.to_string(),
                });
            }
        }
    }

    for rel in &iface.relationships {
        check_link(
            schema,
            iface,
            &rel.path,
            &rel.target,
            &rel.inverse_path,
            &rel.order_by,
            None,
            known,
            issues,
            |other, path| {
                other
                    .relationship(path)
                    .map(|r| (r.target.clone(), r.inverse_path.clone()))
            },
        );
    }
    for link in &iface.part_ofs {
        check_link(
            schema,
            iface,
            &link.path,
            &link.target,
            &link.inverse_path,
            &link.order_by,
            Some((HierKind::PartOf, link)),
            known,
            issues,
            |other, path| {
                other
                    .part_of(path)
                    .map(|r| (r.target.clone(), r.inverse_path.clone()))
            },
        );
    }
    for link in &iface.instance_ofs {
        check_link(
            schema,
            iface,
            &link.path,
            &link.target,
            &link.inverse_path,
            &link.order_by,
            Some((HierKind::InstanceOf, link)),
            known,
            issues,
            |other, path| {
                other
                    .instance_of(path)
                    .map(|r| (r.target.clone(), r.inverse_path.clone()))
            },
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn check_link(
    schema: &Schema,
    iface: &Interface,
    path: &str,
    target: &str,
    inverse_path: &str,
    order_by: &[String],
    hier: Option<(HierKind, &HierLink)>,
    known: &HashSet<&str>,
    issues: &mut Vec<ValidationIssue>,
    lookup: impl Fn(&Interface, &str) -> Option<(String, String)>,
) {
    if !known.contains(target) {
        issues.push(ValidationIssue::UnknownTarget {
            interface: iface.name.clone(),
            path: path.to_string(),
            target: target.to_string(),
        });
        return;
    }
    let other = schema.interface(target).expect("target known");
    match lookup(other, inverse_path) {
        None => issues.push(ValidationIssue::MissingInverse {
            interface: iface.name.clone(),
            path: path.to_string(),
            target: target.to_string(),
            inverse: inverse_path.to_string(),
        }),
        Some((back_target, back_inverse)) => {
            if back_target != iface.name || back_inverse != path {
                issues.push(ValidationIssue::InverseMismatch {
                    interface: iface.name.clone(),
                    path: path.to_string(),
                    target: target.to_string(),
                    inverse: inverse_path.to_string(),
                });
            } else if let Some((kind, link)) = hier {
                // Exactly one side of a 1:N hierarchy link may be Many.
                let other_link = match kind {
                    HierKind::PartOf => other.part_of(inverse_path),
                    HierKind::InstanceOf => other.instance_of(inverse_path),
                };
                if let Some(other_link) = other_link {
                    let manys = usize::from(link.cardinality.is_many())
                        + usize::from(other_link.cardinality.is_many());
                    if manys != 1 {
                        issues.push(ValidationIssue::BadHierCardinality {
                            kind,
                            interface: iface.name.clone(),
                            path: path.to_string(),
                        });
                    }
                }
            }
        }
    }
    for attr in order_by {
        if other.attribute(attr).is_none() {
            issues.push(ValidationIssue::UnknownOrderByAttribute {
                interface: iface.name.clone(),
                path: path.to_string(),
                attribute: attr.clone(),
            });
        }
    }
}

fn has_supertype_cycle(schema: &Schema, start: &str) -> bool {
    // DFS from `start` through supertype links looking for `start` again.
    let mut stack: Vec<&str> = vec![start];
    let mut seen: HashSet<&str> = HashSet::new();
    while let Some(current) = stack.pop() {
        if let Some(iface) = schema.interface(current) {
            for st in &iface.supertypes {
                if st == start {
                    return true;
                }
                if seen.insert(st) {
                    stack.push(st);
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_schema;

    fn issues(src: &str) -> Vec<ValidationIssue> {
        validate_schema(&parse_schema(src).unwrap())
    }

    #[test]
    fn clean_schema_has_no_issues() {
        let src = r#"
        interface Department {
            extent departments;
            attribute string name;
            keys name;
            relationship set<Employee> has inverse Employee::works_in_a order_by (badge);
        }
        interface Employee {
            attribute long badge;
            relationship Department works_in_a inverse Department::has;
        }"#;
        assert!(issues(src).is_empty());
    }

    #[test]
    fn duplicate_interface_detected() {
        let found = issues("interface A { } interface A { }");
        assert!(found
            .iter()
            .any(|i| matches!(i, ValidationIssue::DuplicateInterface { name } if name == "A")));
    }

    #[test]
    fn duplicate_member_detected() {
        let found = issues("interface A { attribute long x; attribute string x; }");
        assert!(found.iter().any(
            |i| matches!(i, ValidationIssue::DuplicateMember { member, .. } if member == "x")
        ));
    }

    #[test]
    fn duplicate_extent_detected() {
        let found = issues("interface A { extent things; } interface B { extent things; }");
        assert!(found
            .iter()
            .any(|i| matches!(i, ValidationIssue::DuplicateExtent { .. })));
    }

    #[test]
    fn unknown_supertype_detected() {
        let found = issues("interface A : Ghost { }");
        assert!(found.iter().any(
            |i| matches!(i, ValidationIssue::UnknownSupertype { supertype, .. } if supertype == "Ghost")
        ));
    }

    #[test]
    fn unknown_target_detected() {
        let found = issues("interface A { relationship Ghost r inverse Ghost::x; }");
        assert!(found
            .iter()
            .any(|i| matches!(i, ValidationIssue::UnknownTarget { .. })));
    }

    #[test]
    fn missing_inverse_detected() {
        let found = issues("interface A { relationship B r inverse B::x; } interface B { }");
        assert!(found
            .iter()
            .any(|i| matches!(i, ValidationIssue::MissingInverse { .. })));
    }

    #[test]
    fn inverse_mismatch_detected() {
        let found = issues(
            "interface A { relationship B r inverse B::x; } \
             interface B { relationship A x inverse A::other; } ",
        );
        // B::x points back to A::other, not A::r — and A has no `other`.
        assert!(found
            .iter()
            .any(|i| matches!(i, ValidationIssue::InverseMismatch { .. })));
    }

    #[test]
    fn key_over_missing_attribute_detected() {
        let found = issues("interface A { keys nope; }");
        assert!(found
            .iter()
            .any(|i| matches!(i, ValidationIssue::UnknownKeyAttribute { .. })));
    }

    #[test]
    fn order_by_missing_attribute_detected() {
        let found = issues(
            "interface A { relationship set<B> rs inverse B::a order_by (ghost); } \
             interface B { relationship A a inverse A::rs; }",
        );
        assert!(found
            .iter()
            .any(|i| matches!(i, ValidationIssue::UnknownOrderByAttribute { .. })));
    }

    #[test]
    fn bad_hier_cardinality_detected() {
        // Both ends single-valued: not 1:N.
        let found = issues(
            "interface Whole { part_of Part p inverse Part::w; } \
             interface Part { part_of Whole w inverse Whole::p; }",
        );
        assert!(found.iter().any(|i| matches!(
            i,
            ValidationIssue::BadHierCardinality {
                kind: HierKind::PartOf,
                ..
            }
        )));
    }

    #[test]
    fn good_hier_cardinality_accepted() {
        let found = issues(
            "interface Whole { part_of set<Part> ps inverse Part::w; } \
             interface Part { part_of Whole w inverse Whole::ps; }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn supertype_cycle_detected() {
        let found = issues("interface A : B { } interface B : A { }");
        assert!(found
            .iter()
            .any(|i| matches!(i, ValidationIssue::SupertypeCycle { .. })));
    }

    #[test]
    fn unknown_attribute_type_detected() {
        let found = issues("interface A { attribute set<Ghost> gs; }");
        assert!(found
            .iter()
            .any(|i| matches!(i, ValidationIssue::UnknownAttributeType { .. })));
    }

    #[test]
    fn issues_have_readable_display() {
        for issue in issues("interface A : Ghost { attribute long x; attribute long x; }") {
            assert!(!issue.to_string().is_empty());
        }
    }
}
