//! The domain-type language of extended ODL.
//!
//! Attribute domains, operation return types, and operation parameters range
//! over this type language. It contains the ODMG atomic literal types, named
//! object-type references, and the object-oriented type constructors
//! (`set<>`, `list<>`, `bag<>`, `array<,>`). The constructors are listed by
//! the paper (§5, extensions) as a desirable addition to the data model; we
//! include them so that complex objects can be modelled.

use std::fmt;

/// The collection constructors usable both in attribute domains and on the
/// "many" side of relationships.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CollectionKind {
    /// Unordered, no duplicates.
    Set,
    /// Ordered, duplicates allowed.
    List,
    /// Unordered, duplicates allowed.
    Bag,
}

impl CollectionKind {
    /// The ODL keyword for this constructor.
    pub fn keyword(self) -> &'static str {
        match self {
            CollectionKind::Set => "set",
            CollectionKind::List => "list",
            CollectionKind::Bag => "bag",
        }
    }

    /// All collection kinds, in canonical order.
    pub const ALL: [CollectionKind; 3] = [
        CollectionKind::Set,
        CollectionKind::List,
        CollectionKind::Bag,
    ];
}

impl fmt::Display for CollectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A domain type: the type of an attribute, operation return, or parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DomainType {
    /// `boolean`
    Bool,
    /// `short` (16-bit signed)
    Short,
    /// `long` (32-bit signed)
    Long,
    /// `unsigned_short`
    UShort,
    /// `unsigned_long`
    ULong,
    /// `float`
    Float,
    /// `double`
    Double,
    /// `char`
    Char,
    /// `octet`
    Octet,
    /// `string` — the size, when constrained, is carried on the attribute
    /// (the paper's Table 2/3 treat *size* as a separate ODL candidate with
    /// its own `modify_attribute_size` operation).
    String,
    /// `date`
    Date,
    /// `time`
    Time,
    /// `timestamp`
    Timestamp,
    /// `void` — only meaningful as an operation return type.
    Void,
    /// A reference to a named object type (interface) or enum.
    Named(String),
    /// A collection of element type, e.g. `set<string>`.
    Collection(CollectionKind, Box<DomainType>),
    /// `array<T, n>`
    Array(Box<DomainType>, u32),
}

impl DomainType {
    /// Construct a named type reference.
    pub fn named(name: impl Into<String>) -> Self {
        DomainType::Named(name.into())
    }

    /// Construct a `set<elem>` type.
    pub fn set_of(elem: DomainType) -> Self {
        DomainType::Collection(CollectionKind::Set, Box::new(elem))
    }

    /// Construct a `list<elem>` type.
    pub fn list_of(elem: DomainType) -> Self {
        DomainType::Collection(CollectionKind::List, Box::new(elem))
    }

    /// Construct a `bag<elem>` type.
    pub fn bag_of(elem: DomainType) -> Self {
        DomainType::Collection(CollectionKind::Bag, Box::new(elem))
    }

    /// True if this is an atomic (non-constructed, non-named) literal type.
    pub fn is_atomic(&self) -> bool {
        !matches!(
            self,
            DomainType::Named(_) | DomainType::Collection(..) | DomainType::Array(..)
        )
    }

    /// True if a `(size)` constraint is meaningful for this type. The ODL
    /// grammar only attaches sizes to `string` and `char` attributes.
    pub fn admits_size(&self) -> bool {
        matches!(self, DomainType::String | DomainType::Char)
    }

    /// The names of all object types referenced (transitively) by this type.
    pub fn referenced_types<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            DomainType::Named(n) => out.push(n),
            DomainType::Collection(_, elem) | DomainType::Array(elem, _) => {
                elem.referenced_types(out)
            }
            _ => {}
        }
    }

    /// Visit the names of all object types referenced (transitively) by
    /// this type, without collecting. The allocation-free counterpart of
    /// [`DomainType::referenced_types`], used by the steady-state
    /// consistency recheck.
    pub fn for_each_named_ref(&self, f: &mut impl FnMut(&str)) {
        match self {
            DomainType::Named(n) => f(n),
            DomainType::Collection(_, elem) | DomainType::Array(elem, _) => {
                elem.for_each_named_ref(f)
            }
            _ => {}
        }
    }

    /// Parse a primitive keyword, if `word` names one.
    pub fn from_keyword(word: &str) -> Option<DomainType> {
        Some(match word {
            "boolean" => DomainType::Bool,
            "short" => DomainType::Short,
            "long" => DomainType::Long,
            "unsigned_short" => DomainType::UShort,
            "unsigned_long" => DomainType::ULong,
            "float" => DomainType::Float,
            "double" => DomainType::Double,
            "char" => DomainType::Char,
            "octet" => DomainType::Octet,
            "string" => DomainType::String,
            "date" => DomainType::Date,
            "time" => DomainType::Time,
            "timestamp" => DomainType::Timestamp,
            "void" => DomainType::Void,
            _ => return None,
        })
    }
}

impl fmt::Display for DomainType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainType::Bool => f.write_str("boolean"),
            DomainType::Short => f.write_str("short"),
            DomainType::Long => f.write_str("long"),
            DomainType::UShort => f.write_str("unsigned_short"),
            DomainType::ULong => f.write_str("unsigned_long"),
            DomainType::Float => f.write_str("float"),
            DomainType::Double => f.write_str("double"),
            DomainType::Char => f.write_str("char"),
            DomainType::Octet => f.write_str("octet"),
            DomainType::String => f.write_str("string"),
            DomainType::Date => f.write_str("date"),
            DomainType::Time => f.write_str("time"),
            DomainType::Timestamp => f.write_str("timestamp"),
            DomainType::Void => f.write_str("void"),
            DomainType::Named(n) => f.write_str(n),
            DomainType::Collection(kind, elem) => write!(f, "{kind}<{elem}>"),
            DomainType::Array(elem, n) => write!(f, "array<{elem}, {n}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            "boolean",
            "short",
            "long",
            "unsigned_short",
            "unsigned_long",
            "float",
            "double",
            "char",
            "octet",
            "string",
            "date",
            "time",
            "timestamp",
            "void",
        ] {
            let ty = DomainType::from_keyword(kw).unwrap();
            assert_eq!(ty.to_string(), kw);
        }
        assert_eq!(DomainType::from_keyword("Person"), None);
    }

    #[test]
    fn display_constructed() {
        let t = DomainType::set_of(DomainType::named("Course"));
        assert_eq!(t.to_string(), "set<Course>");
        let t = DomainType::Array(Box::new(DomainType::Double), 3);
        assert_eq!(t.to_string(), "array<double, 3>");
        let t = DomainType::list_of(DomainType::bag_of(DomainType::String));
        assert_eq!(t.to_string(), "list<bag<string>>");
    }

    #[test]
    fn referenced_types_walks_nesting() {
        let t = DomainType::list_of(DomainType::Array(Box::new(DomainType::named("Widget")), 4));
        let mut out = Vec::new();
        t.referenced_types(&mut out);
        assert_eq!(out, vec!["Widget"]);
        let mut out = Vec::new();
        DomainType::Long.referenced_types(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn size_admissibility() {
        assert!(DomainType::String.admits_size());
        assert!(DomainType::Char.admits_size());
        assert!(!DomainType::Long.admits_size());
        assert!(!DomainType::named("Person").admits_size());
    }

    #[test]
    fn atomicity() {
        assert!(DomainType::Float.is_atomic());
        assert!(!DomainType::named("X").is_atomic());
        assert!(!DomainType::set_of(DomainType::Long).is_atomic());
    }
}
