//! Abstract syntax for extended-ODL schemas.
//!
//! The shape of these types mirrors the *candidates for modification*
//! enumerated in Tables 2 and 3 of the paper: an interface definition carries
//! type properties (supertypes, extent name, key list) and instance
//! properties (attributes, relationships, operations), plus the two extended
//! relationship kinds (part-of and instance-of).

use crate::types::{CollectionKind, DomainType};
use std::fmt;

/// A complete extended-ODL schema: a named collection of interface
/// definitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Schema (module) name.
    pub name: String,
    /// The interface definitions, in source order.
    pub interfaces: Vec<Interface>,
}

impl Schema {
    /// Create an empty schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Schema {
            name: name.into(),
            interfaces: Vec::new(),
        }
    }

    /// Find an interface by name.
    pub fn interface(&self, name: &str) -> Option<&Interface> {
        self.interfaces.iter().find(|i| i.name == name)
    }

    /// Find an interface by name, mutably.
    pub fn interface_mut(&mut self, name: &str) -> Option<&mut Interface> {
        self.interfaces.iter_mut().find(|i| i.name == name)
    }

    /// Total number of constructs (interfaces, attributes, relationships,
    /// operations, part-of links, instance-of links, supertype links). Used
    /// by the case-study reuse metrics.
    pub fn construct_count(&self) -> usize {
        self.interfaces
            .iter()
            .map(|i| {
                1 + i.supertypes.len()
                    + i.attributes.len()
                    + i.relationships.len()
                    + i.operations.len()
                    + i.part_ofs.len()
                    + i.instance_ofs.len()
            })
            .sum()
    }
}

/// One interface (object type) definition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Interface {
    /// The type name (unique across the schema, per the paper's uniqueness
    /// assumption).
    pub name: String,
    /// `true` for abstract supertypes (e.g. the single root synthesized when
    /// normalizing a multi-root generalization hierarchy, §3.2).
    pub is_abstract: bool,
    /// Names of direct supertypes (the ISA type property).
    pub supertypes: Vec<String>,
    /// Extent name, if declared.
    pub extent: Option<String>,
    /// Key list: each key is one or more attribute names (compound keys).
    pub keys: Vec<Key>,
    /// Attribute instance properties.
    pub attributes: Vec<Attribute>,
    /// Ordinary (association) relationships.
    pub relationships: Vec<Relationship>,
    /// Operation signatures.
    pub operations: Vec<Operation>,
    /// Part-of (aggregation) links in which this type participates, stated
    /// from this type's side.
    pub part_ofs: Vec<HierLink>,
    /// Instance-of links in which this type participates, stated from this
    /// type's side.
    pub instance_ofs: Vec<HierLink>,
}

impl Interface {
    /// Create an empty interface with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Interface {
            name: name.into(),
            ..Interface::default()
        }
    }

    /// Find an attribute by name.
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Find a relationship by traversal path name.
    pub fn relationship(&self, path: &str) -> Option<&Relationship> {
        self.relationships.iter().find(|r| r.path == path)
    }

    /// Find an operation by name.
    pub fn operation(&self, name: &str) -> Option<&Operation> {
        self.operations.iter().find(|o| o.name == name)
    }

    /// Find a part-of link by traversal path name.
    pub fn part_of(&self, path: &str) -> Option<&HierLink> {
        self.part_ofs.iter().find(|h| h.path == path)
    }

    /// Find an instance-of link by traversal path name.
    pub fn instance_of(&self, path: &str) -> Option<&HierLink> {
        self.instance_ofs.iter().find(|h| h.path == path)
    }

    /// All member (instance-property + hierarchy-link) names, for uniqueness
    /// checking.
    pub fn member_names(&self) -> impl Iterator<Item = &str> {
        self.attributes
            .iter()
            .map(|a| a.name.as_str())
            .chain(self.relationships.iter().map(|r| r.path.as_str()))
            .chain(self.operations.iter().map(|o| o.name.as_str()))
            .chain(self.part_ofs.iter().map(|h| h.path.as_str()))
            .chain(self.instance_ofs.iter().map(|h| h.path.as_str()))
    }
}

/// A key: one or more attribute names. Single-attribute keys print without
/// parentheses; compound keys print as `(a, b)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Key(pub Vec<String>);

impl Key {
    /// A single-attribute key.
    pub fn single(attr: impl Into<String>) -> Self {
        Key(vec![attr.into()])
    }

    /// A compound key over the given attributes.
    pub fn compound<I: IntoIterator<Item = S>, S: Into<String>>(attrs: I) -> Self {
        Key(attrs.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.len() == 1 {
            f.write_str(&self.0[0])
        } else {
            write!(f, "({})", self.0.join(", "))
        }
    }
}

/// An attribute: `attribute <type>[(size)] <name>;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Domain type.
    pub ty: DomainType,
    /// Optional size constraint (meaningful for `string`/`char`). The paper
    /// treats size as an independently modifiable ODL candidate
    /// (`modify_attribute_size`).
    pub size: Option<u32>,
}

impl Attribute {
    /// Construct an attribute with no size constraint.
    pub fn new(name: impl Into<String>, ty: DomainType) -> Self {
        Attribute {
            name: name.into(),
            ty,
            size: None,
        }
    }

    /// Construct a sized attribute (e.g. `string(32)`).
    pub fn sized(name: impl Into<String>, ty: DomainType, size: u32) -> Self {
        Attribute {
            name: name.into(),
            ty,
            size: Some(size),
        }
    }
}

/// The one-way cardinality of a relationship end: either a single target or
/// a collection of targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cardinality {
    /// At most one target object.
    One,
    /// Many target objects held in the given collection kind.
    Many(CollectionKind),
}

impl Cardinality {
    /// True for the `Many` variant.
    pub fn is_many(self) -> bool {
        matches!(self, Cardinality::Many(_))
    }
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cardinality::One => f.write_str("one"),
            Cardinality::Many(kind) => write!(f, "many({kind})"),
        }
    }
}

/// An (association) relationship stated from one side:
///
/// ```text
/// relationship set<Person> has inverse Person::works_in_a order_by (name);
/// ```
///
/// The paper's ODL candidates for a relationship are: target type, traversal
/// path name, inverse path name, one-way cardinality, and order-by list —
/// each independently modifiable (Table 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relationship {
    /// Traversal path name (this side).
    pub path: String,
    /// Target type name.
    pub target: String,
    /// One-way cardinality of this side.
    pub cardinality: Cardinality,
    /// Inverse traversal path name, declared as `Target::inverse_path`.
    pub inverse_path: String,
    /// Attributes of the target by which a `Many` side is ordered.
    pub order_by: Vec<String>,
}

/// Which hierarchy a [`HierLink`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HierKind {
    /// Part-of (aggregation): whole ↔ components, implicit 1:N.
    PartOf,
    /// Instance-of: generic specification ↔ instances, implicit 1:N.
    InstanceOf,
}

impl HierKind {
    /// The ODL keyword introducing links of this kind.
    pub fn keyword(self) -> &'static str {
        match self {
            HierKind::PartOf => "part_of",
            HierKind::InstanceOf => "instance_of",
        }
    }

    /// Human-readable name used in diagnostics.
    pub fn noun(self) -> &'static str {
        match self {
            HierKind::PartOf => "part-of",
            HierKind::InstanceOf => "instance-of",
        }
    }
}

impl fmt::Display for HierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.noun())
    }
}

/// One side of a part-of or instance-of link.
///
/// Both kinds have an implicit 1:N cardinality: the *parent* side (the whole,
/// or the generic entity) holds a collection of children; the *child* side
/// (the component, or the instance entity) holds a single parent. Which side
/// a given `HierLink` states is therefore recoverable from its cardinality:
/// `Many` ⇒ parent side, `One` ⇒ child side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierLink {
    /// Traversal path name (this side).
    pub path: String,
    /// Target type name.
    pub target: String,
    /// One-way cardinality of this side (`Many` on the parent side only).
    pub cardinality: Cardinality,
    /// Inverse traversal path name.
    pub inverse_path: String,
    /// Order-by attribute list (only allowed on the `Many` side).
    pub order_by: Vec<String>,
}

impl HierLink {
    /// True if this link is stated from the parent (whole / generic) side.
    pub fn is_parent_side(&self) -> bool {
        self.cardinality.is_many()
    }
}

/// Parameter passing direction for operation arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamDir {
    /// `in`
    In,
    /// `out`
    Out,
    /// `inout`
    InOut,
}

impl ParamDir {
    /// The ODL keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            ParamDir::In => "in",
            ParamDir::Out => "out",
            ParamDir::InOut => "inout",
        }
    }
}

/// One operation parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Passing direction.
    pub direction: ParamDir,
    /// Parameter type.
    pub ty: DomainType,
    /// Parameter name.
    pub name: String,
}

impl Param {
    /// An `in` parameter.
    pub fn input(name: impl Into<String>, ty: DomainType) -> Self {
        Param {
            direction: ParamDir::In,
            ty,
            name: name.into(),
        }
    }
}

/// An operation signature:
///
/// ```text
/// float gpa(in unsigned_long term) raises (NoGrades);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// Operation name (unique within the interface except when overriding,
    /// per the paper's uniqueness assumption).
    pub name: String,
    /// Return type (`void` when nothing is returned).
    pub return_type: DomainType,
    /// Argument list.
    pub args: Vec<Param>,
    /// Names of exceptions raised.
    pub raises: Vec<String>,
}

impl Operation {
    /// A zero-argument operation.
    pub fn nullary(name: impl Into<String>, return_type: DomainType) -> Self {
        Operation {
            name: name.into(),
            return_type,
            args: Vec::new(),
            raises: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup() {
        let mut s = Schema::new("uni");
        s.interfaces.push(Interface::new("Course"));
        s.interfaces.push(Interface::new("Student"));
        assert!(s.interface("Course").is_some());
        assert!(s.interface("Faculty").is_none());
        s.interface_mut("Student").unwrap().extent = Some("students".into());
        assert_eq!(
            s.interface("Student").unwrap().extent.as_deref(),
            Some("students")
        );
    }

    #[test]
    fn construct_count_counts_everything() {
        let mut s = Schema::new("t");
        let mut i = Interface::new("A");
        i.supertypes.push("B".into());
        i.attributes.push(Attribute::new("x", DomainType::Long));
        i.operations.push(Operation::nullary("f", DomainType::Void));
        s.interfaces.push(i);
        s.interfaces.push(Interface::new("B"));
        // A(1) + supertype(1) + attr(1) + op(1) + B(1) = 5
        assert_eq!(s.construct_count(), 5);
    }

    #[test]
    fn key_display() {
        assert_eq!(Key::single("id").to_string(), "id");
        assert_eq!(Key::compound(["a", "b"]).to_string(), "(a, b)");
    }

    #[test]
    fn member_names_cover_all_kinds() {
        let mut i = Interface::new("X");
        i.attributes.push(Attribute::new("a", DomainType::Long));
        i.relationships.push(Relationship {
            path: "r".into(),
            target: "Y".into(),
            cardinality: Cardinality::One,
            inverse_path: "x".into(),
            order_by: vec![],
        });
        i.operations.push(Operation::nullary("o", DomainType::Void));
        i.part_ofs.push(HierLink {
            path: "p".into(),
            target: "Z".into(),
            cardinality: Cardinality::Many(CollectionKind::Set),
            inverse_path: "w".into(),
            order_by: vec![],
        });
        i.instance_ofs.push(HierLink {
            path: "i".into(),
            target: "W".into(),
            cardinality: Cardinality::One,
            inverse_path: "insts".into(),
            order_by: vec![],
        });
        let names: Vec<&str> = i.member_names().collect();
        assert_eq!(names, vec!["a", "r", "o", "p", "i"]);
    }

    #[test]
    fn hier_link_side() {
        let parent = HierLink {
            path: "parts".into(),
            target: "Part".into(),
            cardinality: Cardinality::Many(CollectionKind::Set),
            inverse_path: "whole".into(),
            order_by: vec![],
        };
        assert!(parent.is_parent_side());
        let child = HierLink {
            cardinality: Cardinality::One,
            ..parent
        };
        assert!(!child.is_parent_side());
    }
}
