//! Canonical pretty-printer for extended ODL.
//!
//! The output parses back to an identical AST (`parse(print(s)) == s`), which
//! is what the repository relies on to persist shrink wrap and custom
//! schemas as text.

use crate::ast::{
    Attribute, Cardinality, HierKind, HierLink, Interface, Operation, Relationship, Schema,
};
use std::fmt::Write;

/// Print a schema with a `schema Name { ... }` wrapper.
pub fn print_schema(schema: &Schema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "schema {} {{", schema.name);
    for (idx, iface) in schema.interfaces.iter().enumerate() {
        if idx > 0 {
            out.push('\n');
        }
        print_interface_into(iface, &mut out, 1);
    }
    out.push_str("}\n");
    out
}

/// Print a single interface definition (no schema wrapper).
pub fn print_interface(iface: &Interface) -> String {
    let mut out = String::new();
    print_interface_into(iface, &mut out, 0);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_interface_into(iface: &Interface, out: &mut String, level: usize) {
    indent(out, level);
    if iface.is_abstract {
        out.push_str("abstract ");
    }
    let _ = write!(out, "interface {}", iface.name);
    if !iface.supertypes.is_empty() {
        let _ = write!(out, " : {}", iface.supertypes.join(", "));
    }
    out.push_str(" {\n");
    if let Some(extent) = &iface.extent {
        indent(out, level + 1);
        let _ = writeln!(out, "extent {extent};");
    }
    if !iface.keys.is_empty() {
        indent(out, level + 1);
        let rendered: Vec<String> = iface.keys.iter().map(|k| k.to_string()).collect();
        let _ = writeln!(out, "keys {};", rendered.join(", "));
    }
    for attr in &iface.attributes {
        print_attribute(attr, out, level + 1);
    }
    for rel in &iface.relationships {
        print_relationship(rel, out, level + 1);
    }
    for link in &iface.part_ofs {
        print_hier_link(link, HierKind::PartOf, out, level + 1);
    }
    for link in &iface.instance_ofs {
        print_hier_link(link, HierKind::InstanceOf, out, level + 1);
    }
    for op in &iface.operations {
        print_operation(op, out, level + 1);
    }
    indent(out, level);
    out.push_str("}\n");
}

fn print_attribute(attr: &Attribute, out: &mut String, level: usize) {
    indent(out, level);
    let _ = write!(out, "attribute {}", attr.ty);
    if let Some(size) = attr.size {
        let _ = write!(out, "({size})");
    }
    let _ = writeln!(out, " {};", attr.name);
}

fn target_spec(target: &str, cardinality: Cardinality) -> String {
    match cardinality {
        Cardinality::One => target.to_string(),
        Cardinality::Many(kind) => format!("{kind}<{target}>"),
    }
}

fn order_by_suffix(order_by: &[String]) -> String {
    if order_by.is_empty() {
        String::new()
    } else {
        format!(" order_by ({})", order_by.join(", "))
    }
}

fn print_relationship(rel: &Relationship, out: &mut String, level: usize) {
    indent(out, level);
    let _ = writeln!(
        out,
        "relationship {} {} inverse {}::{}{};",
        target_spec(&rel.target, rel.cardinality),
        rel.path,
        rel.target,
        rel.inverse_path,
        order_by_suffix(&rel.order_by),
    );
}

fn print_hier_link(link: &HierLink, kind: HierKind, out: &mut String, level: usize) {
    indent(out, level);
    let _ = writeln!(
        out,
        "{} {} {} inverse {}::{}{};",
        kind.keyword(),
        target_spec(&link.target, link.cardinality),
        link.path,
        link.target,
        link.inverse_path,
        order_by_suffix(&link.order_by),
    );
}

fn print_operation(op: &Operation, out: &mut String, level: usize) {
    indent(out, level);
    let args: Vec<String> = op
        .args
        .iter()
        .map(|p| format!("{} {} {}", p.direction.keyword(), p.ty, p.name))
        .collect();
    let _ = write!(out, "{} {}({})", op.return_type, op.name, args.join(", "));
    if !op.raises.is_empty() {
        let _ = write!(out, " raises ({})", op.raises.join(", "));
    }
    out.push_str(";\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_interface, parse_schema};

    const FULL: &str = r#"
    schema Uni {
        abstract interface Person : Root {
            extent people;
            keys id, (first, last);
            attribute string(32) name;
            attribute array<double, 2> location;
            relationship set<Course> takes inverse Course::taken_by order_by (number);
            part_of Body torso_of inverse Body::torso;
            instance_of set<Clone> clones inverse Clone::original;
            float gpa(in unsigned_long term) raises (NoGrades);
            void enroll();
        }
        interface Root { }
    }"#;

    #[test]
    fn round_trip_full_schema() {
        let schema = parse_schema(FULL).unwrap();
        let printed = print_schema(&schema);
        let reparsed = parse_schema(&printed).unwrap();
        assert_eq!(schema, reparsed);
    }

    #[test]
    fn round_trip_interface() {
        let src = "interface A { attribute long x; }";
        let iface = parse_interface(src).unwrap();
        let printed = print_interface(&iface);
        assert_eq!(parse_interface(&printed).unwrap(), iface);
    }

    #[test]
    fn printed_relationship_matches_paper_style() {
        let src = r#"interface Department {
            relationship set<Employee> has inverse Employee::works_in_a;
        }"#;
        let iface = parse_interface(src).unwrap();
        let printed = print_interface(&iface);
        assert!(
            printed.contains("relationship set<Employee> has inverse Employee::works_in_a;"),
            "got: {printed}"
        );
    }

    #[test]
    fn abstract_and_supertypes_printed() {
        let schema = parse_schema(FULL).unwrap();
        let printed = print_schema(&schema);
        assert!(printed.contains("abstract interface Person : Root {"));
    }

    #[test]
    fn empty_interface_prints_compactly() {
        let iface = parse_interface("interface E { }").unwrap();
        assert_eq!(print_interface(&iface), "interface E {\n}\n");
    }
}
