//! Recursive-descent parser for extended ODL.
//!
//! # Concrete syntax
//!
//! ```text
//! schema University {                          // wrapper optional
//!     abstract interface Person {              // `abstract` optional
//!         extent people;
//!         keys id, (first, last);              // `key` also accepted
//!         attribute string(32) name;           // size only on string/char
//!         attribute set<string> nicknames;
//!         relationship set<Employee> has inverse Employee::works_in_a
//!             order_by (name);
//!         part_of set<Wall> walls inverse Wall::wall_of;       // parent side
//!         part_of House wall_of inverse House::walls;          // child side
//!         instance_of set<Version> versions inverse Version::application;
//!         float gpa(in unsigned_long term) raises (NoGrades);  // operation
//!     }
//! }
//! ```
//!
//! Members may appear in any order; source order is preserved per member
//! kind. The `inverse` clause must be qualified with the relationship's
//! target type (`Target::path`), exactly as in the paper's listings.

use crate::ast::{
    Attribute, Cardinality, HierKind, HierLink, Interface, Key, Operation, Param, ParamDir,
    Relationship, Schema,
};
use crate::error::{OdlError, OdlErrorKind, Span};
use crate::lexer::{tokenize, Spanned, Token};
use crate::types::{CollectionKind, DomainType};

/// Parse a complete extended-ODL schema. A `schema Name { ... }` wrapper is
/// optional; without it the schema is named `"schema"`.
pub fn parse_schema(src: &str) -> Result<Schema, OdlError> {
    let mut sp = sws_trace::span!("odl.parse", bytes = src.len());
    let tokens = tokenize(src)?;
    sws_trace::counter("odl.tokens", tokens.len() as u64);
    let mut p = Parser { tokens, pos: 0 };
    let schema = p.schema()?;
    p.expect_eof()?;
    sp.record("interfaces", schema.interfaces.len());
    Ok(schema)
}

/// Parse a single interface definition.
pub fn parse_interface(src: &str) -> Result<Interface, OdlError> {
    let tokens = tokenize(src)?;
    sws_trace::counter("odl.tokens", tokens.len() as u64);
    let mut p = Parser { tokens, pos: 0 };
    let iface = p.interface()?;
    p.expect_eof()?;
    Ok(iface)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err_expected(&self, expected: &str) -> OdlError {
        if matches!(self.peek(), Token::Eof) {
            OdlError::new(
                self.span(),
                OdlErrorKind::UnexpectedEof {
                    expected: expected.into(),
                },
            )
        } else {
            OdlError::new(
                self.span(),
                OdlErrorKind::Expected {
                    expected: expected.into(),
                    found: self.peek().describe(),
                },
            )
        }
    }

    fn expect(&mut self, want: &Token, desc: &str) -> Result<(), OdlError> {
        if self.peek() == want {
            self.advance();
            Ok(())
        } else {
            Err(self.err_expected(desc))
        }
    }

    fn expect_eof(&self) -> Result<(), OdlError> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            Err(self.err_expected("end of input"))
        }
    }

    fn ident(&mut self, desc: &str) -> Result<String, OdlError> {
        match self.peek() {
            Token::Ident(_) => match self.advance() {
                Token::Ident(s) => Ok(s),
                _ => unreachable!(),
            },
            _ => Err(self.err_expected(desc)),
        }
    }

    /// True if the next token is the identifier `word`.
    fn at_word(&self, word: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s == word)
    }

    /// Consume the identifier `word` if present.
    fn eat_word(&mut self, word: &str) -> bool {
        if self.at_word(word) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn number(&mut self, desc: &str) -> Result<u32, OdlError> {
        match self.peek() {
            Token::Number(_) => match self.advance() {
                Token::Number(n) => Ok(n),
                _ => unreachable!(),
            },
            _ => Err(self.err_expected(desc)),
        }
    }

    fn schema(&mut self) -> Result<Schema, OdlError> {
        let mut schema;
        let wrapped = self.at_word("schema");
        if wrapped {
            self.advance();
            let name = self.ident("schema name")?;
            schema = Schema::new(name);
            self.expect(&Token::LBrace, "`{`")?;
        } else {
            schema = Schema::new("schema");
        }
        loop {
            if self.at_word("interface") || self.at_word("abstract") {
                schema.interfaces.push(self.interface()?);
            } else {
                break;
            }
        }
        if wrapped {
            self.expect(&Token::RBrace, "`}`")?;
        }
        Ok(schema)
    }

    fn interface(&mut self) -> Result<Interface, OdlError> {
        let mut sp = sws_trace::span("odl.parse_interface");
        let is_abstract = self.eat_word("abstract");
        if !self.eat_word("interface") {
            return Err(self.err_expected("`interface`"));
        }
        let name = self.ident("interface name")?;
        sp.record("interface", name.as_str());
        let mut iface = Interface::new(name);
        iface.is_abstract = is_abstract;
        if matches!(self.peek(), Token::Colon) {
            self.advance();
            loop {
                iface.supertypes.push(self.ident("supertype name")?);
                if matches!(self.peek(), Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::LBrace, "`{`")?;
        while !matches!(self.peek(), Token::RBrace) {
            self.member(&mut iface)?;
        }
        self.expect(&Token::RBrace, "`}`")?;
        Ok(iface)
    }

    fn member(&mut self, iface: &mut Interface) -> Result<(), OdlError> {
        if self.eat_word("extent") {
            let name = self.ident("extent name")?;
            iface.extent = Some(name);
            self.expect(&Token::Semi, "`;`")?;
        } else if self.at_word("keys") || self.at_word("key") {
            self.advance();
            loop {
                iface.keys.push(self.key()?);
                if matches!(self.peek(), Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
            self.expect(&Token::Semi, "`;`")?;
        } else if self.eat_word("attribute") {
            iface.attributes.push(self.attribute()?);
        } else if self.eat_word("relationship") {
            iface.relationships.push(self.relationship()?);
        } else if self.eat_word("part_of") {
            iface.part_ofs.push(self.hier_link(HierKind::PartOf)?);
        } else if self.eat_word("instance_of") {
            iface
                .instance_ofs
                .push(self.hier_link(HierKind::InstanceOf)?);
        } else if matches!(self.peek(), Token::Ident(_)) {
            iface.operations.push(self.operation()?);
        } else {
            return Err(self.err_expected("an interface member"));
        }
        Ok(())
    }

    fn key(&mut self) -> Result<Key, OdlError> {
        if matches!(self.peek(), Token::LParen) {
            self.advance();
            let mut parts = Vec::new();
            loop {
                parts.push(self.ident("key attribute name")?);
                if matches!(self.peek(), Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
            self.expect(&Token::RParen, "`)`")?;
            Ok(Key(parts))
        } else {
            Ok(Key::single(self.ident("key attribute name")?))
        }
    }

    fn attribute(&mut self) -> Result<Attribute, OdlError> {
        let span = self.span();
        let ty = self.domain_type()?;
        let size = if matches!(self.peek(), Token::LParen) {
            if !ty.admits_size() {
                return Err(OdlError::new(
                    span,
                    OdlErrorKind::SizeNotAllowed(ty.to_string()),
                ));
            }
            self.advance();
            let n = self.number("size")?;
            self.expect(&Token::RParen, "`)`")?;
            Some(n)
        } else {
            None
        };
        let name = self.ident("attribute name")?;
        self.expect(&Token::Semi, "`;`")?;
        Ok(Attribute { name, ty, size })
    }

    /// Parse a relationship target specification: `Ident` or
    /// `set|list|bag<Ident>`, returning `(target type, cardinality)`.
    fn target_spec(&mut self) -> Result<(String, Cardinality), OdlError> {
        let word = self.ident("target type")?;
        let kind = match word.as_str() {
            "set" => Some(CollectionKind::Set),
            "list" => Some(CollectionKind::List),
            "bag" => Some(CollectionKind::Bag),
            _ => None,
        };
        match kind {
            Some(k) if matches!(self.peek(), Token::Lt) => {
                self.advance();
                let target = self.ident("target type")?;
                self.expect(&Token::Gt, "`>`")?;
                Ok((target, Cardinality::Many(k)))
            }
            _ => Ok((word, Cardinality::One)),
        }
    }

    /// Parse `inverse Target::path`, checking the qualifier names `target`.
    fn inverse_clause(&mut self, target: &str) -> Result<String, OdlError> {
        if !self.eat_word("inverse") {
            return Err(self.err_expected("`inverse`"));
        }
        let span = self.span();
        let qualifier = self.ident("inverse qualifier (target type)")?;
        if qualifier != target {
            return Err(OdlError::new(
                span,
                OdlErrorKind::Expected {
                    expected: format!("inverse qualifier `{target}`"),
                    found: format!("`{qualifier}`"),
                },
            ));
        }
        self.expect(&Token::ColonColon, "`::`")?;
        self.ident("inverse traversal path name")
    }

    fn order_by_clause(&mut self) -> Result<Vec<String>, OdlError> {
        if !self.eat_word("order_by") {
            return Ok(Vec::new());
        }
        self.expect(&Token::LParen, "`(`")?;
        let mut attrs = Vec::new();
        loop {
            attrs.push(self.ident("order-by attribute name")?);
            if matches!(self.peek(), Token::Comma) {
                self.advance();
            } else {
                break;
            }
        }
        self.expect(&Token::RParen, "`)`")?;
        Ok(attrs)
    }

    fn relationship(&mut self) -> Result<Relationship, OdlError> {
        let (target, cardinality) = self.target_spec()?;
        let path = self.ident("traversal path name")?;
        let inverse_path = self.inverse_clause(&target)?;
        let order_by = self.order_by_clause()?;
        self.expect(&Token::Semi, "`;`")?;
        Ok(Relationship {
            path,
            target,
            cardinality,
            inverse_path,
            order_by,
        })
    }

    fn hier_link(&mut self, _kind: HierKind) -> Result<HierLink, OdlError> {
        let (target, cardinality) = self.target_spec()?;
        let path = self.ident("traversal path name")?;
        let inverse_path = self.inverse_clause(&target)?;
        let order_by = self.order_by_clause()?;
        self.expect(&Token::Semi, "`;`")?;
        Ok(HierLink {
            path,
            target,
            cardinality,
            inverse_path,
            order_by,
        })
    }

    fn operation(&mut self) -> Result<Operation, OdlError> {
        let return_type = self.domain_type()?;
        let name = self.ident("operation name")?;
        self.expect(&Token::LParen, "`(`")?;
        let mut args = Vec::new();
        if !matches!(self.peek(), Token::RParen) {
            loop {
                args.push(self.param()?);
                if matches!(self.peek(), Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen, "`)`")?;
        let mut raises = Vec::new();
        if self.eat_word("raises") {
            self.expect(&Token::LParen, "`(`")?;
            loop {
                raises.push(self.ident("exception name")?);
                if matches!(self.peek(), Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
            self.expect(&Token::RParen, "`)`")?;
        }
        self.expect(&Token::Semi, "`;`")?;
        Ok(Operation {
            name,
            return_type,
            args,
            raises,
        })
    }

    fn param(&mut self) -> Result<Param, OdlError> {
        let direction = if self.eat_word("in") {
            ParamDir::In
        } else if self.eat_word("out") {
            ParamDir::Out
        } else if self.eat_word("inout") {
            ParamDir::InOut
        } else {
            ParamDir::In
        };
        let ty = self.domain_type()?;
        let name = self.ident("parameter name")?;
        Ok(Param {
            direction,
            ty,
            name,
        })
    }

    fn domain_type(&mut self) -> Result<DomainType, OdlError> {
        self.domain_type_at(0)
    }

    fn domain_type_at(&mut self, depth: usize) -> Result<DomainType, OdlError> {
        // Each nesting level recurses; unbounded input like `set<set<...`
        // would otherwise overflow the stack instead of erroring.
        if depth >= crate::error::MAX_TYPE_NESTING {
            return Err(OdlError::new(
                self.span(),
                OdlErrorKind::NestingTooDeep {
                    limit: crate::error::MAX_TYPE_NESTING,
                },
            ));
        }
        let word = self.ident("a type")?;
        match word.as_str() {
            "set" | "list" | "bag" => {
                let kind = match word.as_str() {
                    "set" => CollectionKind::Set,
                    "list" => CollectionKind::List,
                    _ => CollectionKind::Bag,
                };
                if matches!(self.peek(), Token::Lt) {
                    self.advance();
                    let elem = self.domain_type_at(depth + 1)?;
                    self.expect(&Token::Gt, "`>`")?;
                    Ok(DomainType::Collection(kind, Box::new(elem)))
                } else {
                    // `set` used as a plain type name.
                    Ok(DomainType::Named(word))
                }
            }
            "array" => {
                self.expect(&Token::Lt, "`<`")?;
                let elem = self.domain_type_at(depth + 1)?;
                self.expect(&Token::Comma, "`,`")?;
                let n = self.number("array length")?;
                self.expect(&Token::Gt, "`>`")?;
                Ok(DomainType::Array(Box::new(elem), n))
            }
            _ => {
                if let Some(prim) = DomainType::from_keyword(&word) {
                    Ok(prim)
                } else {
                    Ok(DomainType::Named(word))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_interface() {
        let src = r#"
        abstract interface Person : LivingThing, Legal {
            extent people;
            keys id, (first, last);
            attribute string(32) name;
            attribute unsigned_long age;
            attribute set<string> nicknames;
            relationship Department works_in_a inverse Department::has;
            relationship set<Course> takes inverse Course::taken_by order_by (number, term);
            part_of set<Limb> limbs inverse Limb::body;
            instance_of Archetype archetype inverse Archetype::examples;
            float gpa(in unsigned_long term, out long count) raises (NoGrades, BadTerm);
            void enroll();
        }"#;
        let i = parse_interface(src).unwrap();
        assert!(i.is_abstract);
        assert_eq!(i.name, "Person");
        assert_eq!(i.supertypes, vec!["LivingThing", "Legal"]);
        assert_eq!(i.extent.as_deref(), Some("people"));
        assert_eq!(i.keys.len(), 2);
        assert_eq!(i.keys[1].0, vec!["first", "last"]);
        assert_eq!(i.attributes.len(), 3);
        assert_eq!(i.attributes[0].size, Some(32));
        assert_eq!(i.attributes[2].ty, DomainType::set_of(DomainType::String));
        assert_eq!(i.relationships.len(), 2);
        assert_eq!(i.relationships[0].cardinality, Cardinality::One);
        assert_eq!(
            i.relationships[1].cardinality,
            Cardinality::Many(CollectionKind::Set)
        );
        assert_eq!(i.relationships[1].order_by, vec!["number", "term"]);
        assert_eq!(i.part_ofs.len(), 1);
        assert!(i.part_ofs[0].is_parent_side());
        assert_eq!(i.instance_ofs.len(), 1);
        assert!(!i.instance_ofs[0].is_parent_side());
        assert_eq!(i.operations.len(), 2);
        assert_eq!(i.operations[0].raises, vec!["NoGrades", "BadTerm"]);
        assert_eq!(i.operations[1].return_type, DomainType::Void);
    }

    #[test]
    fn parses_wrapped_and_bare_schema() {
        let wrapped = "schema Uni { interface A { } interface B { } }";
        let s = parse_schema(wrapped).unwrap();
        assert_eq!(s.name, "Uni");
        assert_eq!(s.interfaces.len(), 2);
        let bare = "interface A { } interface B { }";
        let s = parse_schema(bare).unwrap();
        assert_eq!(s.name, "schema");
        assert_eq!(s.interfaces.len(), 2);
    }

    #[test]
    fn inverse_qualifier_must_match_target() {
        let src = "interface A { relationship B r inverse C::x; }";
        let err = parse_schema(src).unwrap_err();
        assert!(matches!(err.kind, OdlErrorKind::Expected { .. }));
    }

    #[test]
    fn size_on_non_string_rejected() {
        let src = "interface A { attribute long(4) x; }";
        let err = parse_schema(src).unwrap_err();
        assert!(matches!(err.kind, OdlErrorKind::SizeNotAllowed(_)));
    }

    #[test]
    fn paper_figure8_listing_parses() {
        // The exact relationship declarations from §3.4 of the paper.
        let src = r#"
        interface Department {
            relationship set<Employee> has inverse Employee::works_in_a;
        }
        interface Employee {
            relationship Department works_in_a inverse Department::has;
        }"#;
        let s = parse_schema(src).unwrap();
        let dept = s.interface("Department").unwrap();
        assert_eq!(dept.relationships[0].target, "Employee");
        assert_eq!(dept.relationships[0].inverse_path, "works_in_a");
    }

    #[test]
    fn operation_with_default_in_direction() {
        let src = "interface A { long f(unsigned_long x); }";
        let s = parse_schema(src).unwrap();
        let op = &s.interfaces[0].operations[0];
        assert_eq!(op.args[0].direction, ParamDir::In);
    }

    #[test]
    fn nested_collection_attribute() {
        let src = "interface A { attribute list<set<long>> grid; }";
        let s = parse_schema(src).unwrap();
        assert_eq!(
            s.interfaces[0].attributes[0].ty,
            DomainType::list_of(DomainType::set_of(DomainType::Long))
        );
    }

    #[test]
    fn array_type() {
        let src = "interface A { attribute array<double, 3> position; }";
        let s = parse_schema(src).unwrap();
        assert_eq!(
            s.interfaces[0].attributes[0].ty,
            DomainType::Array(Box::new(DomainType::Double), 3)
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_schema("interface A { } garbage").is_err());
    }

    #[test]
    fn missing_semicolon_reported() {
        let err = parse_schema("interface A { attribute long x }").unwrap_err();
        assert!(matches!(err.kind, OdlErrorKind::Expected { .. }));
    }

    #[test]
    fn eof_mid_interface_reported() {
        let err = parse_schema("interface A { attribute").unwrap_err();
        assert!(matches!(err.kind, OdlErrorKind::UnexpectedEof { .. }));
    }

    #[test]
    fn set_as_plain_type_name() {
        // `set` not followed by `<` is treated as a named type.
        let src = "interface A { attribute set x; }";
        let s = parse_schema(src).unwrap();
        assert_eq!(s.interfaces[0].attributes[0].ty, DomainType::named("set"));
    }
}
