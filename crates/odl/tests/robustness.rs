//! Robustness properties of the lexer and parser: no input panics, errors
//! always carry positions, and parsing is total over the printable-ASCII
//! fuzz space.

use sws_odl::{parse_schema, print_schema, validate_schema, OdlErrorKind, MAX_TYPE_NESTING};

#[cfg(feature = "proptest")]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Arbitrary text never panics the pipeline.
        #[test]
        fn parser_never_panics(src in "[ -~\\n]{0,200}") {
            let _ = parse_schema(&src);
        }

        /// Arbitrary interface-shaped text never panics.
        #[test]
        fn interface_shaped_fuzz(body in "[a-z<>(),;: ]{0,120}") {
            let src = format!("interface A {{ {body} }}");
            let _ = parse_schema(&src);
        }

        /// Any nesting depth either parses (under the limit) or errors
        /// with the depth-guard kind (at or over it) — never a crash.
        #[test]
        fn nesting_depth_fuzz(depth in 1usize..200, close_flag in 0u8..2) {
            let close = close_flag == 1;
            let closers = if close { ">".repeat(depth) } else { String::new() };
            let src = format!(
                "interface A {{ attribute {}long{} x; }}",
                "set<".repeat(depth),
                closers
            );
            match parse_schema(&src) {
                Ok(_) => prop_assert!(close && depth < MAX_TYPE_NESTING),
                Err(e) => {
                    if depth >= MAX_TYPE_NESTING {
                        prop_assert_eq!(
                            e.kind,
                            OdlErrorKind::NestingTooDeep { limit: MAX_TYPE_NESTING }
                        );
                    }
                }
            }
        }

        /// When parsing succeeds, printing and re-parsing is stable, and
        /// validation never panics.
        #[test]
        fn accepted_inputs_round_trip(body in "(attribute (long|string|double) [a-z]{1,6}; ?){0,5}") {
            let src = format!("interface A {{ {body} }}");
            if let Ok(schema) = parse_schema(&src) {
                let printed = print_schema(&schema);
                let reparsed = parse_schema(&printed).expect("printer output parses");
                prop_assert_eq!(reparsed, schema.clone());
                let _ = validate_schema(&schema);
            }
        }
    }
}

#[test]
fn error_positions_are_precise() {
    let err = parse_schema("interface A {\n  attribute long 42;\n}").unwrap_err();
    assert_eq!(err.span.line, 2);
    let err = parse_schema("interface A { attribute long x }").unwrap_err();
    assert_eq!(err.span.line, 1);
    assert!(err.span.col > 25);
}

#[test]
fn deeply_nested_types_parse() {
    let src = "interface A { attribute set<list<bag<set<long>>>> deep; }";
    let schema = parse_schema(src).unwrap();
    let printed = print_schema(&schema);
    assert_eq!(parse_schema(&printed).unwrap(), schema);
}

#[test]
fn pathological_nesting_errors_instead_of_overflowing() {
    // 10 000 levels of `set<` would blow the stack in an unguarded
    // recursive-descent parser; the depth guard must turn it into a
    // positioned error.
    let deep = format!(
        "interface A {{ attribute {}long{} x; }}",
        "set<".repeat(10_000),
        ">".repeat(10_000)
    );
    let err = parse_schema(&deep).unwrap_err();
    assert_eq!(
        err.kind,
        OdlErrorKind::NestingTooDeep {
            limit: MAX_TYPE_NESTING
        }
    );
    assert!(err.span.line >= 1, "error carries a position");

    // A truncated bomb (no closing `>`s at all) errors the same way
    // rather than recursing to EOF.
    let torn = format!("interface A {{ attribute {}", "set<".repeat(10_000));
    assert!(parse_schema(&torn).is_err());
}

#[test]
fn nesting_just_under_the_limit_parses() {
    let depth = MAX_TYPE_NESTING - 1;
    let src = format!(
        "interface A {{ attribute {}long{} x; }}",
        "set<".repeat(depth),
        ">".repeat(depth)
    );
    let schema = parse_schema(&src).unwrap();
    // And the printer/parser round trip still holds at the boundary.
    assert_eq!(parse_schema(&print_schema(&schema)).unwrap(), schema);
}

#[test]
fn large_schema_parses() {
    let mut src = String::new();
    for i in 0..500 {
        src.push_str(&format!(
            "interface T{i} {{ attribute long a{i}; attribute string(32) b{i}; }}\n"
        ));
    }
    let schema = parse_schema(&src).unwrap();
    assert_eq!(schema.interfaces.len(), 500);
    assert!(validate_schema(&schema).is_empty());
}
