//! The `snapshot.<generation>` file: a self-checksummed image of the
//! working schema at a checkpoint, so load becomes snapshot + short tail
//! instead of a full op-log replay.
//!
//! Format (`snapshot.v1`, tab-separated, byte-framed, self-checksummed):
//!
//! ```text
//! sws-snapshot v1
//! section\tmeta\t<len>\t<checksum-hex16>
//! <len bytes of meta payload>
//! section\tworking\t<len>\t<checksum-hex16>
//! <len bytes of canonical working-schema ODL>
//! section\tmoves\t<len>\t<checksum-hex16>
//! <len bytes of move-op lines>
//! end\t<checksum-hex16 of everything above>
//! ```
//!
//! Every section carries its own SplitMix64 checksum and the trailer
//! covers the whole file, so a torn or bit-flipped snapshot is detected
//! before any of it is trusted; the loader then falls back one layer
//! (previous snapshot, then full-log replay — see `docs/robustness.md`).
//!
//! The `meta` payload records the checkpoint `generation` and `ops`, the
//! number of committed ops the snapshot covers (its global sequence
//! coverage). The `moves` payload preserves the covered prefix's
//! `modify_attribute` / `modify_operation` ops verbatim: the shrink-wrap ↔
//! custom mapping is derived by symbolically replaying exactly those ops,
//! so a snapshot load must still know them even though the graph ops
//! themselves are never replayed again.

use std::fmt;

use crate::checksum::{checksum, from_hex, to_hex};
use sws_core::oplang::print_op;
use sws_core::{ConceptKind, ModOp};

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// File name of the snapshot at checkpoint `generation`.
pub fn snapshot_file(generation: u64) -> String {
    format!("snapshot.{generation}")
}

/// A parsed (or to-be-written) checkpoint snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Checkpoint generation this snapshot belongs to.
    pub generation: u64,
    /// Number of committed ops baked into the image (sequence coverage:
    /// the tail replays records with sequence numbers `>= ops`).
    pub ops: u64,
    /// Canonical extended-ODL text of the working schema at coverage.
    pub working_odl: String,
    /// Move ops from the covered prefix, in order, for mapping derivation.
    pub moves: Vec<(ConceptKind, ModOp)>,
}

/// Why a snapshot failed to parse or verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Header line absent or malformed.
    BadHeader,
    /// The version is newer than this build understands.
    UnsupportedVersion(u32),
    /// A section is malformed, truncated, or checksum-mismatched.
    BadSection(String),
    /// The `end` trailer is missing (torn snapshot) or its checksum does
    /// not cover the preceding bytes.
    BadTrailer,
    /// A required section is absent.
    MissingSection(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadHeader => f.write_str("malformed snapshot header"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version v{v}")
            }
            SnapshotError::BadSection(detail) => write!(f, "malformed snapshot section: {detail}"),
            SnapshotError::BadTrailer => {
                f.write_str("snapshot trailer missing or checksum mismatch (torn write?)")
            }
            SnapshotError::MissingSection(name) => {
                write!(f, "snapshot is missing its `{name}` section")
            }
        }
    }
}

impl Snapshot {
    /// Render to the on-disk format (self-checksummed).
    pub fn render(&self) -> String {
        let mut body = format!("sws-snapshot v{SNAPSHOT_VERSION}\n");
        let section = |body: &mut String, name: &str, payload: &str| {
            body.push_str(&format!(
                "section\t{name}\t{}\t{}\n",
                payload.len(),
                to_hex(checksum(payload.as_bytes()))
            ));
            body.push_str(payload);
            body.push('\n');
        };
        let meta = format!("generation\t{}\nops\t{}\n", self.generation, self.ops);
        section(&mut body, "meta", &meta);
        section(&mut body, "working", &self.working_odl);
        let mut moves = String::new();
        for (context, op) in &self.moves {
            moves.push_str(context.tag());
            moves.push('\t');
            moves.push_str(&print_op(op));
            moves.push('\n');
        }
        section(&mut body, "moves", &moves);
        let trailer = to_hex(checksum(body.as_bytes()));
        body.push_str(&format!("end\t{trailer}\n"));
        body
    }

    /// Parse the on-disk format, verifying the trailer and every section
    /// checksum. Never panics on arbitrary damaged input.
    pub fn parse(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        // Trailer first: the final newline-terminated line must be
        // `end\t<hex>` and must cover every byte before it.
        let trimmed = bytes.strip_suffix(b"\n").unwrap_or(bytes);
        let pos = trimmed
            .iter()
            .rposition(|&b| b == b'\n')
            .ok_or(SnapshotError::BadTrailer)?;
        let (body, trailer_line) = (&bytes[..pos + 1], &trimmed[pos + 1..]);
        let sum = std::str::from_utf8(trailer_line)
            .ok()
            .and_then(|l| l.strip_prefix("end\t"))
            .and_then(from_hex)
            .ok_or(SnapshotError::BadTrailer)?;
        if sum != checksum(body) {
            return Err(SnapshotError::BadTrailer);
        }

        // Header.
        let header_end = body
            .iter()
            .position(|&b| b == b'\n')
            .ok_or(SnapshotError::BadHeader)?;
        let version: u32 = std::str::from_utf8(&body[..header_end])
            .ok()
            .and_then(|h| h.strip_prefix("sws-snapshot v"))
            .and_then(|v| v.parse().ok())
            .ok_or(SnapshotError::BadHeader)?;
        if version > SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }

        // Sections, framed by the byte lengths in their headers.
        let bad = |detail: &str| SnapshotError::BadSection(detail.to_string());
        let mut generation = None;
        let mut ops = None;
        let mut working_odl = None;
        let mut moves = None;
        let mut at = header_end + 1;
        while at < body.len() {
            let line_end = body[at..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|p| at + p)
                .ok_or_else(|| bad("truncated section header"))?;
            let header =
                std::str::from_utf8(&body[at..line_end]).map_err(|_| bad("non-UTF-8 header"))?;
            let mut fields = header.splitn(4, '\t');
            if fields.next() != Some("section") {
                return Err(bad(&format!("expected a section header, got {header:?}")));
            }
            let name = fields.next().ok_or_else(|| bad("missing section name"))?;
            let len: usize = fields
                .next()
                .and_then(|f| f.parse().ok())
                .ok_or_else(|| bad("missing section length"))?;
            let section_sum = fields
                .next()
                .and_then(from_hex)
                .ok_or_else(|| bad("missing section checksum"))?;
            let start = line_end + 1;
            let end = start
                .checked_add(len)
                .filter(|&e| e < body.len())
                .ok_or_else(|| bad(&format!("section {name}: payload truncated")))?;
            let payload = &body[start..end];
            if checksum(payload) != section_sum {
                return Err(bad(&format!("section {name}: checksum mismatch")));
            }
            if body[end] != b'\n' {
                return Err(bad(&format!("section {name}: unterminated payload")));
            }
            at = end + 1;
            let text = std::str::from_utf8(payload)
                .map_err(|_| bad(&format!("section {name}: non-UTF-8 payload")))?;
            match name {
                "meta" => {
                    for line in text.lines() {
                        match line.split_once('\t') {
                            Some(("generation", v)) => {
                                generation =
                                    Some(v.parse().map_err(|_| bad("malformed generation"))?);
                            }
                            Some(("ops", v)) => {
                                ops = Some(v.parse().map_err(|_| bad("malformed ops count"))?);
                            }
                            // Unknown meta keys are forward-compatible.
                            _ => {}
                        }
                    }
                }
                "working" => working_odl = Some(text.to_string()),
                "moves" => {
                    let mut parsed = Vec::new();
                    for line in text.lines() {
                        let record = crate::parse_log_body(line)
                            .ok_or_else(|| bad(&format!("malformed move record {line:?}")))?;
                        parsed.push(record);
                    }
                    moves = Some(parsed);
                }
                // Unknown sections within a known version are tolerated.
                _ => {}
            }
        }
        Ok(Snapshot {
            generation: generation.ok_or(SnapshotError::MissingSection("meta"))?,
            ops: ops.ok_or(SnapshotError::MissingSection("meta"))?,
            working_odl: working_odl.ok_or(SnapshotError::MissingSection("working"))?,
            moves: moves.ok_or(SnapshotError::MissingSection("moves"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            generation: 3,
            ops: 120,
            working_odl: "interface Person {\n    attribute string name;\n}\n".into(),
            moves: vec![(
                ConceptKind::Generalization,
                ModOp::ModifyAttribute {
                    ty: "Employee".into(),
                    name: "badge".into(),
                    new_ty: "Person".into(),
                },
            )],
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let snap = sample();
        let text = snap.render();
        assert!(text.starts_with("sws-snapshot v1\n"));
        let parsed = Snapshot::parse(text.as_bytes()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn empty_moves_and_empty_schema_round_trip() {
        let snap = Snapshot {
            generation: 1,
            ops: 0,
            working_odl: String::new(),
            moves: Vec::new(),
        };
        assert_eq!(Snapshot::parse(snap.render().as_bytes()).unwrap(), snap);
    }

    #[test]
    fn truncation_detected_at_every_cut() {
        let text = sample().render();
        // Every proper truncation must fail. The one exception is losing
        // only the final newline (cut = len - 1): the trailer and every
        // section are still intact and verifiable, so that parse succeeds.
        for cut in 0..text.len() - 1 {
            assert!(
                Snapshot::parse(&text.as_bytes()[..cut]).is_err(),
                "cut at {cut} parsed"
            );
        }
        assert!(Snapshot::parse(&text.as_bytes()[..text.len() - 1]).is_ok());
    }

    #[test]
    fn bit_flip_detected_everywhere() {
        let text = sample().render();
        let bytes = text.as_bytes();
        for i in 0..bytes.len() {
            let mut tampered = bytes.to_vec();
            tampered[i] ^= 0x01;
            assert!(
                Snapshot::parse(&tampered).is_err(),
                "flip at byte {i} parsed"
            );
        }
    }

    #[test]
    fn future_version_rejected() {
        let mut snap_text = String::from("sws-snapshot v99\n");
        let trailer = to_hex(checksum(snap_text.as_bytes()));
        snap_text.push_str(&format!("end\t{trailer}\n"));
        assert_eq!(
            Snapshot::parse(snap_text.as_bytes()),
            Err(SnapshotError::UnsupportedVersion(99))
        );
    }
}
