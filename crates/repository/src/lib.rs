//! The schema repository (paper Fig. 1, activity 12): durable storage for
//! the shrink wrap schema, the design workspace, the custom schema, and the
//! mapping.
//!
//! The paper's prototype persisted the repository as an ObjectStore
//! database. We substitute a transparent, replayable representation (see
//! DESIGN.md §2): a session directory containing
//!
//! * `shrink_wrap.odl` — the shrink wrap schema as extended-ODL text,
//! * `session.ops` — the operation log, one `<context>\t<statement>` line
//!   per applied operation in the modification language,
//! * `custom.odl` — the derived custom schema (informative; regenerated and
//!   verified against the replay on load),
//! * `mapping.txt` — the rendered shrink-wrap ↔ custom mapping
//!   (informative).
//!
//! [`Repository::load`] replays `session.ops` against `shrink_wrap.odl`
//! through the full permission/constraint pipeline, so a loaded session is
//! exactly as valid as the live one that saved it.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use sws_core::concept::normalize_single_root;
use sws_core::consistency::ConsistencyReport;
use sws_core::oplang::{parse_statement, print_op};
use sws_core::{AliasError, AliasTable, ConceptKind, Mapping, ModOp, OpError, Workspace};
use sws_model::{graph_to_schema, schema_to_graph, LowerError, SchemaGraph};
use sws_odl::{parse_schema, print_schema, OdlError};

/// File name of the shrink wrap schema.
pub const SHRINK_WRAP_FILE: &str = "shrink_wrap.odl";
/// File name of the op log.
pub const SESSION_FILE: &str = "session.ops";
/// File name of the derived custom schema.
pub const CUSTOM_FILE: &str = "custom.odl";
/// File name of the rendered mapping.
pub const MAPPING_FILE: &str = "mapping.txt";
/// File name of the local-name (alias) table (§5 extension).
pub const ALIASES_FILE: &str = "local_names.txt";

/// Errors loading or saving a repository.
#[derive(Debug)]
pub enum RepoError {
    /// Filesystem failure.
    Io(io::Error),
    /// The shrink wrap ODL did not parse.
    Odl(OdlError),
    /// The shrink wrap schema did not lower.
    Lower(LowerError),
    /// Replaying line `line` of the op log failed.
    Replay { line: usize, source: OpError },
    /// A malformed op-log line.
    BadLogLine { line: usize, content: String },
    /// A malformed local-names line.
    BadAliasLine { line: usize },
    /// An alias collided when registering it.
    Alias(AliasError),
    /// `custom.odl` exists but disagrees with the replayed session.
    CustomMismatch,
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::Io(e) => write!(f, "I/O error: {e}"),
            RepoError::Odl(e) => write!(f, "{e}"),
            RepoError::Lower(e) => write!(f, "{e}"),
            RepoError::Replay { line, source } => {
                write!(f, "replay failed at op-log line {line}: {source}")
            }
            RepoError::BadLogLine { line, content } => {
                write!(f, "malformed op-log line {line}: {content:?}")
            }
            RepoError::BadAliasLine { line } => {
                write!(f, "malformed local-names line {line}")
            }
            RepoError::Alias(e) => write!(f, "{e}"),
            RepoError::CustomMismatch => {
                f.write_str("custom.odl does not match the replayed session")
            }
        }
    }
}

impl std::error::Error for RepoError {}

impl From<io::Error> for RepoError {
    fn from(e: io::Error) -> Self {
        RepoError::Io(e)
    }
}

impl From<OdlError> for RepoError {
    fn from(e: OdlError) -> Self {
        RepoError::Odl(e)
    }
}

impl From<LowerError> for RepoError {
    fn from(e: LowerError) -> Self {
        RepoError::Lower(e)
    }
}

impl From<AliasError> for RepoError {
    fn from(e: AliasError) -> Self {
        RepoError::Alias(e)
    }
}

/// The repository: a [`Workspace`] plus persistence.
#[derive(Debug, Clone)]
pub struct Repository {
    workspace: Workspace,
    /// Abstract roots synthesized at ingest (single-root normalization).
    created_roots: Vec<String>,
    /// Local names (§5 extension): canonical → designer-chosen.
    aliases: AliasTable,
}

impl Repository {
    /// Ingest a shrink wrap schema: normalize multi-root generalization
    /// hierarchies (paper §3.2) and open a fresh workspace on the result.
    pub fn ingest(mut shrink_wrap: SchemaGraph) -> Self {
        let created_roots = normalize_single_root(&mut shrink_wrap);
        Repository {
            workspace: Workspace::new(shrink_wrap),
            created_roots,
            aliases: AliasTable::new(),
        }
    }

    /// Ingest from extended-ODL source text.
    pub fn ingest_odl(source: &str) -> Result<Self, RepoError> {
        let ast = parse_schema(source)?;
        let graph = schema_to_graph(&ast)?;
        Ok(Repository::ingest(graph))
    }

    /// The live workspace.
    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    /// The live workspace, mutably (to apply operations).
    pub fn workspace_mut(&mut self) -> &mut Workspace {
        &mut self.workspace
    }

    /// Abstract roots created by single-root normalization at ingest.
    pub fn created_roots(&self) -> &[String] {
        &self.created_roots
    }

    /// The custom schema as canonical extended-ODL text (canonical names).
    pub fn custom_schema_odl(&self) -> String {
        print_schema(&graph_to_schema(self.workspace.working()))
    }

    /// The custom schema as extended-ODL text with the designer's local
    /// names applied (§5 extension). Equal to
    /// [`Self::custom_schema_odl`] when no aliases are registered.
    pub fn custom_schema_local_odl(&self) -> String {
        print_schema(
            &self
                .aliases
                .apply(&graph_to_schema(self.workspace.working())),
        )
    }

    /// The local-name table.
    pub fn aliases(&self) -> &AliasTable {
        &self.aliases
    }

    /// Register a local name for a type.
    pub fn set_type_alias(&mut self, canonical: &str, local: &str) -> Result<(), RepoError> {
        let schema = graph_to_schema(self.workspace.working());
        self.aliases.set_type_alias(&schema, canonical, local)?;
        Ok(())
    }

    /// Register a local name for a member of a type.
    pub fn set_member_alias(
        &mut self,
        ty: &str,
        canonical: &str,
        local: &str,
    ) -> Result<(), RepoError> {
        let schema = graph_to_schema(self.workspace.working());
        self.aliases
            .set_member_alias(&schema, ty, canonical, local)?;
        Ok(())
    }

    /// The shrink wrap schema as canonical extended-ODL text.
    pub fn shrink_wrap_odl(&self) -> String {
        print_schema(&graph_to_schema(self.workspace.shrink_wrap()))
    }

    /// Derive the shrink-wrap ↔ custom mapping.
    pub fn mapping(&self) -> Mapping {
        Mapping::derive(&self.workspace)
    }

    /// Run the consistency checks on the custom schema (served by the
    /// workspace's incremental engine).
    pub fn consistency(&self) -> ConsistencyReport {
        self.workspace.consistency()
    }

    /// The op log in the persistent line format.
    pub fn render_log(&self) -> String {
        let mut out = String::new();
        for record in self.workspace.log() {
            out.push_str(record.context.tag());
            out.push('\t');
            out.push_str(&print_op(&record.op));
            out.push('\n');
        }
        out
    }

    /// Save the session to `dir` (created if needed).
    pub fn save(&self, dir: &Path) -> Result<(), RepoError> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(SHRINK_WRAP_FILE), self.shrink_wrap_odl())?;
        fs::write(dir.join(SESSION_FILE), self.render_log())?;
        fs::write(dir.join(CUSTOM_FILE), self.custom_schema_odl())?;
        fs::write(dir.join(MAPPING_FILE), self.mapping().render())?;
        if !self.aliases.is_empty() {
            fs::write(dir.join(ALIASES_FILE), self.aliases.render())?;
        }
        Ok(())
    }

    /// Load a session from `dir`, replaying the op log through the full
    /// pipeline and verifying the stored custom schema (if present).
    pub fn load(dir: &Path) -> Result<Self, RepoError> {
        let sw_text = fs::read_to_string(dir.join(SHRINK_WRAP_FILE))?;
        let ast = parse_schema(&sw_text)?;
        let graph = schema_to_graph(&ast)?;
        // The saved shrink wrap is already normalized; ingest is idempotent.
        let mut repo = Repository::ingest(graph);

        let log_path = dir.join(SESSION_FILE);
        if log_path.exists() {
            let log_text = fs::read_to_string(&log_path)?;
            for (i, raw) in log_text.lines().enumerate() {
                let line_no = i + 1;
                let line = raw.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let record = parse_log_line(line).ok_or_else(|| RepoError::BadLogLine {
                    line: line_no,
                    content: raw.to_string(),
                })?;
                let (context, op) = record;
                repo.workspace
                    .apply(context, op)
                    .map_err(|source| RepoError::Replay {
                        line: line_no,
                        source,
                    })?;
            }
        }

        let alias_path = dir.join(ALIASES_FILE);
        if alias_path.exists() {
            let text = fs::read_to_string(&alias_path)?;
            repo.aliases =
                AliasTable::parse(&text).map_err(|line| RepoError::BadAliasLine { line })?;
        }

        let custom_path = dir.join(CUSTOM_FILE);
        if custom_path.exists() {
            let custom_text = fs::read_to_string(&custom_path)?;
            let stored = schema_to_graph(&parse_schema(&custom_text)?)?;
            if graph_to_schema(&stored) != graph_to_schema(repo.workspace.working()) {
                return Err(RepoError::CustomMismatch);
            }
        }
        Ok(repo)
    }
}

/// Parse one `<context>\t<statement>` log line.
fn parse_log_line(line: &str) -> Option<(ConceptKind, ModOp)> {
    let (tag, stmt) = line.split_once(['\t', ' '])?;
    let context = ConceptKind::from_tag(tag)?;
    let op = parse_statement(stmt.trim()).ok()?;
    Some((context, op))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_core::ModOp;
    use sws_odl::DomainType;

    fn repo() -> Repository {
        let src = r#"
        schema Dept {
            interface Person { attribute string name; }
            interface Employee : Person {
                attribute long badge;
                relationship Department works_in_a inverse Department::has;
            }
            interface Department {
                extent departments;
                relationship set<Employee> has inverse Employee::works_in_a;
            }
        }"#;
        Repository::ingest_odl(src).unwrap()
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sws_repo_test_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let mut repo = repo();
        repo.workspace_mut()
            .apply(
                ConceptKind::WagonWheel,
                ModOp::AddTypeDefinition {
                    ty: "Project".into(),
                },
            )
            .unwrap();
        repo.workspace_mut()
            .apply(
                ConceptKind::WagonWheel,
                ModOp::AddAttribute {
                    ty: "Project".into(),
                    domain: DomainType::String,
                    size: Some(32),
                    name: "code_name".into(),
                },
            )
            .unwrap();
        repo.workspace_mut()
            .apply(
                ConceptKind::Generalization,
                ModOp::ModifyRelationshipTargetType {
                    ty: "Department".into(),
                    path: "has".into(),
                    old_target: "Employee".into(),
                    new_target: "Person".into(),
                },
            )
            .unwrap();

        let dir = tmpdir("round_trip");
        repo.save(&dir).unwrap();
        let loaded = Repository::load(&dir).unwrap();
        assert_eq!(
            graph_to_schema(loaded.workspace().working()),
            graph_to_schema(repo.workspace().working())
        );
        assert_eq!(loaded.workspace().log().len(), 3);
        // The replayed impact matches too.
        assert_eq!(
            loaded.workspace().log()[2].impact,
            repo.workspace().log()[2].impact
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ingest_normalizes_multi_root_hierarchies() {
        let src = r#"
        interface A { }
        interface B { }
        interface C : A, B { }"#;
        let repo = Repository::ingest_odl(src).unwrap();
        assert_eq!(repo.created_roots().len(), 1);
        assert!(repo
            .workspace()
            .shrink_wrap()
            .type_id(&repo.created_roots()[0])
            .is_some());
    }

    #[test]
    fn tampered_custom_schema_detected() {
        let repo = repo();
        let dir = tmpdir("tampered");
        repo.save(&dir).unwrap();
        fs::write(dir.join(CUSTOM_FILE), "schema X { interface Alien { } }").unwrap();
        assert!(matches!(
            Repository::load(&dir),
            Err(RepoError::CustomMismatch)
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_log_line_reported_with_number() {
        let repo = repo();
        let dir = tmpdir("badlog");
        repo.save(&dir).unwrap();
        fs::write(
            dir.join(SESSION_FILE),
            "# comment\nnot_a_context\tadd_type_definition(X)\n",
        )
        .unwrap();
        match Repository::load(&dir) {
            Err(RepoError::BadLogLine { line, .. }) => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_failure_reports_line_and_cause() {
        let repo = repo();
        let dir = tmpdir("replayfail");
        repo.save(&dir).unwrap();
        // An op that violates Table 1: a move in a wagon wheel context.
        fs::write(
            dir.join(SESSION_FILE),
            "wagon_wheel\tmodify_attribute(Employee, badge, Person)\n",
        )
        .unwrap();
        fs::remove_file(dir.join(CUSTOM_FILE)).unwrap();
        match Repository::load(&dir) {
            Err(RepoError::Replay { line: 1, source }) => {
                assert!(matches!(source, OpError::NotPermitted { .. }));
            }
            other => panic!("{other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aliases_persist_and_render() {
        let mut repo = repo();
        repo.set_type_alias("Employee", "StaffMember").unwrap();
        repo.set_member_alias("Employee", "badge", "staff_id")
            .unwrap();
        // Canonical output unchanged; local output renamed.
        assert!(repo.custom_schema_odl().contains("interface Employee"));
        let local = repo.custom_schema_local_odl();
        assert!(local.contains("interface StaffMember : Person"), "{local}");
        assert!(local.contains("attribute long staff_id;"));
        assert!(local.contains("relationship set<StaffMember> has"));

        let dir = tmpdir("aliases");
        repo.save(&dir).unwrap();
        let loaded = Repository::load(&dir).unwrap();
        assert_eq!(loaded.aliases(), repo.aliases());
        assert_eq!(
            loaded.custom_schema_local_odl(),
            repo.custom_schema_local_odl()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn alias_collisions_surface_as_repo_errors() {
        let mut repo = repo();
        assert!(matches!(
            repo.set_type_alias("Employee", "Person"),
            Err(RepoError::Alias(_))
        ));
    }

    #[test]
    fn log_format_is_line_per_op() {
        let mut repo = repo();
        repo.workspace_mut()
            .apply(
                ConceptKind::WagonWheel,
                ModOp::AddTypeDefinition { ty: "X".into() },
            )
            .unwrap();
        let log = repo.render_log();
        assert_eq!(log, "wagon_wheel\tadd_type_definition(X)\n");
    }

    #[test]
    fn reports_available() {
        let repo = repo();
        assert!(repo.custom_schema_odl().contains("interface Person"));
        assert!(repo.mapping().render().contains("reuse 100.0%"));
        // Person/Employee carry no keys — consistency may warn, but must run.
        let _ = repo.consistency();
    }
}
