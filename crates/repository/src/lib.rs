//! The schema repository (paper Fig. 1, activity 12): durable storage for
//! the shrink wrap schema, the design workspace, the custom schema, and the
//! mapping.
//!
//! The paper's prototype persisted the repository as an ObjectStore
//! database. We substitute a transparent, replayable representation (see
//! DESIGN.md §2 and docs/robustness.md): a session directory containing
//!
//! * `shrink_wrap.odl` — the shrink wrap schema as extended-ODL text,
//! * `session.ops` — the operation log, **append-only**, one
//!   `<checksum>\t<seq>\t<context>\t<statement>` line per applied
//!   operation in the modification language (the checksum covers the rest
//!   of the line, so a torn tail is detectable record by record; the
//!   global sequence number makes truncation and archiving idempotent),
//! * `snapshot.<gen>` — checkpoint images of the working schema (see
//!   [`snapshot`]), so load replays only the short tail after the newest
//!   snapshot instead of the whole log,
//! * `session.ops.archive` — the append-only archive of every op-log
//!   prefix truncated by a checkpoint (never rewritten: full-log replay
//!   stays possible as the salvage layer of last resort),
//! * `custom.odl` — the derived custom schema (informative; regenerated
//!   and verified against the replay on load),
//! * `mapping.txt` — the rendered shrink-wrap ↔ custom mapping
//!   (informative),
//! * `MANIFEST` — format version plus per-file checksums and checkpoint
//!   state, written atomically last: the commit record of a save or a
//!   checkpoint.
//!
//! All I/O goes through the [`io::RepoIo`] abstraction; saves are
//! write-temp → fsync → atomic-rename, so a crash at any point leaves
//! either the old or the new content of every file, never a torn mixture
//! (the property tests in `tests/crash_consistency.rs` sweep every
//! injected crash point and assert exactly that against the `diff_graphs`
//! oracle).
//!
//! Two load modes:
//!
//! * [`Repository::load`] — strict: replays `session.ops` against
//!   `shrink_wrap.odl` through the full permission/constraint pipeline and
//!   fails on the first inconsistency, so a loaded session is exactly as
//!   valid as the live one that saved it.
//! * [`Repository::load_salvage`] — salvage: verifies checksums, replays
//!   the longest valid prefix of the op log, quarantines bad lines to
//!   `session.ops.quarantine`, repairs the directory, and returns a
//!   structured [`RecoveryReport`] instead of an error. Only an unusable
//!   shrink wrap schema is fatal.
#![forbid(unsafe_code)]

use std::fmt;
use std::io as stdio;
use std::path::Path;

pub mod checksum;
pub mod io;
pub mod manifest;
pub mod recovery;
pub mod snapshot;

use std::collections::BTreeMap;

use checksum::{from_hex, looks_like_hex, to_hex};
use io::{RealIo, RepoIo};
pub use manifest::{CheckpointMeta, SnapshotRef, FORMAT_VERSION, MANIFEST_FILE};
use manifest::{Manifest, ManifestError};
pub use recovery::{BadOp, DamageKind, FileDamage, LoadPath, ManifestStatus, RecoveryReport};
pub use snapshot::{snapshot_file, Snapshot, SnapshotError};

use sws_core::concept::normalize_single_root;
use sws_core::consistency::ConsistencyReport;
use sws_core::mapping::derive_mapping;
use sws_core::oplang::{parse_statement, print_op};
use sws_core::{AliasError, AliasTable, ConceptKind, Mapping, ModOp, OpError, Workspace};
use sws_model::{graph_to_schema, schema_to_graph, LowerError, SchemaGraph};
use sws_odl::{parse_schema, print_schema, OdlError};

/// File name of the shrink wrap schema.
pub const SHRINK_WRAP_FILE: &str = "shrink_wrap.odl";
/// File name of the op log.
pub const SESSION_FILE: &str = "session.ops";
/// File name of the derived custom schema.
pub const CUSTOM_FILE: &str = "custom.odl";
/// File name of the rendered mapping.
pub const MAPPING_FILE: &str = "mapping.txt";
/// File name of the local-name (alias) table (§5 extension).
pub const ALIASES_FILE: &str = "local_names.txt";
/// Base name bad op-log lines are quarantined to by salvage loading; the
/// actual files are numbered (`session.ops.quarantine.N`) so repeated
/// salvages never overwrite earlier forensic evidence.
pub const QUARANTINE_FILE: &str = "session.ops.quarantine";
/// File name of the append-only archive of checkpoint-truncated op-log
/// prefixes. Never rewritten or pruned: it is the full-replay fallback.
pub const ARCHIVE_FILE: &str = "session.ops.archive";

/// Errors loading or saving a repository.
#[derive(Debug)]
pub enum RepoError {
    /// Filesystem failure.
    Io(stdio::Error),
    /// The shrink wrap ODL did not parse.
    Odl(OdlError),
    /// The shrink wrap schema did not lower.
    Lower(LowerError),
    /// Replaying line `line` of the op log failed.
    Replay { line: usize, source: OpError },
    /// A malformed or checksum-mismatched op-log line.
    BadLogLine { line: usize, content: String },
    /// A malformed local-names line.
    BadAliasLine { line: usize },
    /// An alias collided when registering it.
    Alias(AliasError),
    /// `custom.odl` exists but disagrees with the replayed session.
    CustomMismatch,
    /// A file failed checksum or structural verification (strict mode).
    Corrupt { file: String, detail: String },
    /// The directory was written by a newer format version.
    UnsupportedVersion(u32),
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::Io(e) => write!(f, "I/O error: {e}"),
            RepoError::Odl(e) => write!(f, "{e}"),
            RepoError::Lower(e) => write!(f, "{e}"),
            RepoError::Replay { line, source } => {
                write!(f, "replay failed at op-log line {line}: {source}")
            }
            RepoError::BadLogLine { line, content } => {
                write!(f, "malformed op-log line {line}: {content:?}")
            }
            RepoError::BadAliasLine { line } => {
                write!(f, "malformed local-names line {line}")
            }
            RepoError::Alias(e) => write!(f, "{e}"),
            RepoError::CustomMismatch => {
                f.write_str("custom.odl does not match the replayed session")
            }
            RepoError::Corrupt { file, detail } => {
                write!(f, "corrupt session file {file}: {detail}")
            }
            RepoError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "session directory uses format v{v}, newer than this build (v{FORMAT_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for RepoError {}

impl From<stdio::Error> for RepoError {
    fn from(e: stdio::Error) -> Self {
        RepoError::Io(e)
    }
}

impl From<OdlError> for RepoError {
    fn from(e: OdlError) -> Self {
        RepoError::Odl(e)
    }
}

impl From<LowerError> for RepoError {
    fn from(e: LowerError) -> Self {
        RepoError::Lower(e)
    }
}

impl From<AliasError> for RepoError {
    fn from(e: AliasError) -> Self {
        RepoError::Alias(e)
    }
}

/// How [`Repository::load_with`] treats damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Fail on the first inconsistency (checksum, parse, replay).
    Strict,
    /// Keep the longest valid prefix, quarantine the rest, report.
    Salvage,
}

/// Render one durable op-log record:
/// `<checksum>\t<seq>\t<context>\t<statement>\n`, where the checksum
/// covers everything after its tab. `seq` is the op's global sequence
/// number across the whole session (archived prefixes included), which
/// makes checkpoint truncation and archiving idempotent: a record is
/// identified by its sequence, not its position in a file.
pub fn durable_log_line(seq: u64, context: ConceptKind, op: &ModOp) -> String {
    let body = format!("{seq}\t{}\t{}", context.tag(), print_op(op));
    format!("{}\t{body}\n", to_hex(checksum::checksum(body.as_bytes())))
}

/// Append one op record to `dir/session.ops` and fsync — the autosave hot
/// path: one small append per applied op instead of a full rewrite.
pub fn append_log_line(
    io: &dyn RepoIo,
    dir: &Path,
    seq: u64,
    context: ConceptKind,
    op: &ModOp,
) -> Result<(), RepoError> {
    let line = durable_log_line(seq, context, op);
    let mut sp = sws_trace::span!("repo.append", bytes = line.len());
    io.append_sync(&dir.join(SESSION_FILE), line.as_bytes())?;
    sp.record("verdict", "ok");
    Ok(())
}

/// The repository: a [`Workspace`] plus persistence.
#[derive(Debug, Clone)]
pub struct Repository {
    workspace: Workspace,
    /// Abstract roots synthesized at ingest (single-root normalization).
    created_roots: Vec<String>,
    /// Local names (§5 extension): canonical → designer-chosen.
    aliases: AliasTable,
    /// Global sequence number of the first in-memory log record: the
    /// coverage of the snapshot this session resumed from (0 when the
    /// session replayed from the shrink wrap).
    base_seq: u64,
    /// Move ops from the archived prefix `[0, base_seq)`, preserved by the
    /// snapshot so [`Self::mapping`] can still derive move dispositions.
    seed_moves: Vec<(ConceptKind, ModOp)>,
    /// Checkpoint state as committed on disk (generation + retained
    /// snapshots); default for never-checkpointed sessions.
    checkpoint: CheckpointMeta,
}

/// What [`Repository::checkpoint_with`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointOutcome {
    /// The committed checkpoint generation.
    pub generation: u64,
    /// Total ops the new snapshot covers.
    pub ops_covered: u64,
    /// Ops moved from the live tail into the archive.
    pub archived_ops: u64,
    /// Bytes appended to the archive.
    pub archived_bytes: u64,
    /// Snapshot files pruned by the retention policy (newest + previous).
    pub pruned: Vec<String>,
}

impl Repository {
    /// Ingest a shrink wrap schema: normalize multi-root generalization
    /// hierarchies (paper §3.2) and open a fresh workspace on the result.
    pub fn ingest(mut shrink_wrap: SchemaGraph) -> Self {
        let created_roots = normalize_single_root(&mut shrink_wrap);
        Repository {
            workspace: Workspace::new(shrink_wrap),
            created_roots,
            aliases: AliasTable::new(),
            base_seq: 0,
            seed_moves: Vec::new(),
            checkpoint: CheckpointMeta::default(),
        }
    }

    /// Ingest a shrink wrap schema and resume the workspace from a
    /// checkpointed working image instead of a copy of the shrink wrap.
    /// The caller seeds `base_seq` / `seed_moves` / `checkpoint` from the
    /// snapshot it verified.
    fn ingest_resumed(mut shrink_wrap: SchemaGraph, working: SchemaGraph) -> Self {
        let created_roots = normalize_single_root(&mut shrink_wrap);
        Repository {
            workspace: Workspace::resume(shrink_wrap, working),
            created_roots,
            aliases: AliasTable::new(),
            base_seq: 0,
            seed_moves: Vec::new(),
            checkpoint: CheckpointMeta::default(),
        }
    }

    /// Ingest from extended-ODL source text.
    pub fn ingest_odl(source: &str) -> Result<Self, RepoError> {
        let ast = parse_schema(source)?;
        let graph = schema_to_graph(&ast)?;
        Ok(Repository::ingest(graph))
    }

    /// The live workspace.
    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    /// The live workspace, mutably (to apply operations).
    pub fn workspace_mut(&mut self) -> &mut Workspace {
        &mut self.workspace
    }

    /// Abstract roots created by single-root normalization at ingest.
    pub fn created_roots(&self) -> &[String] {
        &self.created_roots
    }

    /// The custom schema as canonical extended-ODL text (canonical names).
    pub fn custom_schema_odl(&self) -> String {
        print_schema(&graph_to_schema(self.workspace.working()))
    }

    /// The custom schema as extended-ODL text with the designer's local
    /// names applied (§5 extension). Equal to
    /// [`Self::custom_schema_odl`] when no aliases are registered.
    pub fn custom_schema_local_odl(&self) -> String {
        print_schema(
            &self
                .aliases
                .apply(&graph_to_schema(self.workspace.working())),
        )
    }

    /// The local-name table.
    pub fn aliases(&self) -> &AliasTable {
        &self.aliases
    }

    /// Register a local name for a type.
    pub fn set_type_alias(&mut self, canonical: &str, local: &str) -> Result<(), RepoError> {
        let schema = graph_to_schema(self.workspace.working());
        self.aliases.set_type_alias(&schema, canonical, local)?;
        Ok(())
    }

    /// Register a local name for a member of a type.
    pub fn set_member_alias(
        &mut self,
        ty: &str,
        canonical: &str,
        local: &str,
    ) -> Result<(), RepoError> {
        let schema = graph_to_schema(self.workspace.working());
        self.aliases
            .set_member_alias(&schema, ty, canonical, local)?;
        Ok(())
    }

    /// The shrink wrap schema as canonical extended-ODL text.
    pub fn shrink_wrap_odl(&self) -> String {
        print_schema(&graph_to_schema(self.workspace.shrink_wrap()))
    }

    /// Derive the shrink-wrap ↔ custom mapping. Move ops archived by a
    /// checkpoint are replayed symbolically from the snapshot's preserved
    /// `moves` section, ahead of the live log — the result is identical to
    /// a full-log derivation.
    pub fn mapping(&self) -> Mapping {
        derive_mapping(
            self.workspace.shrink_wrap(),
            self.workspace.working(),
            self.seed_moves
                .iter()
                .map(|(_, op)| op)
                .chain(self.workspace.log().iter().map(|r| &r.op)),
        )
    }

    /// Total committed ops across the whole session: the archived prefix
    /// plus the in-memory log.
    pub fn total_ops(&self) -> u64 {
        self.base_seq + self.workspace.log().len() as u64
    }

    /// Global sequence number of the first in-memory log record.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// Checkpoint state (generation + retained snapshots) as committed.
    pub fn checkpoint_state(&self) -> &CheckpointMeta {
        &self.checkpoint
    }

    /// Sequence number the durable op-log tail starts at.
    pub fn tail_start(&self) -> u64 {
        self.checkpoint.tail_start().max(self.base_seq)
    }

    /// Run the consistency checks on the custom schema (served by the
    /// workspace's incremental engine).
    pub fn consistency(&self) -> ConsistencyReport {
        self.workspace.consistency()
    }

    /// The op log in the human-readable line format (no checksums), as
    /// shown by the `log` REPL command.
    pub fn render_log(&self) -> String {
        let mut out = String::new();
        for record in self.workspace.log() {
            out.push_str(record.context.tag());
            out.push('\t');
            out.push_str(&print_op(&record.op));
            out.push('\n');
        }
        out
    }

    /// The whole in-memory op log in the durable checksummed-line format.
    pub fn render_durable_log(&self) -> String {
        self.render_log_from(self.base_seq)
    }

    /// Render the durable form of every in-memory record with a global
    /// sequence number `>= from_seq`.
    fn render_log_from(&self, from_seq: u64) -> String {
        let mut out = String::new();
        for (i, record) in self.workspace.log().iter().enumerate() {
            let seq = self.base_seq + i as u64;
            if seq < from_seq {
                continue;
            }
            out.push_str(&durable_log_line(seq, record.context, &record.op));
        }
        out
    }

    /// Save the session to `dir` (created if needed) on the real
    /// filesystem.
    pub fn save(&self, dir: &Path) -> Result<(), RepoError> {
        self.save_with(&RealIo, dir)
    }

    /// Save through an explicit I/O implementation. Every file is written
    /// atomically (write-temp → fsync → rename); the `MANIFEST` — the
    /// commit record carrying per-file checksums and checkpoint state —
    /// is written last.
    pub fn save_with(&self, io: &dyn RepoIo, dir: &Path) -> Result<(), RepoError> {
        let mut sp = sws_trace::span!("repo.save");
        io.create_dir_all(dir)?;
        let meta = self.effective_checkpoint(io, dir);
        let tail_start = meta.tail_start().max(self.base_seq);
        // The op log is self-validating per line and append-only, so it is
        // not manifested: appends must not invalidate the manifest. The
        // shrink wrap goes second-to-last on purpose: loading requires it,
        // so a crash earlier in a fresh-directory save leaves *no* loadable
        // session (the pre-save state) rather than one with a silently
        // truncated op log.
        io.write_atomic(
            &dir.join(SESSION_FILE),
            self.render_log_from(tail_start).as_bytes(),
        )?;
        let files = self.write_derived_and_manifest(io, dir, &meta)?;
        sp.record("files", files + 2);
        Ok(())
    }

    /// The checkpoint state a save may legitimately commit right now:
    /// snapshots whose coverage exceeds the current op count (a deep undo
    /// rewound past them) or whose file is gone (pruned by a later
    /// checkpoint on disk) are dropped, so the manifest never references a
    /// snapshot the tail being written does not compose with.
    fn effective_checkpoint(&self, io: &dyn RepoIo, dir: &Path) -> CheckpointMeta {
        let total = self.total_ops();
        let mut meta = self.checkpoint.clone();
        meta.snapshots
            .retain(|s| s.ops <= total && io.exists(&dir.join(snapshot_file(s.generation))));
        meta
    }

    /// Write the derived whole-file artifacts and then the manifest (the
    /// commit record) carrying `meta`. Returns the file count written.
    fn write_derived_and_manifest(
        &self,
        io: &dyn RepoIo,
        dir: &Path,
        meta: &CheckpointMeta,
    ) -> Result<usize, RepoError> {
        let mut manifest = Manifest::new();
        manifest.set_checkpoint(meta.clone());
        let mut files = 0usize;
        let mut write = |name: &str, data: &str| -> Result<(), RepoError> {
            io.write_atomic(&dir.join(name), data.as_bytes())?;
            manifest.insert(name, data.as_bytes());
            files += 1;
            Ok(())
        };
        write(CUSTOM_FILE, &self.custom_schema_odl())?;
        write(MAPPING_FILE, &self.mapping().render())?;
        if !self.aliases.is_empty() {
            write(ALIASES_FILE, &self.aliases.render())?;
        }
        write(SHRINK_WRAP_FILE, &self.shrink_wrap_odl())?;
        io.write_atomic(&dir.join(MANIFEST_FILE), manifest.render().as_bytes())?;
        Ok(files + 1)
    }

    /// Checkpoint to `dir` on the real filesystem. See
    /// [`Self::checkpoint_with`].
    pub fn checkpoint(&mut self, dir: &Path) -> Result<Option<CheckpointOutcome>, RepoError> {
        self.checkpoint_with(&RealIo, dir)
    }

    /// Write a checkpoint: snapshot the working schema, archive the
    /// replayed tail, commit both via a new MANIFEST generation, then
    /// truncate the tail — so the next load is snapshot + short tail
    /// instead of a full replay.
    ///
    /// Ordering is the crash contract (every step goes through the same
    /// atomic [`RepoIo`] primitives the save path uses):
    ///
    /// 1. `snapshot.<gen>` written atomically (an orphan until committed);
    /// 2. the tail's records appended to `session.ops.archive` (duplicate
    ///    appends after a crashed attempt are resolved by sequence
    ///    numbers, last occurrence wins);
    /// 3. derived files + the v2 MANIFEST naming the snapshot — the
    ///    **commit point**: a crash before this loads the old state, after
    ///    it the new;
    /// 4. `session.ops` truncated (stale records are skipped by their
    ///    sequence numbers even if this never lands);
    /// 5. snapshots beyond the retention pair (newest + previous) removed.
    ///
    /// Returns `Ok(None)` when there is nothing new to checkpoint.
    pub fn checkpoint_with(
        &mut self,
        io: &dyn RepoIo,
        dir: &Path,
    ) -> Result<Option<CheckpointOutcome>, RepoError> {
        let total = self.total_ops();
        let meta = self.effective_checkpoint(io, dir);
        let tail_start = meta.tail_start().max(self.base_seq);
        if total == tail_start {
            return Ok(None);
        }
        let mut sp = sws_trace::span!("repo.checkpoint", ops = total);
        io.create_dir_all(dir)?;

        // 1. The snapshot image: working schema + the move ops the mapping
        //    derivation needs, covering every op up to `total`.
        let generation = self.checkpoint.generation + 1;
        let mut moves = self.seed_moves.clone();
        for record in self.workspace.log() {
            if is_move_op(&record.op) {
                moves.push((record.context, record.op.clone()));
            }
        }
        let snap = Snapshot {
            generation,
            ops: total,
            working_odl: self.custom_schema_odl(),
            moves,
        };
        let snap_bytes = snap.render();
        io.write_atomic(&dir.join(snapshot_file(generation)), snap_bytes.as_bytes())?;

        // 2. Archive the records the truncation will drop from the tail.
        let archived = self.render_log_from(tail_start);
        io.append_sync(&dir.join(ARCHIVE_FILE), archived.as_bytes())?;

        // 3. Commit: derived files, then the v2 manifest naming the new
        //    snapshot (and retaining the previous newest as a fallback).
        let mut retained = meta.snapshots;
        let pruned: Vec<String> = if retained.is_empty() {
            Vec::new()
        } else {
            retained
                .drain(..retained.len() - 1)
                .map(|s| snapshot_file(s.generation))
                .collect()
        };
        retained.push(SnapshotRef {
            generation,
            ops: total,
            len: snap_bytes.len() as u64,
            checksum: checksum::checksum(snap_bytes.as_bytes()),
        });
        let new_meta = CheckpointMeta {
            generation,
            snapshots: retained,
        };
        self.write_derived_and_manifest(io, dir, &new_meta)?;
        self.checkpoint = new_meta;
        sws_trace::counter("repo.checkpoint.written", 1);
        sws_trace::counter("repo.checkpoint.ops_covered", total);
        sws_trace::counter("repo.checkpoint.archived_bytes", archived.len() as u64);

        // 4–5. Post-commit cleanup. Failures here are reported but cannot
        // un-commit: stale tail records are skipped by sequence number and
        // orphan snapshots are ignored by the manifest.
        io.write_atomic(&dir.join(SESSION_FILE), b"")?;
        for name in &pruned {
            io.remove(&dir.join(name))?;
        }
        sws_trace::counter("repo.checkpoint.pruned", pruned.len() as u64);
        sp.record("generation", generation as usize);
        Ok(Some(CheckpointOutcome {
            generation,
            ops_covered: total,
            archived_ops: total - tail_start,
            archived_bytes: archived.len() as u64,
            pruned,
        }))
    }

    /// Load a session from `dir` strictly: replay the whole op log through
    /// the full pipeline, verify every checksum and the stored custom
    /// schema, and fail on the first inconsistency.
    pub fn load(dir: &Path) -> Result<Self, RepoError> {
        Repository::load_with(&RealIo, dir, LoadMode::Strict).map(|(repo, _)| repo)
    }

    /// Load a session from `dir` in salvage mode: keep the longest valid
    /// prefix of the op log, quarantine bad lines, repair the directory,
    /// and report. Fails only when the shrink wrap schema itself is
    /// unreadable or unparseable.
    pub fn load_salvage(dir: &Path) -> Result<(Self, RecoveryReport), RepoError> {
        Repository::load_with(&RealIo, dir, LoadMode::Salvage)
    }

    /// Load through an explicit I/O implementation in the given mode.
    pub fn load_with(
        io: &dyn RepoIo,
        dir: &Path,
        mode: LoadMode,
    ) -> Result<(Self, RecoveryReport), RepoError> {
        let salvage = mode == LoadMode::Salvage;
        let mut sp = sws_trace::span!(
            "repo.load",
            mode = if salvage { "salvage" } else { "strict" }
        );
        let mut damage: Vec<FileDamage> = Vec::new();
        let mut regenerated: Vec<String> = Vec::new();

        // --- MANIFEST: the commit record --------------------------------
        let manifest_path = dir.join(MANIFEST_FILE);
        let (manifest, manifest_status) = if io.exists(&manifest_path) {
            let text = String::from_utf8_lossy(&io.read(&manifest_path)?).into_owned();
            match Manifest::parse(&text) {
                Ok(m) => (Some(m), ManifestStatus::Ok),
                Err(ManifestError::UnsupportedVersion(v)) => {
                    // Never reinterpret (or "repair") a future format.
                    return Err(RepoError::UnsupportedVersion(v));
                }
                Err(e) if salvage => (None, ManifestStatus::Damaged(e.to_string())),
                Err(e) => {
                    return Err(RepoError::Corrupt {
                        file: MANIFEST_FILE.into(),
                        detail: e.to_string(),
                    })
                }
            }
        } else {
            (None, ManifestStatus::Missing)
        };
        let verify = |name: &str, data: &[u8]| -> Option<bool> {
            manifest.as_ref().and_then(|m| m.verify(name, data))
        };

        // --- shrink wrap: the one unsalvageable file ---------------------
        let sw_bytes = io.read(&dir.join(SHRINK_WRAP_FILE))?;
        if verify(SHRINK_WRAP_FILE, &sw_bytes) == Some(false) {
            if !salvage {
                return Err(RepoError::Corrupt {
                    file: SHRINK_WRAP_FILE.into(),
                    detail: "checksum mismatch".into(),
                });
            }
            damage.push(FileDamage {
                file: SHRINK_WRAP_FILE.into(),
                kind: DamageKind::ChecksumMismatch,
                detail: "checksum mismatch; parsing anyway".into(),
            });
        }
        let sw_text = String::from_utf8_lossy(&sw_bytes);
        let ast = parse_schema(&sw_text)?;
        let graph = schema_to_graph(&ast)?;

        // --- op log: scan the tail (longest valid prefix) -----------------
        let manifest_ckpt = manifest
            .as_ref()
            .and_then(|m| m.checkpoint.clone())
            .unwrap_or_default();
        let log_path = dir.join(SESSION_FILE);
        let tail_text = if io.exists(&log_path) {
            match io.read(&log_path) {
                Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
                Err(e) if salvage => {
                    damage.push(FileDamage {
                        file: SESSION_FILE.into(),
                        kind: DamageKind::Unparseable,
                        detail: format!("unreadable: {e}"),
                    });
                    String::new()
                }
                Err(e) => return Err(RepoError::Io(e)),
            }
        } else {
            String::new()
        };
        let tail = scan_log(&tail_text, true);
        if let (false, Some(bad)) = (salvage, &tail.first_bad) {
            return Err(RepoError::BadLogLine {
                line: bad.line,
                content: bad.content.clone(),
            });
        }
        let mut ops_dropped = tail.dropped;
        let torn_tail = tail.torn_tail;
        let mut first_bad_op = tail.first_bad;
        let mut quarantine_lines = tail.quarantine_lines;
        let mut load_path = LoadPath::FullLog;
        let mut snapshot_ops = 0u64;

        // --- checkpoint layers: newest snapshot, older snapshot, full
        // replay — each tried only when the previous layer fails ----------
        let read_snapshot =
            |snap_ref: &SnapshotRef| -> Result<(Snapshot, SchemaGraph), (DamageKind, String)> {
                let path = dir.join(snapshot_file(snap_ref.generation));
                if !io.exists(&path) {
                    return Err((DamageKind::Missing, "listed in MANIFEST but missing".into()));
                }
                let bytes = io
                    .read(&path)
                    .map_err(|e| (DamageKind::Unparseable, format!("unreadable: {e}")))?;
                if bytes.len() as u64 != snap_ref.len
                    || checksum::checksum(&bytes) != snap_ref.checksum
                {
                    return Err((
                        DamageKind::ChecksumMismatch,
                        "checksum disagrees with MANIFEST".into(),
                    ));
                }
                let snap = Snapshot::parse(&bytes)
                    .map_err(|e| (DamageKind::Unparseable, e.to_string()))?;
                if snap.generation != snap_ref.generation || snap.ops != snap_ref.ops {
                    return Err((
                        DamageKind::ChecksumMismatch,
                        "snapshot metadata disagrees with MANIFEST".into(),
                    ));
                }
                let wgraph = parse_schema(&snap.working_odl)
                    .map_err(RepoError::from)
                    .and_then(|a| schema_to_graph(&a).map_err(RepoError::from))
                    .map_err(|e| (DamageKind::Unparseable, format!("working image: {e}")))?;
                Ok((snap, wgraph))
            };
        let mut resumed: Option<Repository> = None;
        for (i, snap_ref) in manifest_ckpt.snapshots.iter().enumerate().rev() {
            let newest = i + 1 == manifest_ckpt.snapshots.len();
            match read_snapshot(snap_ref) {
                Ok((snap, wgraph)) => {
                    let mut r = Repository::ingest_resumed(graph.clone(), wgraph);
                    r.base_seq = snap.ops;
                    r.seed_moves = snap.moves;
                    // Layers above this one are damaged: the committed
                    // state this session may build on ends here.
                    r.checkpoint = CheckpointMeta {
                        generation: manifest_ckpt.generation,
                        snapshots: manifest_ckpt.snapshots[..=i].to_vec(),
                    };
                    load_path = if newest {
                        LoadPath::Snapshot {
                            generation: snap.generation,
                        }
                    } else {
                        sws_trace::counter("repo.recovery.fallback_snapshot", 1);
                        LoadPath::FallbackSnapshot {
                            generation: snap.generation,
                        }
                    };
                    snapshot_ops = snap.ops;
                    resumed = Some(r);
                    break;
                }
                Err((kind, detail)) => {
                    sws_trace::counter("repo.recovery.snapshot_corrupt", 1);
                    if !salvage {
                        // Strict never falls back: the committed fast path
                        // is damaged, so the directory is corrupt.
                        return Err(RepoError::Corrupt {
                            file: snapshot_file(snap_ref.generation),
                            detail,
                        });
                    }
                    damage.push(FileDamage {
                        file: snapshot_file(snap_ref.generation),
                        kind,
                        detail,
                    });
                }
            }
        }
        let had_snapshots = !manifest_ckpt.snapshots.is_empty();
        // The saved shrink wrap is already normalized; ingest is idempotent.
        let mut repo = resumed.unwrap_or_else(|| {
            let mut r = Repository::ingest(graph);
            r.checkpoint = CheckpointMeta {
                generation: manifest_ckpt.generation,
                snapshots: Vec::new(),
            };
            if had_snapshots {
                load_path = LoadPath::FallbackFullReplay;
                sws_trace::counter("repo.recovery.fallback_full_replay", 1);
            }
            r
        });

        // --- replay: archive (salvage only) merged with the tail ----------
        // Strict trusts the committed snapshot + tail alone. Salvage also
        // merges the archive: the full-replay layer and damaged-manifest
        // recoveries need the truncated prefixes back, and the archive is
        // scanned skip-invalid (a crashed checkpoint retry may leave torn
        // duplicate segments; sequence numbers dedupe them, last
        // occurrence wins, live tail over archive).
        let archive_path = dir.join(ARCHIVE_FILE);
        let archive = if salvage && io.exists(&archive_path) {
            match io.read(&archive_path) {
                Ok(bytes) => scan_log(&String::from_utf8_lossy(&bytes), false).records,
                Err(_) => Vec::new(),
            }
        } else {
            Vec::new()
        };
        let mut tail_records = tail.records;
        for r in &mut tail_records {
            r.from_tail = true;
        }
        let records = merge_records(archive, tail_records, repo.base_seq);
        let (applied, stop) = replay_records(&mut repo.workspace, &records, repo.base_seq);
        let ops_replayed = applied;
        if let Some(stop) = stop {
            let (index, reason) = match &stop {
                ReplayStop::Gap {
                    index,
                    expected,
                    found,
                } => (
                    *index,
                    format!("sequence gap: expected op {expected}, found op {found}"),
                ),
                ReplayStop::Apply { index, source } => {
                    if !salvage {
                        return Err(RepoError::Replay {
                            line: records[*index].line,
                            source: source.clone(),
                        });
                    }
                    (*index, format!("replay rejected: {source}"))
                }
            };
            if !salvage {
                return Err(RepoError::Corrupt {
                    file: SESSION_FILE.into(),
                    detail: reason,
                });
            }
            // The failed record ends the valid prefix: it and every later
            // record (whose preconditions may depend on the lost op) are
            // dropped; the tail's share is quarantined.
            let failed = &records[index];
            ops_dropped += records.len() - index;
            first_bad_op = Some(BadOp {
                line: failed.line,
                content: durable_log_line(failed.seq, failed.context, &failed.op)
                    .trim_end()
                    .to_string(),
                reason,
            });
            if let Some(first_tail) = records[index..].iter().find(|r| r.from_tail) {
                quarantine_lines = tail_text
                    .lines()
                    .skip(first_tail.line - 1)
                    .map(|l| l.to_string())
                    .collect();
            }
        }

        // --- local names --------------------------------------------------
        let alias_path = dir.join(ALIASES_FILE);
        if io.exists(&alias_path) {
            let bytes = io.read(&alias_path)?;
            let checksum_ok = verify(ALIASES_FILE, &bytes);
            if checksum_ok == Some(false) && !salvage {
                return Err(RepoError::Corrupt {
                    file: ALIASES_FILE.into(),
                    detail: "checksum mismatch".into(),
                });
            }
            let text = String::from_utf8_lossy(&bytes);
            match AliasTable::parse(&text) {
                Ok(table) => {
                    repo.aliases = table;
                    if checksum_ok == Some(false) {
                        damage.push(FileDamage {
                            file: ALIASES_FILE.into(),
                            kind: DamageKind::ChecksumMismatch,
                            detail: "checksum mismatch; parsed anyway".into(),
                        });
                    }
                }
                Err(line) if salvage => damage.push(FileDamage {
                    file: ALIASES_FILE.into(),
                    kind: DamageKind::Unparseable,
                    detail: format!("malformed line {line}; local names dropped"),
                }),
                Err(line) => return Err(RepoError::BadAliasLine { line }),
            }
        }

        // --- derived files: verified, regenerable ------------------------
        let custom_path = dir.join(CUSTOM_FILE);
        if io.exists(&custom_path) {
            let bytes = io.read(&custom_path)?;
            if verify(CUSTOM_FILE, &bytes) == Some(false) {
                if !salvage {
                    return Err(RepoError::Corrupt {
                        file: CUSTOM_FILE.into(),
                        detail: "checksum mismatch".into(),
                    });
                }
                damage.push(FileDamage {
                    file: CUSTOM_FILE.into(),
                    kind: DamageKind::ChecksumMismatch,
                    detail: "checksum mismatch; regenerated from replay".into(),
                });
                regenerated.push(CUSTOM_FILE.into());
            } else {
                let custom_text = String::from_utf8_lossy(&bytes);
                let stored = match parse_schema(&custom_text)
                    .map_err(RepoError::from)
                    .and_then(|ast| schema_to_graph(&ast).map_err(RepoError::from))
                {
                    Ok(graph) => Some(graph),
                    Err(e) if salvage => {
                        damage.push(FileDamage {
                            file: CUSTOM_FILE.into(),
                            kind: DamageKind::Unparseable,
                            detail: format!("{e}; regenerated from replay"),
                        });
                        regenerated.push(CUSTOM_FILE.into());
                        None
                    }
                    Err(e) => return Err(e),
                };
                if let Some(stored) = stored {
                    if graph_to_schema(&stored) != graph_to_schema(repo.workspace.working()) {
                        if !salvage {
                            return Err(RepoError::CustomMismatch);
                        }
                        // Valid checksum but lagging the log: derived files
                        // go stale under append-only autosave. Replay wins.
                        damage.push(FileDamage {
                            file: CUSTOM_FILE.into(),
                            kind: DamageKind::Stale,
                            detail: "does not match the replayed session; regenerated".into(),
                        });
                        regenerated.push(CUSTOM_FILE.into());
                    }
                }
            }
        } else if manifest
            .as_ref()
            .is_some_and(|m| m.entries.contains_key(CUSTOM_FILE))
        {
            if !salvage {
                return Err(RepoError::Corrupt {
                    file: CUSTOM_FILE.into(),
                    detail: "listed in MANIFEST but missing".into(),
                });
            }
            damage.push(FileDamage {
                file: CUSTOM_FILE.into(),
                kind: DamageKind::Missing,
                detail: "listed in MANIFEST but missing; regenerated".into(),
            });
            regenerated.push(CUSTOM_FILE.into());
        }

        let mapping_path = dir.join(MAPPING_FILE);
        if io.exists(&mapping_path) {
            let bytes = io.read(&mapping_path)?;
            if verify(MAPPING_FILE, &bytes) == Some(false) {
                if !salvage {
                    return Err(RepoError::Corrupt {
                        file: MAPPING_FILE.into(),
                        detail: "checksum mismatch".into(),
                    });
                }
                damage.push(FileDamage {
                    file: MAPPING_FILE.into(),
                    kind: DamageKind::ChecksumMismatch,
                    detail: "checksum mismatch; regenerated from replay".into(),
                });
                regenerated.push(MAPPING_FILE.into());
            }
        } else if manifest
            .as_ref()
            .is_some_and(|m| m.entries.contains_key(MAPPING_FILE))
        {
            if !salvage {
                return Err(RepoError::Corrupt {
                    file: MAPPING_FILE.into(),
                    detail: "listed in MANIFEST but missing".into(),
                });
            }
            damage.push(FileDamage {
                file: MAPPING_FILE.into(),
                kind: DamageKind::Missing,
                detail: "listed in MANIFEST but missing; regenerated".into(),
            });
            regenerated.push(MAPPING_FILE.into());
        }

        // --- assemble the report -----------------------------------------
        let mut report = RecoveryReport::clean(
            manifest_status,
            ops_replayed,
            repo.consistency().findings.len(),
        );
        report.damage = damage;
        report.ops_dropped = ops_dropped;
        report.torn_tail = torn_tail;
        report.first_bad_op = first_bad_op;
        report.regenerated = regenerated;
        report.load_path = load_path;
        report.snapshot_ops = snapshot_ops;

        // --- heal: quarantine bad lines, rewrite a clean directory -------
        if salvage && !report.is_clean() {
            sws_trace::counter("repo.recovery.salvaged", 1);
            sws_trace::counter("repo.recovery.ops_replayed", report.ops_replayed as u64);
            sws_trace::counter("repo.recovery.ops_dropped", report.ops_dropped as u64);
            sws_trace::counter("repo.recovery.files_damaged", report.damage.len() as u64);
            let mut quarantine_file = None;
            let healed = (|| -> Result<(), RepoError> {
                if !quarantine_lines.is_empty() {
                    let name = next_quarantine_file(io, dir);
                    let mut blob = format!(
                        "# quarantined {} line(s) from {}\n",
                        quarantine_lines.len(),
                        SESSION_FILE
                    );
                    for line in &quarantine_lines {
                        blob.push_str(line);
                        blob.push('\n');
                    }
                    io.write_atomic(&dir.join(&name), blob.as_bytes())?;
                    quarantine_file = Some(name);
                }
                // Damaged snapshots are gone as far as the session is
                // concerned (repo.checkpoint excludes them); remove the
                // files so a later save or checkpoint cannot re-trust them.
                for d in &report.damage {
                    if d.file.starts_with("snapshot.") {
                        io.remove(&dir.join(&d.file))?;
                    }
                }
                // A full save rewrites the valid op-log tail, regenerates
                // the derived files, and recommits the manifest (now
                // referencing only the surviving snapshot layers).
                repo.save_with(io, dir)
            })();
            match healed {
                Ok(()) => {
                    report.quarantined = quarantine_lines.len();
                    report.quarantine_file = quarantine_file;
                    report.healed = true;
                }
                Err(_) => {
                    // Read-only medium: the salvaged session is still
                    // usable, the directory just stays as found.
                    report.healed = false;
                }
            }
        }

        sp.record("ops_replayed", report.ops_replayed);
        sp.record("ops_dropped", report.ops_dropped);
        sp.record("damaged", report.damage.len());
        Ok((repo, report))
    }
}

/// Parse one durable op-log line:
/// `<checksum>\t<seq>\t<context>\t<statement>`, also accepting the
/// earlier checksummed form without a sequence field and the legacy v0
/// form `<context>\t<statement>` (a concept tag can never look like a
/// 16-hex-digit checksum, and is never all digits like a sequence
/// number). Returns the explicit sequence number when the record carries
/// one; positional numbering is the caller's fallback.
fn parse_durable_log_line(line: &str) -> Result<(Option<u64>, ConceptKind, ModOp), String> {
    if let Some((first, body)) = line.split_once('\t') {
        if looks_like_hex(first) {
            let sum = from_hex(first).ok_or("malformed checksum field")?;
            if sum != checksum::checksum(body.as_bytes()) {
                return Err("line checksum mismatch".into());
            }
            if let Some((seq_field, rest)) = body.split_once('\t') {
                if !seq_field.is_empty() && seq_field.bytes().all(|b| b.is_ascii_digit()) {
                    let seq = seq_field
                        .parse::<u64>()
                        .map_err(|_| "sequence number out of range".to_string())?;
                    let (context, op) =
                        parse_log_body(rest).ok_or_else(|| "malformed record".to_string())?;
                    return Ok((Some(seq), context, op));
                }
            }
            let (context, op) =
                parse_log_body(body).ok_or_else(|| "malformed record".to_string())?;
            return Ok((None, context, op));
        }
    }
    let (context, op) = parse_log_body(line).ok_or_else(|| "malformed record".to_string())?;
    Ok((None, context, op))
}

/// Parse the `<context>\t<statement>` body (tab or space separated).
pub(crate) fn parse_log_body(line: &str) -> Option<(ConceptKind, ModOp)> {
    let (tag, stmt) = line.split_once(['\t', ' '])?;
    let context = ConceptKind::from_tag(tag)?;
    let op = parse_statement(stmt.trim()).ok()?;
    Some((context, op))
}

/// Is this op one of the *move* operations whose symbolic replay derives
/// the shrink-wrap ↔ custom mapping? A checkpoint snapshot preserves the
/// covered prefix's move ops verbatim so mapping derivation keeps working
/// after the prefix itself is archived.
fn is_move_op(op: &ModOp) -> bool {
    matches!(
        op,
        ModOp::ModifyAttribute { .. } | ModOp::ModifyOperation { .. }
    )
}

/// One scanned op-log record with its resolved global sequence number.
#[derive(Debug, Clone)]
struct LogRecord {
    seq: u64,
    context: ConceptKind,
    op: ModOp,
    /// 1-based line number in the file the record was scanned from.
    line: usize,
    /// Scanned from the live tail (`session.ops`) rather than the archive.
    from_tail: bool,
}

/// Outcome of scanning one op-log file.
struct LogScan {
    records: Vec<LogRecord>,
    /// First bad line (prefix mode only).
    first_bad: Option<BadOp>,
    /// Non-empty, non-comment lines from the first bad one on.
    dropped: usize,
    /// The bad line was the file's final one and lacked a newline.
    torn_tail: bool,
    /// Raw lines from the first bad one on (prefix mode only).
    quarantine_lines: Vec<String>,
}

/// Scan an op-log file into records. Sequence numbers are taken from the
/// records themselves when present; records without one (legacy forms)
/// are numbered positionally, continuing after the last explicit number.
///
/// `prefix_only` is the live tail's contract: the first bad line ends the
/// valid prefix and is reported. The archive is instead scanned
/// skip-invalid (`prefix_only = false`): a crashed checkpoint retry can
/// legitimately leave a torn segment mid-archive, and the sequence-number
/// merge recovers every record around it — debris there is not damage.
fn scan_log(text: &str, prefix_only: bool) -> LogScan {
    let mut scan = LogScan {
        records: Vec::new(),
        first_bad: None,
        dropped: 0,
        torn_tail: false,
        quarantine_lines: Vec::new(),
    };
    let ends_with_newline = text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    let mut next_seq = 0u64;
    for (i, raw) in lines.iter().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_durable_log_line(line) {
            Ok((explicit, context, op)) => {
                let seq = explicit.unwrap_or(next_seq);
                next_seq = seq + 1;
                scan.records.push(LogRecord {
                    seq,
                    context,
                    op,
                    line: i + 1,
                    from_tail: false,
                });
            }
            Err(reason) => {
                if !prefix_only {
                    continue;
                }
                scan.dropped = lines[i..]
                    .iter()
                    .filter(|l| {
                        let t = l.trim();
                        !t.is_empty() && !t.starts_with('#')
                    })
                    .count();
                scan.torn_tail = i + 1 == lines.len() && !ends_with_newline;
                scan.first_bad = Some(BadOp {
                    line: i + 1,
                    content: raw.to_string(),
                    reason,
                });
                scan.quarantine_lines = lines[i..].iter().map(|l| l.to_string()).collect();
                break;
            }
        }
    }
    scan
}

/// Merge archive and tail records by global sequence number, keeping only
/// sequences `>= from` (records below are already folded into the
/// snapshot being resumed). Insertion order makes the policy: within the
/// archive the *last* occurrence of a sequence wins (re-appended segments
/// supersede torn ones), and the live tail wins over the archive.
fn merge_records(archive: Vec<LogRecord>, tail: Vec<LogRecord>, from: u64) -> Vec<LogRecord> {
    let mut by_seq: BTreeMap<u64, LogRecord> = BTreeMap::new();
    for r in archive.into_iter().chain(tail) {
        by_seq.insert(r.seq, r);
    }
    by_seq.split_off(&from).into_values().collect()
}

/// Why a replay stopped early.
enum ReplayStop {
    /// The records are not contiguous from the expected sequence number:
    /// an op is missing, so nothing after the hole can be trusted.
    Gap {
        index: usize,
        expected: u64,
        found: u64,
    },
    /// A record was rejected by the op pipeline.
    Apply { index: usize, source: OpError },
}

/// Replay `records` (sorted by sequence) into `ws`, requiring contiguous
/// sequence numbers starting at `expected`. Returns how many applied and
/// why the replay stopped, if it did.
fn replay_records(
    ws: &mut Workspace,
    records: &[LogRecord],
    mut expected: u64,
) -> (usize, Option<ReplayStop>) {
    for (index, r) in records.iter().enumerate() {
        if r.seq != expected {
            return (
                index,
                Some(ReplayStop::Gap {
                    index,
                    expected,
                    found: r.seq,
                }),
            );
        }
        match ws.apply(r.context, r.op.clone()) {
            Ok(_) => expected += 1,
            Err(source) => return (index, Some(ReplayStop::Apply { index, source })),
        }
    }
    (records.len(), None)
}

/// First unused numbered quarantine file name
/// (`session.ops.quarantine.1`, `.2`, …): successive salvages never
/// overwrite earlier forensic evidence.
fn next_quarantine_file(io: &dyn RepoIo, dir: &Path) -> String {
    (1u64..)
        .map(|n| format!("{QUARANTINE_FILE}.{n}"))
        .find(|name| !io.exists(&dir.join(name)))
        .expect("unbounded numbering")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_core::ModOp;
    use sws_odl::DomainType;

    fn repo() -> Repository {
        let src = r#"
        schema Dept {
            interface Person { attribute string name; }
            interface Employee : Person {
                attribute long badge;
                relationship Department works_in_a inverse Department::has;
            }
            interface Department {
                extent departments;
                relationship set<Employee> has inverse Employee::works_in_a;
            }
        }"#;
        Repository::ingest_odl(src).unwrap()
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sws_repo_test_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let mut repo = repo();
        repo.workspace_mut()
            .apply(
                ConceptKind::WagonWheel,
                ModOp::AddTypeDefinition {
                    ty: "Project".into(),
                },
            )
            .unwrap();
        repo.workspace_mut()
            .apply(
                ConceptKind::WagonWheel,
                ModOp::AddAttribute {
                    ty: "Project".into(),
                    domain: DomainType::String,
                    size: Some(32),
                    name: "code_name".into(),
                },
            )
            .unwrap();
        repo.workspace_mut()
            .apply(
                ConceptKind::Generalization,
                ModOp::ModifyRelationshipTargetType {
                    ty: "Department".into(),
                    path: "has".into(),
                    old_target: "Employee".into(),
                    new_target: "Person".into(),
                },
            )
            .unwrap();

        let dir = tmpdir("round_trip");
        repo.save(&dir).unwrap();
        let loaded = Repository::load(&dir).unwrap();
        assert_eq!(
            graph_to_schema(loaded.workspace().working()),
            graph_to_schema(repo.workspace().working())
        );
        assert_eq!(loaded.workspace().log().len(), 3);
        // The replayed impact matches too.
        assert_eq!(
            loaded.workspace().log()[2].impact,
            repo.workspace().log()[2].impact
        );
        // The save is manifested and every line is checksummed.
        let manifest_text = std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
        assert!(manifest_text.starts_with("sws-repository v1\n"));
        let log = std::fs::read_to_string(dir.join(SESSION_FILE)).unwrap();
        for line in log.lines() {
            let (sum, _) = line.split_once('\t').unwrap();
            assert!(looks_like_hex(sum), "{line}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_v0_directory_still_loads() {
        // A pre-manifest directory: plain log lines, no MANIFEST.
        let repo = repo();
        let dir = tmpdir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(SHRINK_WRAP_FILE), repo.shrink_wrap_odl()).unwrap();
        std::fs::write(
            dir.join(SESSION_FILE),
            "wagon_wheel\tadd_type_definition(Project)\n",
        )
        .unwrap();
        let loaded = Repository::load(&dir).unwrap();
        assert_eq!(loaded.workspace().log().len(), 1);
        let (loaded2, report) = Repository::load_salvage(&dir).unwrap();
        assert_eq!(loaded2.workspace().log().len(), 1);
        assert_eq!(report.manifest, ManifestStatus::Missing);
        assert!(report.is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ingest_normalizes_multi_root_hierarchies() {
        let src = r#"
        interface A { }
        interface B { }
        interface C : A, B { }"#;
        let repo = Repository::ingest_odl(src).unwrap();
        assert_eq!(repo.created_roots().len(), 1);
        assert!(repo
            .workspace()
            .shrink_wrap()
            .type_id(&repo.created_roots()[0])
            .is_some());
    }

    #[test]
    fn tampered_custom_schema_detected() {
        let repo = repo();
        let dir = tmpdir("tampered");
        repo.save(&dir).unwrap();
        std::fs::write(dir.join(CUSTOM_FILE), "schema X { interface Alien { } }").unwrap();
        // Strict: the manifest checksum catches the tampering.
        assert!(matches!(
            Repository::load(&dir),
            Err(RepoError::Corrupt { file, .. }) if file == CUSTOM_FILE
        ));
        // Salvage: regenerate and report, no error.
        let (loaded, report) = Repository::load_salvage(&dir).unwrap();
        assert!(!report.is_clean());
        assert!(!report.data_loss());
        assert!(report
            .damage
            .iter()
            .any(|d| d.file == CUSTOM_FILE && d.kind == DamageKind::ChecksumMismatch));
        assert_eq!(loaded.custom_schema_odl(), repo.custom_schema_odl());
        // Healing rewrote the file; a second load is clean.
        let (_, report2) = Repository::load_salvage(&dir).unwrap();
        assert!(report2.is_clean(), "{report2:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_log_line_reported_with_number() {
        let repo = repo();
        let dir = tmpdir("badlog");
        repo.save(&dir).unwrap();
        std::fs::write(
            dir.join(SESSION_FILE),
            "# comment\nnot_a_context\tadd_type_definition(X)\n",
        )
        .unwrap();
        match Repository::load(&dir) {
            Err(RepoError::BadLogLine { line, .. }) => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_failure_reports_line_and_cause() {
        let repo = repo();
        let dir = tmpdir("replayfail");
        repo.save(&dir).unwrap();
        // An op that violates Table 1: a move in a wagon wheel context.
        std::fs::write(
            dir.join(SESSION_FILE),
            "wagon_wheel\tmodify_attribute(Employee, badge, Person)\n",
        )
        .unwrap();
        std::fs::remove_file(dir.join(CUSTOM_FILE)).unwrap();
        match Repository::load(&dir) {
            Err(RepoError::Replay { line: 1, source }) => {
                assert!(matches!(source, OpError::NotPermitted { .. }));
            }
            other => panic!("{other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_then_load_replays_the_appended_op() {
        let repo = repo();
        let dir = tmpdir("append");
        repo.save(&dir).unwrap();
        append_log_line(
            &RealIo,
            &dir,
            repo.total_ops(),
            ConceptKind::WagonWheel,
            &ModOp::AddTypeDefinition { ty: "Annex".into() },
        )
        .unwrap();
        // Strict load now sees a stale custom.odl (replay is ahead).
        assert!(matches!(
            Repository::load(&dir),
            Err(RepoError::CustomMismatch)
        ));
        // Salvage regenerates the derived files; no designer work is lost.
        let (loaded, report) = Repository::load_salvage(&dir).unwrap();
        assert_eq!(loaded.workspace().log().len(), 1);
        assert!(loaded.workspace().working().type_id("Annex").is_some());
        assert!(!report.data_loss());
        assert!(report.healed);
        // Healed: both strict and salvage load cleanly now.
        assert!(Repository::load(&dir).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn salvage_quarantines_the_bad_tail() {
        let mut repo = repo();
        for ty in ["P1", "P2", "P3"] {
            repo.workspace_mut()
                .apply(
                    ConceptKind::WagonWheel,
                    ModOp::AddTypeDefinition { ty: ty.into() },
                )
                .unwrap();
        }
        let dir = tmpdir("quarantine");
        repo.save(&dir).unwrap();
        // Corrupt the second record: one flipped byte breaks its checksum.
        let log = std::fs::read_to_string(dir.join(SESSION_FILE)).unwrap();
        let corrupted = log.replacen("P2", "Px", 1);
        std::fs::write(dir.join(SESSION_FILE), &corrupted).unwrap();

        let (loaded, report) = Repository::load_salvage(&dir).unwrap();
        // Longest valid prefix: exactly one op survives.
        assert_eq!(report.ops_replayed, 1);
        assert_eq!(report.ops_dropped, 2);
        assert!(report.data_loss());
        assert!(!report.torn_tail);
        let bad = report.first_bad_op.as_ref().unwrap();
        assert_eq!(bad.line, 2);
        assert!(bad.reason.contains("checksum"), "{}", bad.reason);
        assert_eq!(report.quarantined, 2);
        assert!(loaded.workspace().working().type_id("P1").is_some());
        assert!(loaded.workspace().working().type_id("P2").is_none());
        // The bad lines landed in the numbered quarantine file; the log
        // was rewritten to the valid prefix and now loads cleanly.
        let qfile = report.quarantine_file.as_deref().unwrap();
        assert_eq!(qfile, &format!("{QUARANTINE_FILE}.1"));
        let q = std::fs::read_to_string(dir.join(qfile)).unwrap();
        assert!(q.contains("Px"));
        let (_, report2) = Repository::load_salvage(&dir).unwrap();
        assert!(report2.is_clean());
        assert_eq!(report2.ops_replayed, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aliases_persist_and_render() {
        let mut repo = repo();
        repo.set_type_alias("Employee", "StaffMember").unwrap();
        repo.set_member_alias("Employee", "badge", "staff_id")
            .unwrap();
        // Canonical output unchanged; local output renamed.
        assert!(repo.custom_schema_odl().contains("interface Employee"));
        let local = repo.custom_schema_local_odl();
        assert!(local.contains("interface StaffMember : Person"), "{local}");
        assert!(local.contains("attribute long staff_id;"));
        assert!(local.contains("relationship set<StaffMember> has"));

        let dir = tmpdir("aliases");
        repo.save(&dir).unwrap();
        let loaded = Repository::load(&dir).unwrap();
        assert_eq!(loaded.aliases(), repo.aliases());
        assert_eq!(
            loaded.custom_schema_local_odl(),
            repo.custom_schema_local_odl()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn alias_collisions_surface_as_repo_errors() {
        let mut repo = repo();
        assert!(matches!(
            repo.set_type_alias("Employee", "Person"),
            Err(RepoError::Alias(_))
        ));
    }

    #[test]
    fn log_format_is_line_per_op() {
        let mut repo = repo();
        repo.workspace_mut()
            .apply(
                ConceptKind::WagonWheel,
                ModOp::AddTypeDefinition { ty: "X".into() },
            )
            .unwrap();
        let log = repo.render_log();
        assert_eq!(log, "wagon_wheel\tadd_type_definition(X)\n");
        // The durable format prefixes a checksum and the global sequence
        // number; the checksum covers everything after its own tab.
        let durable = repo.render_durable_log();
        let (sum, body) = durable.trim_end().split_once('\t').unwrap();
        assert_eq!(body, "0\twagon_wheel\tadd_type_definition(X)");
        assert_eq!(from_hex(sum), Some(checksum::checksum(body.as_bytes())));
    }

    #[test]
    fn reports_available() {
        let repo = repo();
        assert!(repo.custom_schema_odl().contains("interface Person"));
        assert!(repo.mapping().render().contains("reuse 100.0%"));
        // Person/Employee carry no keys — consistency may warn, but must run.
        let _ = repo.consistency();
    }

    fn apply_add(repo: &mut Repository, ty: &str) {
        repo.workspace_mut()
            .apply(
                ConceptKind::WagonWheel,
                ModOp::AddTypeDefinition { ty: ty.into() },
            )
            .unwrap();
    }

    #[test]
    fn checkpoint_truncates_tail_and_load_resumes_from_snapshot() {
        let mut repo = repo();
        for ty in ["P1", "P2", "P3"] {
            apply_add(&mut repo, ty);
        }
        let dir = tmpdir("ckpt_round_trip");
        repo.save(&dir).unwrap();
        let outcome = repo.checkpoint(&dir).unwrap().unwrap();
        assert_eq!(outcome.generation, 1);
        assert_eq!(outcome.ops_covered, 3);
        assert_eq!(outcome.archived_ops, 3);
        // The tail is now empty; the archive holds the prefix.
        assert_eq!(std::fs::read(dir.join(SESSION_FILE)).unwrap(), b"");
        assert!(dir.join(ARCHIVE_FILE).exists());
        assert!(dir.join(snapshot_file(1)).exists());

        // Strict load takes the snapshot fast path: same schema, no
        // in-memory log (nothing replayed), full op count preserved.
        let (loaded, report) = Repository::load_with(&RealIo, &dir, LoadMode::Strict).unwrap();
        assert_eq!(report.load_path, LoadPath::Snapshot { generation: 1 });
        assert_eq!(report.snapshot_ops, 3);
        assert_eq!(report.ops_replayed, 0);
        assert_eq!(
            graph_to_schema(loaded.workspace().working()),
            graph_to_schema(repo.workspace().working())
        );
        assert_eq!(loaded.total_ops(), 3);
        assert_eq!(loaded.base_seq(), 3);
        assert!(loaded.workspace().is_resumed());

        // Appends after the checkpoint land in the tail and replay on top.
        append_log_line(
            &RealIo,
            &dir,
            3,
            ConceptKind::WagonWheel,
            &ModOp::AddTypeDefinition { ty: "P4".into() },
        )
        .unwrap();
        let (loaded2, report2) = Repository::load_salvage(&dir).unwrap();
        assert_eq!(report2.ops_replayed, 1);
        assert_eq!(loaded2.total_ops(), 4);
        assert!(loaded2.workspace().working().type_id("P4").is_some());
        assert!(!report2.data_loss());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_with_nothing_new_is_a_no_op() {
        let mut repo = repo();
        apply_add(&mut repo, "P1");
        let dir = tmpdir("ckpt_noop");
        repo.save(&dir).unwrap();
        assert!(repo.checkpoint(&dir).unwrap().is_some());
        assert!(repo.checkpoint(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mapping_survives_checkpoint_via_preserved_moves() {
        let mut repo = Repository::ingest_odl(
            r#"
            interface Person { attribute string name; }
            interface Employee : Person { attribute string badge; }"#,
        )
        .unwrap();
        repo.workspace_mut()
            .apply(
                ConceptKind::Generalization,
                ModOp::ModifyAttribute {
                    ty: "Employee".into(),
                    name: "badge".into(),
                    new_ty: "Person".into(),
                },
            )
            .unwrap();
        let before = repo.mapping().render();
        let dir = tmpdir("ckpt_mapping");
        repo.save(&dir).unwrap();
        repo.checkpoint(&dir).unwrap().unwrap();
        assert_eq!(repo.mapping().render(), before);
        let loaded = Repository::load(&dir).unwrap();
        assert!(loaded.workspace().log().is_empty());
        assert_eq!(loaded.mapping().render(), before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_keeps_newest_and_previous_snapshot_only() {
        let mut repo = repo();
        let dir = tmpdir("ckpt_retention");
        apply_add(&mut repo, "P1");
        repo.save(&dir).unwrap();
        repo.checkpoint(&dir).unwrap().unwrap();
        apply_add(&mut repo, "P2");
        repo.save(&dir).unwrap();
        repo.checkpoint(&dir).unwrap().unwrap();
        apply_add(&mut repo, "P3");
        repo.save(&dir).unwrap();
        let outcome = repo.checkpoint(&dir).unwrap().unwrap();
        assert_eq!(outcome.generation, 3);
        assert_eq!(outcome.pruned, vec![snapshot_file(1)]);
        assert!(!dir.join(snapshot_file(1)).exists());
        assert!(dir.join(snapshot_file(2)).exists());
        assert!(dir.join(snapshot_file(3)).exists());
        assert_eq!(repo.checkpoint_state().snapshots.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_previous() {
        let mut repo = repo();
        let dir = tmpdir("ckpt_fallback_prev");
        apply_add(&mut repo, "P1");
        repo.save(&dir).unwrap();
        repo.checkpoint(&dir).unwrap().unwrap();
        apply_add(&mut repo, "P2");
        repo.save(&dir).unwrap();
        repo.checkpoint(&dir).unwrap().unwrap();
        // Flip a byte in the newest snapshot.
        let path = dir.join(snapshot_file(2));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        // Strict refuses: the committed fast path is damaged.
        assert!(matches!(
            Repository::load(&dir),
            Err(RepoError::Corrupt { file, .. }) if file == snapshot_file(2)
        ));
        // Salvage falls back to generation 1 + the archived ops: nothing
        // is lost, the load is merely degraded.
        let (loaded, report) = Repository::load_salvage(&dir).unwrap();
        assert_eq!(
            report.load_path,
            LoadPath::FallbackSnapshot { generation: 1 }
        );
        assert!(report.degraded());
        assert!(!report.data_loss());
        assert_eq!(loaded.total_ops(), 2);
        assert!(loaded.workspace().working().type_id("P2").is_some());
        // Healing removed the damaged snapshot and recommitted; the next
        // load is clean again (on the surviving generation).
        assert!(report.healed);
        assert!(!path.exists());
        let (_, report2) = Repository::load_salvage(&dir).unwrap();
        assert!(report2.is_clean(), "{report2:?}");
        assert_eq!(report2.load_path, LoadPath::Snapshot { generation: 1 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_snapshots_corrupt_falls_back_to_full_replay() {
        let mut repo = repo();
        let dir = tmpdir("ckpt_fallback_full");
        apply_add(&mut repo, "P1");
        repo.save(&dir).unwrap();
        repo.checkpoint(&dir).unwrap().unwrap();
        apply_add(&mut repo, "P2");
        repo.save(&dir).unwrap();
        repo.checkpoint(&dir).unwrap().unwrap();
        for generation in [1, 2] {
            std::fs::write(dir.join(snapshot_file(generation)), b"garbage").unwrap();
        }
        let (loaded, report) = Repository::load_salvage(&dir).unwrap();
        assert_eq!(report.load_path, LoadPath::FallbackFullReplay);
        assert!(report.degraded());
        assert!(!report.data_loss());
        assert_eq!(report.ops_replayed, 2);
        assert_eq!(loaded.total_ops(), 2);
        assert!(loaded.workspace().working().type_id("P1").is_some());
        assert!(loaded.workspace().working().type_id("P2").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
