//! The schema repository (paper Fig. 1, activity 12): durable storage for
//! the shrink wrap schema, the design workspace, the custom schema, and the
//! mapping.
//!
//! The paper's prototype persisted the repository as an ObjectStore
//! database. We substitute a transparent, replayable representation (see
//! DESIGN.md §2 and docs/robustness.md): a session directory containing
//!
//! * `shrink_wrap.odl` — the shrink wrap schema as extended-ODL text,
//! * `session.ops` — the operation log, **append-only**, one
//!   `<checksum>\t<context>\t<statement>` line per applied operation in
//!   the modification language (the checksum covers the rest of the line,
//!   so a torn tail is detectable record by record),
//! * `custom.odl` — the derived custom schema (informative; regenerated
//!   and verified against the replay on load),
//! * `mapping.txt` — the rendered shrink-wrap ↔ custom mapping
//!   (informative),
//! * `MANIFEST` — format version plus per-file checksums, written
//!   atomically last: the commit record of a save.
//!
//! All I/O goes through the [`io::RepoIo`] abstraction; saves are
//! write-temp → fsync → atomic-rename, so a crash at any point leaves
//! either the old or the new content of every file, never a torn mixture
//! (the property tests in `tests/crash_consistency.rs` sweep every
//! injected crash point and assert exactly that against the `diff_graphs`
//! oracle).
//!
//! Two load modes:
//!
//! * [`Repository::load`] — strict: replays `session.ops` against
//!   `shrink_wrap.odl` through the full permission/constraint pipeline and
//!   fails on the first inconsistency, so a loaded session is exactly as
//!   valid as the live one that saved it.
//! * [`Repository::load_salvage`] — salvage: verifies checksums, replays
//!   the longest valid prefix of the op log, quarantines bad lines to
//!   `session.ops.quarantine`, repairs the directory, and returns a
//!   structured [`RecoveryReport`] instead of an error. Only an unusable
//!   shrink wrap schema is fatal.

use std::fmt;
use std::io as stdio;
use std::path::Path;

pub mod checksum;
pub mod io;
pub mod manifest;
pub mod recovery;

use checksum::{from_hex, looks_like_hex, to_hex};
use io::{RealIo, RepoIo};
use manifest::{Manifest, ManifestError};
pub use manifest::{FORMAT_VERSION, MANIFEST_FILE};
pub use recovery::{BadOp, DamageKind, FileDamage, ManifestStatus, RecoveryReport};

use sws_core::concept::normalize_single_root;
use sws_core::consistency::ConsistencyReport;
use sws_core::oplang::{parse_statement, print_op};
use sws_core::{AliasError, AliasTable, ConceptKind, Mapping, ModOp, OpError, Workspace};
use sws_model::{graph_to_schema, schema_to_graph, LowerError, SchemaGraph};
use sws_odl::{parse_schema, print_schema, OdlError};

/// File name of the shrink wrap schema.
pub const SHRINK_WRAP_FILE: &str = "shrink_wrap.odl";
/// File name of the op log.
pub const SESSION_FILE: &str = "session.ops";
/// File name of the derived custom schema.
pub const CUSTOM_FILE: &str = "custom.odl";
/// File name of the rendered mapping.
pub const MAPPING_FILE: &str = "mapping.txt";
/// File name of the local-name (alias) table (§5 extension).
pub const ALIASES_FILE: &str = "local_names.txt";
/// File name bad op-log lines are quarantined to by salvage loading.
pub const QUARANTINE_FILE: &str = "session.ops.quarantine";

/// Errors loading or saving a repository.
#[derive(Debug)]
pub enum RepoError {
    /// Filesystem failure.
    Io(stdio::Error),
    /// The shrink wrap ODL did not parse.
    Odl(OdlError),
    /// The shrink wrap schema did not lower.
    Lower(LowerError),
    /// Replaying line `line` of the op log failed.
    Replay { line: usize, source: OpError },
    /// A malformed or checksum-mismatched op-log line.
    BadLogLine { line: usize, content: String },
    /// A malformed local-names line.
    BadAliasLine { line: usize },
    /// An alias collided when registering it.
    Alias(AliasError),
    /// `custom.odl` exists but disagrees with the replayed session.
    CustomMismatch,
    /// A file failed checksum or structural verification (strict mode).
    Corrupt { file: String, detail: String },
    /// The directory was written by a newer format version.
    UnsupportedVersion(u32),
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::Io(e) => write!(f, "I/O error: {e}"),
            RepoError::Odl(e) => write!(f, "{e}"),
            RepoError::Lower(e) => write!(f, "{e}"),
            RepoError::Replay { line, source } => {
                write!(f, "replay failed at op-log line {line}: {source}")
            }
            RepoError::BadLogLine { line, content } => {
                write!(f, "malformed op-log line {line}: {content:?}")
            }
            RepoError::BadAliasLine { line } => {
                write!(f, "malformed local-names line {line}")
            }
            RepoError::Alias(e) => write!(f, "{e}"),
            RepoError::CustomMismatch => {
                f.write_str("custom.odl does not match the replayed session")
            }
            RepoError::Corrupt { file, detail } => {
                write!(f, "corrupt session file {file}: {detail}")
            }
            RepoError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "session directory uses format v{v}, newer than this build (v{FORMAT_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for RepoError {}

impl From<stdio::Error> for RepoError {
    fn from(e: stdio::Error) -> Self {
        RepoError::Io(e)
    }
}

impl From<OdlError> for RepoError {
    fn from(e: OdlError) -> Self {
        RepoError::Odl(e)
    }
}

impl From<LowerError> for RepoError {
    fn from(e: LowerError) -> Self {
        RepoError::Lower(e)
    }
}

impl From<AliasError> for RepoError {
    fn from(e: AliasError) -> Self {
        RepoError::Alias(e)
    }
}

/// How [`Repository::load_with`] treats damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Fail on the first inconsistency (checksum, parse, replay).
    Strict,
    /// Keep the longest valid prefix, quarantine the rest, report.
    Salvage,
}

/// Render one durable op-log record: `<checksum>\t<context>\t<statement>\n`,
/// where the checksum covers everything after its tab.
pub fn durable_log_line(context: ConceptKind, op: &ModOp) -> String {
    let body = format!("{}\t{}", context.tag(), print_op(op));
    format!("{}\t{body}\n", to_hex(checksum::checksum(body.as_bytes())))
}

/// Append one op record to `dir/session.ops` and fsync — the autosave hot
/// path: one small append per applied op instead of a full rewrite.
pub fn append_log_line(
    io: &dyn RepoIo,
    dir: &Path,
    context: ConceptKind,
    op: &ModOp,
) -> Result<(), RepoError> {
    let line = durable_log_line(context, op);
    let mut sp = sws_trace::span!("repo.append", bytes = line.len());
    io.append_sync(&dir.join(SESSION_FILE), line.as_bytes())?;
    sp.record("verdict", "ok");
    Ok(())
}

/// The repository: a [`Workspace`] plus persistence.
#[derive(Debug, Clone)]
pub struct Repository {
    workspace: Workspace,
    /// Abstract roots synthesized at ingest (single-root normalization).
    created_roots: Vec<String>,
    /// Local names (§5 extension): canonical → designer-chosen.
    aliases: AliasTable,
}

impl Repository {
    /// Ingest a shrink wrap schema: normalize multi-root generalization
    /// hierarchies (paper §3.2) and open a fresh workspace on the result.
    pub fn ingest(mut shrink_wrap: SchemaGraph) -> Self {
        let created_roots = normalize_single_root(&mut shrink_wrap);
        Repository {
            workspace: Workspace::new(shrink_wrap),
            created_roots,
            aliases: AliasTable::new(),
        }
    }

    /// Ingest from extended-ODL source text.
    pub fn ingest_odl(source: &str) -> Result<Self, RepoError> {
        let ast = parse_schema(source)?;
        let graph = schema_to_graph(&ast)?;
        Ok(Repository::ingest(graph))
    }

    /// The live workspace.
    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    /// The live workspace, mutably (to apply operations).
    pub fn workspace_mut(&mut self) -> &mut Workspace {
        &mut self.workspace
    }

    /// Abstract roots created by single-root normalization at ingest.
    pub fn created_roots(&self) -> &[String] {
        &self.created_roots
    }

    /// The custom schema as canonical extended-ODL text (canonical names).
    pub fn custom_schema_odl(&self) -> String {
        print_schema(&graph_to_schema(self.workspace.working()))
    }

    /// The custom schema as extended-ODL text with the designer's local
    /// names applied (§5 extension). Equal to
    /// [`Self::custom_schema_odl`] when no aliases are registered.
    pub fn custom_schema_local_odl(&self) -> String {
        print_schema(
            &self
                .aliases
                .apply(&graph_to_schema(self.workspace.working())),
        )
    }

    /// The local-name table.
    pub fn aliases(&self) -> &AliasTable {
        &self.aliases
    }

    /// Register a local name for a type.
    pub fn set_type_alias(&mut self, canonical: &str, local: &str) -> Result<(), RepoError> {
        let schema = graph_to_schema(self.workspace.working());
        self.aliases.set_type_alias(&schema, canonical, local)?;
        Ok(())
    }

    /// Register a local name for a member of a type.
    pub fn set_member_alias(
        &mut self,
        ty: &str,
        canonical: &str,
        local: &str,
    ) -> Result<(), RepoError> {
        let schema = graph_to_schema(self.workspace.working());
        self.aliases
            .set_member_alias(&schema, ty, canonical, local)?;
        Ok(())
    }

    /// The shrink wrap schema as canonical extended-ODL text.
    pub fn shrink_wrap_odl(&self) -> String {
        print_schema(&graph_to_schema(self.workspace.shrink_wrap()))
    }

    /// Derive the shrink-wrap ↔ custom mapping.
    pub fn mapping(&self) -> Mapping {
        Mapping::derive(&self.workspace)
    }

    /// Run the consistency checks on the custom schema (served by the
    /// workspace's incremental engine).
    pub fn consistency(&self) -> ConsistencyReport {
        self.workspace.consistency()
    }

    /// The op log in the human-readable line format (no checksums), as
    /// shown by the `log` REPL command.
    pub fn render_log(&self) -> String {
        let mut out = String::new();
        for record in self.workspace.log() {
            out.push_str(record.context.tag());
            out.push('\t');
            out.push_str(&print_op(&record.op));
            out.push('\n');
        }
        out
    }

    /// The op log in the durable checksummed-line format written to disk.
    pub fn render_durable_log(&self) -> String {
        let mut out = String::new();
        for record in self.workspace.log() {
            out.push_str(&durable_log_line(record.context, &record.op));
        }
        out
    }

    /// Save the session to `dir` (created if needed) on the real
    /// filesystem.
    pub fn save(&self, dir: &Path) -> Result<(), RepoError> {
        self.save_with(&RealIo, dir)
    }

    /// Save through an explicit I/O implementation. Every file is written
    /// atomically (write-temp → fsync → rename); the `MANIFEST` — the
    /// commit record carrying per-file checksums — is written last.
    pub fn save_with(&self, io: &dyn RepoIo, dir: &Path) -> Result<(), RepoError> {
        let mut sp = sws_trace::span!("repo.save");
        io.create_dir_all(dir)?;
        let mut manifest = Manifest::new();
        let mut files = 0usize;
        let mut write = |name: &str, data: &str, manifested: bool| -> Result<(), RepoError> {
            io.write_atomic(&dir.join(name), data.as_bytes())?;
            if manifested {
                manifest.insert(name, data.as_bytes());
            }
            files += 1;
            Ok(())
        };
        // The op log is self-validating per line and append-only, so it is
        // not manifested: appends must not invalidate the manifest. The
        // shrink wrap goes second-to-last on purpose: loading requires it,
        // so a crash earlier in a fresh-directory save leaves *no* loadable
        // session (the pre-save state) rather than one with a silently
        // truncated op log.
        write(SESSION_FILE, &self.render_durable_log(), false)?;
        write(CUSTOM_FILE, &self.custom_schema_odl(), true)?;
        write(MAPPING_FILE, &self.mapping().render(), true)?;
        if !self.aliases.is_empty() {
            write(ALIASES_FILE, &self.aliases.render(), true)?;
        }
        write(SHRINK_WRAP_FILE, &self.shrink_wrap_odl(), true)?;
        io.write_atomic(&dir.join(MANIFEST_FILE), manifest.render().as_bytes())?;
        sp.record("files", files + 1);
        Ok(())
    }

    /// Load a session from `dir` strictly: replay the whole op log through
    /// the full pipeline, verify every checksum and the stored custom
    /// schema, and fail on the first inconsistency.
    pub fn load(dir: &Path) -> Result<Self, RepoError> {
        Repository::load_with(&RealIo, dir, LoadMode::Strict).map(|(repo, _)| repo)
    }

    /// Load a session from `dir` in salvage mode: keep the longest valid
    /// prefix of the op log, quarantine bad lines, repair the directory,
    /// and report. Fails only when the shrink wrap schema itself is
    /// unreadable or unparseable.
    pub fn load_salvage(dir: &Path) -> Result<(Self, RecoveryReport), RepoError> {
        Repository::load_with(&RealIo, dir, LoadMode::Salvage)
    }

    /// Load through an explicit I/O implementation in the given mode.
    pub fn load_with(
        io: &dyn RepoIo,
        dir: &Path,
        mode: LoadMode,
    ) -> Result<(Self, RecoveryReport), RepoError> {
        let salvage = mode == LoadMode::Salvage;
        let mut sp = sws_trace::span!(
            "repo.load",
            mode = if salvage { "salvage" } else { "strict" }
        );
        let mut damage: Vec<FileDamage> = Vec::new();
        let mut regenerated: Vec<String> = Vec::new();

        // --- MANIFEST: the commit record --------------------------------
        let manifest_path = dir.join(MANIFEST_FILE);
        let (manifest, manifest_status) = if io.exists(&manifest_path) {
            let text = String::from_utf8_lossy(&io.read(&manifest_path)?).into_owned();
            match Manifest::parse(&text) {
                Ok(m) => (Some(m), ManifestStatus::Ok),
                Err(ManifestError::UnsupportedVersion(v)) => {
                    // Never reinterpret (or "repair") a future format.
                    return Err(RepoError::UnsupportedVersion(v));
                }
                Err(e) if salvage => (None, ManifestStatus::Damaged(e.to_string())),
                Err(e) => {
                    return Err(RepoError::Corrupt {
                        file: MANIFEST_FILE.into(),
                        detail: e.to_string(),
                    })
                }
            }
        } else {
            (None, ManifestStatus::Missing)
        };
        let verify = |name: &str, data: &[u8]| -> Option<bool> {
            manifest.as_ref().and_then(|m| m.verify(name, data))
        };

        // --- shrink wrap: the one unsalvageable file ---------------------
        let sw_bytes = io.read(&dir.join(SHRINK_WRAP_FILE))?;
        if verify(SHRINK_WRAP_FILE, &sw_bytes) == Some(false) {
            if !salvage {
                return Err(RepoError::Corrupt {
                    file: SHRINK_WRAP_FILE.into(),
                    detail: "checksum mismatch".into(),
                });
            }
            damage.push(FileDamage {
                file: SHRINK_WRAP_FILE.into(),
                kind: DamageKind::ChecksumMismatch,
                detail: "checksum mismatch; parsing anyway".into(),
            });
        }
        let sw_text = String::from_utf8_lossy(&sw_bytes);
        let ast = parse_schema(&sw_text)?;
        let graph = schema_to_graph(&ast)?;
        // The saved shrink wrap is already normalized; ingest is idempotent.
        let mut repo = Repository::ingest(graph);

        // --- op log: longest valid prefix --------------------------------
        let mut ops_replayed = 0usize;
        let mut ops_dropped = 0usize;
        let mut torn_tail = false;
        let mut first_bad_op: Option<BadOp> = None;
        let mut quarantine_lines: Vec<String> = Vec::new();
        let log_path = dir.join(SESSION_FILE);
        if io.exists(&log_path) {
            let log_text = match io.read(&log_path) {
                Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
                Err(e) if salvage => {
                    damage.push(FileDamage {
                        file: SESSION_FILE.into(),
                        kind: DamageKind::Unparseable,
                        detail: format!("unreadable: {e}"),
                    });
                    String::new()
                }
                Err(e) => return Err(RepoError::Io(e)),
            };
            let ends_with_newline = log_text.ends_with('\n');
            let lines: Vec<&str> = log_text.lines().collect();
            for (i, raw) in lines.iter().enumerate() {
                let line_no = i + 1;
                let line = raw.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let failure = match parse_durable_log_line(line) {
                    Err(reason) => Some(reason),
                    Ok((context, op)) => match repo.workspace.apply(context, op) {
                        Ok(_) => {
                            ops_replayed += 1;
                            None
                        }
                        Err(source) => {
                            if !salvage {
                                return Err(RepoError::Replay {
                                    line: line_no,
                                    source,
                                });
                            }
                            Some(format!("replay rejected: {source}"))
                        }
                    },
                };
                if let Some(reason) = failure {
                    if !salvage {
                        return Err(RepoError::BadLogLine {
                            line: line_no,
                            content: raw.to_string(),
                        });
                    }
                    // A bad record ends the valid prefix: it and every
                    // later record (whose preconditions may depend on the
                    // lost op) are dropped and quarantined.
                    ops_dropped = lines[i..]
                        .iter()
                        .filter(|l| {
                            let t = l.trim();
                            !t.is_empty() && !t.starts_with('#')
                        })
                        .count();
                    torn_tail = i + 1 == lines.len() && !ends_with_newline;
                    first_bad_op = Some(BadOp {
                        line: line_no,
                        content: raw.to_string(),
                        reason,
                    });
                    quarantine_lines = lines[i..].iter().map(|l| l.to_string()).collect();
                    break;
                }
            }
        }

        // --- local names --------------------------------------------------
        let alias_path = dir.join(ALIASES_FILE);
        if io.exists(&alias_path) {
            let bytes = io.read(&alias_path)?;
            let checksum_ok = verify(ALIASES_FILE, &bytes);
            if checksum_ok == Some(false) && !salvage {
                return Err(RepoError::Corrupt {
                    file: ALIASES_FILE.into(),
                    detail: "checksum mismatch".into(),
                });
            }
            let text = String::from_utf8_lossy(&bytes);
            match AliasTable::parse(&text) {
                Ok(table) => {
                    repo.aliases = table;
                    if checksum_ok == Some(false) {
                        damage.push(FileDamage {
                            file: ALIASES_FILE.into(),
                            kind: DamageKind::ChecksumMismatch,
                            detail: "checksum mismatch; parsed anyway".into(),
                        });
                    }
                }
                Err(line) if salvage => damage.push(FileDamage {
                    file: ALIASES_FILE.into(),
                    kind: DamageKind::Unparseable,
                    detail: format!("malformed line {line}; local names dropped"),
                }),
                Err(line) => return Err(RepoError::BadAliasLine { line }),
            }
        }

        // --- derived files: verified, regenerable ------------------------
        let custom_path = dir.join(CUSTOM_FILE);
        if io.exists(&custom_path) {
            let bytes = io.read(&custom_path)?;
            if verify(CUSTOM_FILE, &bytes) == Some(false) {
                if !salvage {
                    return Err(RepoError::Corrupt {
                        file: CUSTOM_FILE.into(),
                        detail: "checksum mismatch".into(),
                    });
                }
                damage.push(FileDamage {
                    file: CUSTOM_FILE.into(),
                    kind: DamageKind::ChecksumMismatch,
                    detail: "checksum mismatch; regenerated from replay".into(),
                });
                regenerated.push(CUSTOM_FILE.into());
            } else {
                let custom_text = String::from_utf8_lossy(&bytes);
                let stored = match parse_schema(&custom_text)
                    .map_err(RepoError::from)
                    .and_then(|ast| schema_to_graph(&ast).map_err(RepoError::from))
                {
                    Ok(graph) => Some(graph),
                    Err(e) if salvage => {
                        damage.push(FileDamage {
                            file: CUSTOM_FILE.into(),
                            kind: DamageKind::Unparseable,
                            detail: format!("{e}; regenerated from replay"),
                        });
                        regenerated.push(CUSTOM_FILE.into());
                        None
                    }
                    Err(e) => return Err(e),
                };
                if let Some(stored) = stored {
                    if graph_to_schema(&stored) != graph_to_schema(repo.workspace.working()) {
                        if !salvage {
                            return Err(RepoError::CustomMismatch);
                        }
                        // Valid checksum but lagging the log: derived files
                        // go stale under append-only autosave. Replay wins.
                        damage.push(FileDamage {
                            file: CUSTOM_FILE.into(),
                            kind: DamageKind::Stale,
                            detail: "does not match the replayed session; regenerated".into(),
                        });
                        regenerated.push(CUSTOM_FILE.into());
                    }
                }
            }
        } else if manifest
            .as_ref()
            .is_some_and(|m| m.entries.contains_key(CUSTOM_FILE))
        {
            if !salvage {
                return Err(RepoError::Corrupt {
                    file: CUSTOM_FILE.into(),
                    detail: "listed in MANIFEST but missing".into(),
                });
            }
            damage.push(FileDamage {
                file: CUSTOM_FILE.into(),
                kind: DamageKind::Missing,
                detail: "listed in MANIFEST but missing; regenerated".into(),
            });
            regenerated.push(CUSTOM_FILE.into());
        }

        let mapping_path = dir.join(MAPPING_FILE);
        if io.exists(&mapping_path) {
            let bytes = io.read(&mapping_path)?;
            if verify(MAPPING_FILE, &bytes) == Some(false) {
                if !salvage {
                    return Err(RepoError::Corrupt {
                        file: MAPPING_FILE.into(),
                        detail: "checksum mismatch".into(),
                    });
                }
                damage.push(FileDamage {
                    file: MAPPING_FILE.into(),
                    kind: DamageKind::ChecksumMismatch,
                    detail: "checksum mismatch; regenerated from replay".into(),
                });
                regenerated.push(MAPPING_FILE.into());
            }
        } else if manifest
            .as_ref()
            .is_some_and(|m| m.entries.contains_key(MAPPING_FILE))
        {
            if !salvage {
                return Err(RepoError::Corrupt {
                    file: MAPPING_FILE.into(),
                    detail: "listed in MANIFEST but missing".into(),
                });
            }
            damage.push(FileDamage {
                file: MAPPING_FILE.into(),
                kind: DamageKind::Missing,
                detail: "listed in MANIFEST but missing; regenerated".into(),
            });
            regenerated.push(MAPPING_FILE.into());
        }

        // --- assemble the report -----------------------------------------
        let mut report = RecoveryReport::clean(
            manifest_status,
            ops_replayed,
            repo.consistency().findings.len(),
        );
        report.damage = damage;
        report.ops_dropped = ops_dropped;
        report.torn_tail = torn_tail;
        report.first_bad_op = first_bad_op;
        report.regenerated = regenerated;

        // --- heal: quarantine bad lines, rewrite a clean directory -------
        if salvage && !report.is_clean() {
            sws_trace::counter("repo.recovery.salvaged", 1);
            sws_trace::counter("repo.recovery.ops_replayed", report.ops_replayed as u64);
            sws_trace::counter("repo.recovery.ops_dropped", report.ops_dropped as u64);
            sws_trace::counter("repo.recovery.files_damaged", report.damage.len() as u64);
            let healed = (|| -> Result<(), RepoError> {
                if !quarantine_lines.is_empty() {
                    let mut blob = format!(
                        "# quarantined {} line(s) from {}\n",
                        quarantine_lines.len(),
                        SESSION_FILE
                    );
                    for line in &quarantine_lines {
                        blob.push_str(line);
                        blob.push('\n');
                    }
                    io.append_sync(&dir.join(QUARANTINE_FILE), blob.as_bytes())?;
                }
                // A full save rewrites the valid op prefix, regenerates the
                // derived files, and recommits the manifest.
                repo.save_with(io, dir)
            })();
            match healed {
                Ok(()) => {
                    report.quarantined = quarantine_lines.len();
                    report.healed = true;
                }
                Err(_) => {
                    // Read-only medium: the salvaged session is still
                    // usable, the directory just stays as found.
                    report.healed = false;
                }
            }
        }

        sp.record("ops_replayed", report.ops_replayed);
        sp.record("ops_dropped", report.ops_dropped);
        sp.record("damaged", report.damage.len());
        Ok((repo, report))
    }
}

/// Parse one durable op-log line: `<checksum>\t<context>\t<statement>`,
/// also accepting the legacy v0 form `<context>\t<statement>` (a concept
/// tag can never look like a 16-hex-digit checksum).
fn parse_durable_log_line(line: &str) -> Result<(ConceptKind, ModOp), String> {
    if let Some((first, body)) = line.split_once('\t') {
        if looks_like_hex(first) {
            let sum = from_hex(first).ok_or("malformed checksum field")?;
            if sum != checksum::checksum(body.as_bytes()) {
                return Err("line checksum mismatch".into());
            }
            return parse_log_body(body).ok_or_else(|| "malformed record".into());
        }
    }
    parse_log_body(line).ok_or_else(|| "malformed record".into())
}

/// Parse the `<context>\t<statement>` body (tab or space separated).
fn parse_log_body(line: &str) -> Option<(ConceptKind, ModOp)> {
    let (tag, stmt) = line.split_once(['\t', ' '])?;
    let context = ConceptKind::from_tag(tag)?;
    let op = parse_statement(stmt.trim()).ok()?;
    Some((context, op))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_core::ModOp;
    use sws_odl::DomainType;

    fn repo() -> Repository {
        let src = r#"
        schema Dept {
            interface Person { attribute string name; }
            interface Employee : Person {
                attribute long badge;
                relationship Department works_in_a inverse Department::has;
            }
            interface Department {
                extent departments;
                relationship set<Employee> has inverse Employee::works_in_a;
            }
        }"#;
        Repository::ingest_odl(src).unwrap()
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sws_repo_test_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let mut repo = repo();
        repo.workspace_mut()
            .apply(
                ConceptKind::WagonWheel,
                ModOp::AddTypeDefinition {
                    ty: "Project".into(),
                },
            )
            .unwrap();
        repo.workspace_mut()
            .apply(
                ConceptKind::WagonWheel,
                ModOp::AddAttribute {
                    ty: "Project".into(),
                    domain: DomainType::String,
                    size: Some(32),
                    name: "code_name".into(),
                },
            )
            .unwrap();
        repo.workspace_mut()
            .apply(
                ConceptKind::Generalization,
                ModOp::ModifyRelationshipTargetType {
                    ty: "Department".into(),
                    path: "has".into(),
                    old_target: "Employee".into(),
                    new_target: "Person".into(),
                },
            )
            .unwrap();

        let dir = tmpdir("round_trip");
        repo.save(&dir).unwrap();
        let loaded = Repository::load(&dir).unwrap();
        assert_eq!(
            graph_to_schema(loaded.workspace().working()),
            graph_to_schema(repo.workspace().working())
        );
        assert_eq!(loaded.workspace().log().len(), 3);
        // The replayed impact matches too.
        assert_eq!(
            loaded.workspace().log()[2].impact,
            repo.workspace().log()[2].impact
        );
        // The save is manifested and every line is checksummed.
        let manifest_text = std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
        assert!(manifest_text.starts_with("sws-repository v1\n"));
        let log = std::fs::read_to_string(dir.join(SESSION_FILE)).unwrap();
        for line in log.lines() {
            let (sum, _) = line.split_once('\t').unwrap();
            assert!(looks_like_hex(sum), "{line}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_v0_directory_still_loads() {
        // A pre-manifest directory: plain log lines, no MANIFEST.
        let repo = repo();
        let dir = tmpdir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(SHRINK_WRAP_FILE), repo.shrink_wrap_odl()).unwrap();
        std::fs::write(
            dir.join(SESSION_FILE),
            "wagon_wheel\tadd_type_definition(Project)\n",
        )
        .unwrap();
        let loaded = Repository::load(&dir).unwrap();
        assert_eq!(loaded.workspace().log().len(), 1);
        let (loaded2, report) = Repository::load_salvage(&dir).unwrap();
        assert_eq!(loaded2.workspace().log().len(), 1);
        assert_eq!(report.manifest, ManifestStatus::Missing);
        assert!(report.is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ingest_normalizes_multi_root_hierarchies() {
        let src = r#"
        interface A { }
        interface B { }
        interface C : A, B { }"#;
        let repo = Repository::ingest_odl(src).unwrap();
        assert_eq!(repo.created_roots().len(), 1);
        assert!(repo
            .workspace()
            .shrink_wrap()
            .type_id(&repo.created_roots()[0])
            .is_some());
    }

    #[test]
    fn tampered_custom_schema_detected() {
        let repo = repo();
        let dir = tmpdir("tampered");
        repo.save(&dir).unwrap();
        std::fs::write(dir.join(CUSTOM_FILE), "schema X { interface Alien { } }").unwrap();
        // Strict: the manifest checksum catches the tampering.
        assert!(matches!(
            Repository::load(&dir),
            Err(RepoError::Corrupt { file, .. }) if file == CUSTOM_FILE
        ));
        // Salvage: regenerate and report, no error.
        let (loaded, report) = Repository::load_salvage(&dir).unwrap();
        assert!(!report.is_clean());
        assert!(!report.data_loss());
        assert!(report
            .damage
            .iter()
            .any(|d| d.file == CUSTOM_FILE && d.kind == DamageKind::ChecksumMismatch));
        assert_eq!(loaded.custom_schema_odl(), repo.custom_schema_odl());
        // Healing rewrote the file; a second load is clean.
        let (_, report2) = Repository::load_salvage(&dir).unwrap();
        assert!(report2.is_clean(), "{report2:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_log_line_reported_with_number() {
        let repo = repo();
        let dir = tmpdir("badlog");
        repo.save(&dir).unwrap();
        std::fs::write(
            dir.join(SESSION_FILE),
            "# comment\nnot_a_context\tadd_type_definition(X)\n",
        )
        .unwrap();
        match Repository::load(&dir) {
            Err(RepoError::BadLogLine { line, .. }) => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_failure_reports_line_and_cause() {
        let repo = repo();
        let dir = tmpdir("replayfail");
        repo.save(&dir).unwrap();
        // An op that violates Table 1: a move in a wagon wheel context.
        std::fs::write(
            dir.join(SESSION_FILE),
            "wagon_wheel\tmodify_attribute(Employee, badge, Person)\n",
        )
        .unwrap();
        std::fs::remove_file(dir.join(CUSTOM_FILE)).unwrap();
        match Repository::load(&dir) {
            Err(RepoError::Replay { line: 1, source }) => {
                assert!(matches!(source, OpError::NotPermitted { .. }));
            }
            other => panic!("{other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_then_load_replays_the_appended_op() {
        let repo = repo();
        let dir = tmpdir("append");
        repo.save(&dir).unwrap();
        append_log_line(
            &RealIo,
            &dir,
            ConceptKind::WagonWheel,
            &ModOp::AddTypeDefinition { ty: "Annex".into() },
        )
        .unwrap();
        // Strict load now sees a stale custom.odl (replay is ahead).
        assert!(matches!(
            Repository::load(&dir),
            Err(RepoError::CustomMismatch)
        ));
        // Salvage regenerates the derived files; no designer work is lost.
        let (loaded, report) = Repository::load_salvage(&dir).unwrap();
        assert_eq!(loaded.workspace().log().len(), 1);
        assert!(loaded.workspace().working().type_id("Annex").is_some());
        assert!(!report.data_loss());
        assert!(report.healed);
        // Healed: both strict and salvage load cleanly now.
        assert!(Repository::load(&dir).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn salvage_quarantines_the_bad_tail() {
        let mut repo = repo();
        for ty in ["P1", "P2", "P3"] {
            repo.workspace_mut()
                .apply(
                    ConceptKind::WagonWheel,
                    ModOp::AddTypeDefinition { ty: ty.into() },
                )
                .unwrap();
        }
        let dir = tmpdir("quarantine");
        repo.save(&dir).unwrap();
        // Corrupt the second record: one flipped byte breaks its checksum.
        let log = std::fs::read_to_string(dir.join(SESSION_FILE)).unwrap();
        let corrupted = log.replacen("P2", "Px", 1);
        std::fs::write(dir.join(SESSION_FILE), &corrupted).unwrap();

        let (loaded, report) = Repository::load_salvage(&dir).unwrap();
        // Longest valid prefix: exactly one op survives.
        assert_eq!(report.ops_replayed, 1);
        assert_eq!(report.ops_dropped, 2);
        assert!(report.data_loss());
        assert!(!report.torn_tail);
        let bad = report.first_bad_op.as_ref().unwrap();
        assert_eq!(bad.line, 2);
        assert!(bad.reason.contains("checksum"), "{}", bad.reason);
        assert_eq!(report.quarantined, 2);
        assert!(loaded.workspace().working().type_id("P1").is_some());
        assert!(loaded.workspace().working().type_id("P2").is_none());
        // The bad lines landed in the quarantine file; the log was
        // rewritten to the valid prefix and now loads cleanly.
        let q = std::fs::read_to_string(dir.join(QUARANTINE_FILE)).unwrap();
        assert!(q.contains("Px"));
        let (_, report2) = Repository::load_salvage(&dir).unwrap();
        assert!(report2.is_clean());
        assert_eq!(report2.ops_replayed, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aliases_persist_and_render() {
        let mut repo = repo();
        repo.set_type_alias("Employee", "StaffMember").unwrap();
        repo.set_member_alias("Employee", "badge", "staff_id")
            .unwrap();
        // Canonical output unchanged; local output renamed.
        assert!(repo.custom_schema_odl().contains("interface Employee"));
        let local = repo.custom_schema_local_odl();
        assert!(local.contains("interface StaffMember : Person"), "{local}");
        assert!(local.contains("attribute long staff_id;"));
        assert!(local.contains("relationship set<StaffMember> has"));

        let dir = tmpdir("aliases");
        repo.save(&dir).unwrap();
        let loaded = Repository::load(&dir).unwrap();
        assert_eq!(loaded.aliases(), repo.aliases());
        assert_eq!(
            loaded.custom_schema_local_odl(),
            repo.custom_schema_local_odl()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn alias_collisions_surface_as_repo_errors() {
        let mut repo = repo();
        assert!(matches!(
            repo.set_type_alias("Employee", "Person"),
            Err(RepoError::Alias(_))
        ));
    }

    #[test]
    fn log_format_is_line_per_op() {
        let mut repo = repo();
        repo.workspace_mut()
            .apply(
                ConceptKind::WagonWheel,
                ModOp::AddTypeDefinition { ty: "X".into() },
            )
            .unwrap();
        let log = repo.render_log();
        assert_eq!(log, "wagon_wheel\tadd_type_definition(X)\n");
        // The durable format carries a leading checksum over the same body.
        let durable = repo.render_durable_log();
        let (sum, body) = durable.trim_end().split_once('\t').unwrap();
        assert_eq!(body, "wagon_wheel\tadd_type_definition(X)");
        assert_eq!(from_hex(sum), Some(checksum::checksum(body.as_bytes())));
    }

    #[test]
    fn reports_available() {
        let repo = repo();
        assert!(repo.custom_schema_odl().contains("interface Person"));
        assert!(repo.mapping().render().contains("reuse 100.0%"));
        // Person/Employee carry no keys — consistency may warn, but must run.
        let _ = repo.consistency();
    }
}
