//! Salvage-mode recovery reporting.
//!
//! When [`crate::Repository::load_salvage`] meets damage — a torn op-log
//! tail, a checksum-mismatched file, a missing derived artifact — it does
//! not fail: it replays the longest valid prefix of the op log, moves the
//! bad lines to `session.ops.quarantine`, regenerates what can be
//! regenerated, and returns a [`RecoveryReport`] describing, file by file
//! and op by op, what was kept and what was lost. In the spirit of
//! *Generating Significant Examples for Conceptual Schema Validation*
//! (PAPERS.md), the report is example-level: it names the first bad line
//! and its content, not just a count.

use std::fmt;

/// How the `MANIFEST` looked on load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestStatus {
    /// Present and self-consistent.
    Ok,
    /// Absent: a legacy (v0) directory, loaded without whole-file
    /// verification.
    Missing,
    /// Present but torn or malformed; contents ignored.
    Damaged(String),
}

/// What kind of damage a file suffered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DamageKind {
    /// Listed in the manifest but absent on disk.
    Missing,
    /// Content does not match its manifest checksum.
    ChecksumMismatch,
    /// Content failed to parse.
    Unparseable,
    /// Checksum is valid but the content lags the op log (e.g. derived
    /// files not refreshed after append-only autosaves). No data loss.
    Stale,
}

impl DamageKind {
    fn describe(self) -> &'static str {
        match self {
            DamageKind::Missing => "missing",
            DamageKind::ChecksumMismatch => "checksum mismatch",
            DamageKind::Unparseable => "unparseable",
            DamageKind::Stale => "stale",
        }
    }
}

/// One damaged file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileDamage {
    /// File name within the session directory.
    pub file: String,
    /// What happened to it.
    pub kind: DamageKind,
    /// Human-readable specifics (e.g. the parse error).
    pub detail: String,
}

/// Which layer of the fallback chain actually produced the loaded state.
///
/// Ordered fastest-first: newest snapshot + tail, then an older retained
/// snapshot + a longer tail, then a full replay of the archived log, each
/// tried only when the previous layer's snapshot fails verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadPath {
    /// No checkpoint existed: the whole op log was replayed (also the
    /// path for legacy and never-checkpointed directories).
    #[default]
    FullLog,
    /// The fast path: the newest committed snapshot plus the op-log tail.
    Snapshot {
        /// Checkpoint generation of the snapshot used.
        generation: u64,
    },
    /// Degraded: the newest snapshot was damaged; an older retained
    /// snapshot was used with a correspondingly longer tail.
    FallbackSnapshot {
        /// Checkpoint generation of the snapshot used.
        generation: u64,
    },
    /// Degraded: every retained snapshot was damaged; the state was
    /// rebuilt by replaying the archived log plus the tail from scratch.
    FallbackFullReplay,
}

impl LoadPath {
    /// Did the load have to fall back past the committed fast path?
    pub fn is_degraded(self) -> bool {
        matches!(
            self,
            LoadPath::FallbackSnapshot { .. } | LoadPath::FallbackFullReplay
        )
    }

    fn describe(self) -> String {
        match self {
            LoadPath::FullLog => "full op-log replay (no checkpoint)".into(),
            LoadPath::Snapshot { generation } => {
                format!("snapshot generation {generation} + tail")
            }
            LoadPath::FallbackSnapshot { generation } => {
                format!("FALLBACK to older snapshot generation {generation} + longer tail")
            }
            LoadPath::FallbackFullReplay => "FALLBACK to full replay of the archived log".into(),
        }
    }
}

/// The first op-log record that failed validation or replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadOp {
    /// 1-based line number in `session.ops`.
    pub line: usize,
    /// The raw line content.
    pub content: String,
    /// Why it was rejected (checksum, parse, or replay).
    pub reason: String,
}

/// What salvage-mode loading found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Manifest verification outcome.
    pub manifest: ManifestStatus,
    /// Files that were damaged (missing, corrupted, unparseable, stale).
    pub damage: Vec<FileDamage>,
    /// Ops replayed from the longest valid prefix of the log.
    pub ops_replayed: usize,
    /// Op-log lines dropped (the first bad line and everything after it).
    pub ops_dropped: usize,
    /// The final record was torn mid-write (crash signature): it lacked a
    /// newline or failed its line checksum at the very tail of the log.
    pub torn_tail: bool,
    /// The first bad op-log record, if any.
    pub first_bad_op: Option<BadOp>,
    /// Lines moved to the quarantine file.
    pub quarantined: usize,
    /// The numbered quarantine file the lines were moved to
    /// (`session.ops.quarantine.N`) — successive salvages never overwrite
    /// earlier forensic evidence.
    pub quarantine_file: Option<String>,
    /// Which fallback layer produced the loaded state.
    pub load_path: LoadPath,
    /// Ops covered by the snapshot the load started from (0 without one);
    /// total session ops = `snapshot_ops + ops_replayed`.
    pub snapshot_ops: u64,
    /// Derived files rewritten from the replayed state during healing.
    pub regenerated: Vec<String>,
    /// The session directory was repaired on disk (quarantine written,
    /// valid prefix and derived files rewritten, manifest refreshed).
    pub healed: bool,
    /// Consistency findings on the salvaged session (0 = consistent).
    pub consistency_findings: usize,
}

impl RecoveryReport {
    /// A report describing a perfectly clean load.
    pub fn clean(
        manifest: ManifestStatus,
        ops_replayed: usize,
        consistency_findings: usize,
    ) -> Self {
        RecoveryReport {
            manifest,
            damage: Vec::new(),
            ops_replayed,
            ops_dropped: 0,
            torn_tail: false,
            first_bad_op: None,
            quarantined: 0,
            quarantine_file: None,
            load_path: LoadPath::FullLog,
            snapshot_ops: 0,
            regenerated: Vec::new(),
            healed: false,
            consistency_findings,
        }
    }

    /// The load had to fall back past the committed snapshot fast path —
    /// the state is correct but was rebuilt from a deeper layer.
    pub fn degraded(&self) -> bool {
        self.load_path.is_degraded()
    }

    /// No damage of any kind was observed.
    pub fn is_clean(&self) -> bool {
        self.damage.is_empty()
            && self.ops_dropped == 0
            && !self.torn_tail
            && !matches!(self.manifest, ManifestStatus::Damaged(_))
    }

    /// Designer work was actually lost: ops were dropped, or a
    /// non-derived file was damaged beyond staleness. `custom.odl` /
    /// `mapping.txt` (regenerated exactly by replay) and `snapshot.N`
    /// files (recovered exactly by a deeper fallback layer — a fallback
    /// that loses ops sets `ops_dropped`) do not count.
    pub fn data_loss(&self) -> bool {
        self.ops_dropped > 0
            || self.damage.iter().any(|d| {
                d.kind != DamageKind::Stale
                    && d.file != crate::CUSTOM_FILE
                    && d.file != crate::MAPPING_FILE
                    && !d.file.starts_with("snapshot.")
            })
    }

    /// Render the designer-facing recovery summary.
    pub fn render(&self) -> String {
        let mut out = String::from("recovery report:\n");
        match &self.manifest {
            ManifestStatus::Ok => {}
            ManifestStatus::Missing => {
                out.push_str("  manifest: missing (legacy v0 directory)\n");
            }
            ManifestStatus::Damaged(detail) => {
                out.push_str(&format!("  manifest: damaged ({detail})\n"));
            }
        }
        for d in &self.damage {
            out.push_str(&format!(
                "  file {}: {} — {}\n",
                d.file,
                d.kind.describe(),
                d.detail
            ));
        }
        if self.load_path != LoadPath::FullLog {
            out.push_str(&format!("  load path: {}\n", self.load_path.describe()));
        }
        if self.snapshot_ops > 0 {
            out.push_str(&format!(
                "  snapshot: {} op(s) already folded in\n",
                self.snapshot_ops
            ));
        }
        out.push_str(&format!(
            "  op log: {} op(s) replayed, {} dropped{}\n",
            self.ops_replayed,
            self.ops_dropped,
            if self.torn_tail {
                " (torn tail: the final record was cut mid-write)"
            } else {
                ""
            }
        ));
        if let Some(bad) = &self.first_bad_op {
            out.push_str(&format!(
                "  first bad record: line {} ({}): {:?}\n",
                bad.line, bad.reason, bad.content
            ));
        }
        if self.quarantined > 0 {
            let file = self
                .quarantine_file
                .as_deref()
                .unwrap_or(crate::QUARANTINE_FILE);
            out.push_str(&format!(
                "  quarantined {} line(s) to {file}\n",
                self.quarantined
            ));
        }
        if !self.regenerated.is_empty() {
            out.push_str(&format!(
                "  regenerated from replay: {}\n",
                self.regenerated.join(", ")
            ));
        }
        if self.healed {
            out.push_str("  session directory repaired on disk\n");
        }
        out.push_str(&format!(
            "  salvaged session consistency: {}\n",
            if self.consistency_findings == 0 {
                "clean".to_string()
            } else {
                format!("{} finding(s)", self.consistency_findings)
            }
        ));
        out
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_is_clean() {
        let r = RecoveryReport::clean(ManifestStatus::Ok, 5, 0);
        assert!(r.is_clean());
        assert!(!r.data_loss());
        assert!(r.render().contains("5 op(s) replayed, 0 dropped"));
    }

    #[test]
    fn derived_damage_is_not_data_loss() {
        let mut r = RecoveryReport::clean(ManifestStatus::Ok, 2, 0);
        r.damage.push(FileDamage {
            file: crate::CUSTOM_FILE.into(),
            kind: DamageKind::ChecksumMismatch,
            detail: "corrupted".into(),
        });
        assert!(!r.is_clean());
        assert!(!r.data_loss());
        // But a damaged op log is.
        r.ops_dropped = 1;
        assert!(r.data_loss());
    }

    #[test]
    fn render_names_the_first_bad_line() {
        let mut r = RecoveryReport::clean(ManifestStatus::Missing, 1, 2);
        r.ops_dropped = 1;
        r.torn_tail = true;
        r.first_bad_op = Some(BadOp {
            line: 2,
            content: "wagon_wheel\tadd_".into(),
            reason: "line checksum mismatch".into(),
        });
        r.quarantined = 1;
        let text = r.render();
        assert!(text.contains("legacy v0"));
        assert!(text.contains("torn tail"));
        assert!(text.contains("line 2 (line checksum mismatch)"));
        assert!(text.contains("2 finding(s)"));
    }

    #[test]
    fn fallback_paths_are_degraded_and_named() {
        let mut r = RecoveryReport::clean(ManifestStatus::Ok, 7, 0);
        assert!(!r.degraded());
        r.load_path = LoadPath::Snapshot { generation: 2 };
        r.snapshot_ops = 100;
        assert!(!r.degraded());
        assert!(r.render().contains("snapshot generation 2 + tail"));
        assert!(r.render().contains("100 op(s) already folded in"));
        r.load_path = LoadPath::FallbackSnapshot { generation: 1 };
        assert!(r.degraded());
        assert!(r
            .render()
            .contains("FALLBACK to older snapshot generation 1"));
        r.load_path = LoadPath::FallbackFullReplay;
        assert!(r.degraded());
        assert!(r.render().contains("FALLBACK to full replay"));
    }

    #[test]
    fn snapshot_damage_alone_is_not_data_loss() {
        let mut r = RecoveryReport::clean(ManifestStatus::Ok, 3, 0);
        r.load_path = LoadPath::FallbackSnapshot { generation: 1 };
        r.damage.push(FileDamage {
            file: "snapshot.2".into(),
            kind: DamageKind::ChecksumMismatch,
            detail: "corrupted".into(),
        });
        assert!(!r.is_clean());
        assert!(!r.data_loss());
        r.ops_dropped = 1;
        assert!(r.data_loss());
    }

    #[test]
    fn quarantine_render_uses_the_numbered_file() {
        let mut r = RecoveryReport::clean(ManifestStatus::Ok, 1, 0);
        r.quarantined = 2;
        r.quarantine_file = Some("session.ops.quarantine.3".into());
        assert!(r
            .render()
            .contains("quarantined 2 line(s) to session.ops.quarantine.3"));
    }
}
