//! The `MANIFEST` file: format version plus per-file checksums.
//!
//! Written atomically *last* during a save, the manifest is the commit
//! record of the session directory: every whole-file artifact
//! (`shrink_wrap.odl`, `custom.odl`, `mapping.txt`, `local_names.txt`) is
//! listed with its length and checksum. `session.ops` is deliberately
//! *not* listed — it is append-only and self-validating line by line, so
//! appends need not rewrite the manifest.
//!
//! Format (tab-separated, one entry per line, self-checksummed):
//!
//! ```text
//! sws-repository v1
//! file\t<len>\t<checksum-hex16>\t<name>
//! ...
//! end\t<checksum-hex16 of everything above>
//! ```
//!
//! A checkpointed directory (see `crate::snapshot`) is committed by a
//! **v2** manifest, which additionally carries the checkpoint generation
//! and the retained snapshot files:
//!
//! ```text
//! sws-repository v2
//! checkpoint\t<generation>
//! snap\t<gen>\t<ops-covered>\t<len>\t<checksum-hex16>
//! file\t<len>\t<checksum-hex16>\t<name>
//! ...
//! end\t<checksum-hex16 of everything above>
//! ```
//!
//! A directory that has never been checkpointed keeps writing the
//! byte-identical v1 form, so pre-checkpoint builds still read it; a v2
//! manifest makes those builds refuse with `UnsupportedVersion` rather
//! than silently ignore the snapshot that the (truncated) op log depends
//! on.
//!
//! A manifest that is missing is a legacy (v0) directory; a manifest that
//! fails its own trailer checksum or does not parse is *damaged* — salvage
//! loading then falls back to per-line op-log validation and reports it.

use std::collections::BTreeMap;
use std::fmt;

use crate::checksum::{checksum, from_hex, to_hex};

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 2;

/// File name of the manifest.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// One whole-file entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileEntry {
    /// File length in bytes.
    pub len: u64,
    /// Content checksum.
    pub checksum: u64,
}

/// One retained checkpoint snapshot, as listed in a v2 manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotRef {
    /// Checkpoint generation (names the `snapshot.<gen>` file).
    pub generation: u64,
    /// Ops the snapshot covers (the tail replays sequence numbers
    /// `>= ops`).
    pub ops: u64,
    /// Snapshot file length in bytes.
    pub len: u64,
    /// Snapshot file content checksum.
    pub checksum: u64,
}

/// Checkpoint state carried by a v2 manifest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointMeta {
    /// Highest checkpoint generation ever committed (monotonic).
    pub generation: u64,
    /// Retained snapshots, oldest first (newest last). The newest is the
    /// fast path; older ones are salvage fallback layers.
    pub snapshots: Vec<SnapshotRef>,
}

impl CheckpointMeta {
    /// The newest retained snapshot, if any.
    pub fn newest(&self) -> Option<&SnapshotRef> {
        self.snapshots.last()
    }

    /// Sequence number the durable op-log tail starts at: the newest
    /// snapshot's coverage, or 0 when nothing is checkpointed.
    pub fn tail_start(&self) -> u64 {
        self.newest().map_or(0, |s| s.ops)
    }
}

/// A parsed manifest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Format version from the header line.
    pub version: u32,
    /// Entries by file name.
    pub entries: BTreeMap<String, FileEntry>,
    /// Checkpoint state (v2); `None` for never-checkpointed directories.
    pub checkpoint: Option<CheckpointMeta>,
}

/// Why a manifest failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// Header line absent or malformed.
    BadHeader,
    /// The version is newer than this build understands.
    UnsupportedVersion(u32),
    /// An entry line is malformed (1-based line number).
    BadEntry(usize),
    /// The `end` trailer is missing (torn manifest) or its checksum does
    /// not cover the preceding bytes.
    BadTrailer,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::BadHeader => f.write_str("malformed manifest header"),
            ManifestError::UnsupportedVersion(v) => {
                write!(f, "unsupported manifest version v{v}")
            }
            ManifestError::BadEntry(line) => write!(f, "malformed manifest entry at line {line}"),
            ManifestError::BadTrailer => {
                f.write_str("manifest trailer missing or checksum mismatch (torn write?)")
            }
        }
    }
}

impl Manifest {
    /// A fresh manifest. It stays at the v1 wire format until a
    /// checkpoint is attached — never-checkpointed directories remain
    /// byte-compatible with pre-checkpoint builds.
    pub fn new() -> Self {
        Manifest {
            version: 1,
            entries: BTreeMap::new(),
            checkpoint: None,
        }
    }

    /// Attach checkpoint state, upgrading the manifest to the v2 wire
    /// format. A meta with no generation and no snapshots downgrades back
    /// to v1 (nothing to record).
    pub fn set_checkpoint(&mut self, meta: CheckpointMeta) {
        if meta.generation == 0 && meta.snapshots.is_empty() {
            self.checkpoint = None;
            self.version = 1;
        } else {
            self.checkpoint = Some(meta);
            self.version = FORMAT_VERSION;
        }
    }

    /// Record a file's content.
    pub fn insert(&mut self, name: &str, data: &[u8]) {
        self.entries.insert(
            name.to_string(),
            FileEntry {
                len: data.len() as u64,
                checksum: checksum(data),
            },
        );
    }

    /// Does `data` match the recorded entry for `name`? `None` when the
    /// manifest has no entry for that file.
    pub fn verify(&self, name: &str, data: &[u8]) -> Option<bool> {
        self.entries
            .get(name)
            .map(|e| e.len == data.len() as u64 && e.checksum == checksum(data))
    }

    /// Render to the on-disk format (self-checksummed). The header
    /// version follows the content: v2 when checkpoint state is present,
    /// v1 otherwise.
    pub fn render(&self) -> String {
        let version = if self.checkpoint.is_some() {
            FORMAT_VERSION
        } else {
            1
        };
        let mut body = format!("sws-repository v{version}\n");
        if let Some(ckpt) = &self.checkpoint {
            body.push_str(&format!("checkpoint\t{}\n", ckpt.generation));
            for snap in &ckpt.snapshots {
                body.push_str(&format!(
                    "snap\t{}\t{}\t{}\t{}\n",
                    snap.generation,
                    snap.ops,
                    snap.len,
                    to_hex(snap.checksum)
                ));
            }
        }
        for (name, entry) in &self.entries {
            body.push_str(&format!(
                "file\t{}\t{}\t{}\n",
                entry.len,
                to_hex(entry.checksum),
                name
            ));
        }
        let trailer = to_hex(checksum(body.as_bytes()));
        body.push_str(&format!("end\t{trailer}\n"));
        body
    }

    /// Parse the on-disk format, verifying the trailer checksum.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        // Split off the trailer: the last non-empty line must be `end\t<hex>`
        // and its checksum must cover every byte before it.
        let trimmed = text.strip_suffix('\n').unwrap_or(text);
        let (body, trailer_line) = match trimmed.rfind('\n') {
            Some(pos) => (&text[..pos + 1], &trimmed[pos + 1..]),
            None => return Err(ManifestError::BadTrailer),
        };
        let sum = trailer_line
            .strip_prefix("end\t")
            .and_then(from_hex)
            .ok_or(ManifestError::BadTrailer)?;
        if sum != checksum(body.as_bytes()) {
            return Err(ManifestError::BadTrailer);
        }

        let mut lines = body.lines().enumerate();
        let (_, header) = lines.next().ok_or(ManifestError::BadHeader)?;
        let version: u32 = header
            .strip_prefix("sws-repository v")
            .and_then(|v| v.parse().ok())
            .ok_or(ManifestError::BadHeader)?;
        if version > FORMAT_VERSION {
            return Err(ManifestError::UnsupportedVersion(version));
        }

        let mut manifest = Manifest {
            version,
            entries: BTreeMap::new(),
            checkpoint: None,
        };
        for (i, line) in lines {
            let bad = || ManifestError::BadEntry(i + 1);
            let mut fields = line.splitn(5, '\t');
            match fields.next() {
                Some("file") => {
                    let len: u64 = fields.next().and_then(|f| f.parse().ok()).ok_or_else(bad)?;
                    let sum = fields.next().and_then(from_hex).ok_or_else(bad)?;
                    let name = fields.next().filter(|n| !n.is_empty()).ok_or_else(bad)?;
                    manifest
                        .entries
                        .insert(name.to_string(), FileEntry { len, checksum: sum });
                }
                Some("checkpoint") => {
                    let generation = fields.next().and_then(|f| f.parse().ok()).ok_or_else(bad)?;
                    manifest
                        .checkpoint
                        .get_or_insert_with(CheckpointMeta::default)
                        .generation = generation;
                }
                Some("snap") => {
                    let generation = fields.next().and_then(|f| f.parse().ok()).ok_or_else(bad)?;
                    let ops = fields.next().and_then(|f| f.parse().ok()).ok_or_else(bad)?;
                    let len = fields.next().and_then(|f| f.parse().ok()).ok_or_else(bad)?;
                    let sum = fields.next().and_then(from_hex).ok_or_else(bad)?;
                    manifest
                        .checkpoint
                        .get_or_insert_with(CheckpointMeta::default)
                        .snapshots
                        .push(SnapshotRef {
                            generation,
                            ops,
                            len,
                            checksum: sum,
                        });
                }
                _ => return Err(bad()),
            }
        }
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let mut m = Manifest::new();
        m.insert("shrink_wrap.odl", b"interface A { }");
        m.insert("custom.odl", b"interface A { attribute long x; }");
        let text = m.render();
        let parsed = Manifest::parse(&text).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(
            parsed.verify("shrink_wrap.odl", b"interface A { }"),
            Some(true)
        );
        assert_eq!(
            parsed.verify("shrink_wrap.odl", b"interface B { }"),
            Some(false)
        );
        assert_eq!(parsed.verify("unlisted", b""), None);
    }

    #[test]
    fn torn_manifest_detected() {
        let mut m = Manifest::new();
        m.insert("custom.odl", b"x");
        let text = m.render();
        // Truncate mid-file: the trailer is gone or no longer matches.
        for cut in [1, text.len() / 2, text.len() - 2] {
            assert!(Manifest::parse(&text[..cut]).is_err(), "cut at {cut}");
        }
        // Flip a byte in an entry line: trailer mismatch.
        let tampered = text.replacen("custom", "custom".to_uppercase().as_str(), 1);
        assert_eq!(Manifest::parse(&tampered), Err(ManifestError::BadTrailer));
    }

    #[test]
    fn future_version_rejected() {
        let body = "sws-repository v99\n";
        let text = format!("{body}end\t{}\n", to_hex(checksum(body.as_bytes())));
        assert_eq!(
            Manifest::parse(&text),
            Err(ManifestError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn empty_manifest_round_trips() {
        let m = Manifest::new();
        assert_eq!(Manifest::parse(&m.render()).unwrap(), m);
    }

    #[test]
    fn checkpointed_manifest_upgrades_to_v2_and_round_trips() {
        let mut m = Manifest::new();
        m.insert("shrink_wrap.odl", b"interface A { }");
        m.set_checkpoint(CheckpointMeta {
            generation: 4,
            snapshots: vec![
                SnapshotRef {
                    generation: 3,
                    ops: 100,
                    len: 2048,
                    checksum: 0xdead,
                },
                SnapshotRef {
                    generation: 4,
                    ops: 150,
                    len: 2112,
                    checksum: 0xbeef,
                },
            ],
        });
        let text = m.render();
        assert!(text.starts_with("sws-repository v2\n"), "{text}");
        assert!(text.contains("checkpoint\t4\n"));
        let parsed = Manifest::parse(&text).unwrap();
        assert_eq!(parsed, m);
        let ckpt = parsed.checkpoint.unwrap();
        assert_eq!(ckpt.tail_start(), 150);
        assert_eq!(ckpt.newest().unwrap().generation, 4);
    }

    #[test]
    fn empty_checkpoint_meta_stays_v1() {
        let mut m = Manifest::new();
        m.insert("custom.odl", b"x");
        m.set_checkpoint(CheckpointMeta::default());
        assert!(m.render().starts_with("sws-repository v1\n"));
        assert_eq!(Manifest::parse(&m.render()).unwrap(), m);
    }
}
