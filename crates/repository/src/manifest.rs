//! The `MANIFEST` file: format version plus per-file checksums.
//!
//! Written atomically *last* during a save, the manifest is the commit
//! record of the session directory: every whole-file artifact
//! (`shrink_wrap.odl`, `custom.odl`, `mapping.txt`, `local_names.txt`) is
//! listed with its length and checksum. `session.ops` is deliberately
//! *not* listed — it is append-only and self-validating line by line, so
//! appends need not rewrite the manifest.
//!
//! Format (tab-separated, one entry per line, self-checksummed):
//!
//! ```text
//! sws-repository v1
//! file\t<len>\t<checksum-hex16>\t<name>
//! ...
//! end\t<checksum-hex16 of everything above>
//! ```
//!
//! A manifest that is missing is a legacy (v0) directory; a manifest that
//! fails its own trailer checksum or does not parse is *damaged* — salvage
//! loading then falls back to per-line op-log validation and reports it.

use std::collections::BTreeMap;
use std::fmt;

use crate::checksum::{checksum, from_hex, to_hex};

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

/// File name of the manifest.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// One whole-file entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileEntry {
    /// File length in bytes.
    pub len: u64,
    /// Content checksum.
    pub checksum: u64,
}

/// A parsed manifest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Format version from the header line.
    pub version: u32,
    /// Entries by file name.
    pub entries: BTreeMap<String, FileEntry>,
}

/// Why a manifest failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// Header line absent or malformed.
    BadHeader,
    /// The version is newer than this build understands.
    UnsupportedVersion(u32),
    /// An entry line is malformed (1-based line number).
    BadEntry(usize),
    /// The `end` trailer is missing (torn manifest) or its checksum does
    /// not cover the preceding bytes.
    BadTrailer,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::BadHeader => f.write_str("malformed manifest header"),
            ManifestError::UnsupportedVersion(v) => {
                write!(f, "unsupported manifest version v{v}")
            }
            ManifestError::BadEntry(line) => write!(f, "malformed manifest entry at line {line}"),
            ManifestError::BadTrailer => {
                f.write_str("manifest trailer missing or checksum mismatch (torn write?)")
            }
        }
    }
}

impl Manifest {
    /// A fresh manifest at the current version.
    pub fn new() -> Self {
        Manifest {
            version: FORMAT_VERSION,
            entries: BTreeMap::new(),
        }
    }

    /// Record a file's content.
    pub fn insert(&mut self, name: &str, data: &[u8]) {
        self.entries.insert(
            name.to_string(),
            FileEntry {
                len: data.len() as u64,
                checksum: checksum(data),
            },
        );
    }

    /// Does `data` match the recorded entry for `name`? `None` when the
    /// manifest has no entry for that file.
    pub fn verify(&self, name: &str, data: &[u8]) -> Option<bool> {
        self.entries
            .get(name)
            .map(|e| e.len == data.len() as u64 && e.checksum == checksum(data))
    }

    /// Render to the on-disk format (self-checksummed).
    pub fn render(&self) -> String {
        let mut body = format!("sws-repository v{}\n", self.version);
        for (name, entry) in &self.entries {
            body.push_str(&format!(
                "file\t{}\t{}\t{}\n",
                entry.len,
                to_hex(entry.checksum),
                name
            ));
        }
        let trailer = to_hex(checksum(body.as_bytes()));
        body.push_str(&format!("end\t{trailer}\n"));
        body
    }

    /// Parse the on-disk format, verifying the trailer checksum.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        // Split off the trailer: the last non-empty line must be `end\t<hex>`
        // and its checksum must cover every byte before it.
        let trimmed = text.strip_suffix('\n').unwrap_or(text);
        let (body, trailer_line) = match trimmed.rfind('\n') {
            Some(pos) => (&text[..pos + 1], &trimmed[pos + 1..]),
            None => return Err(ManifestError::BadTrailer),
        };
        let sum = trailer_line
            .strip_prefix("end\t")
            .and_then(from_hex)
            .ok_or(ManifestError::BadTrailer)?;
        if sum != checksum(body.as_bytes()) {
            return Err(ManifestError::BadTrailer);
        }

        let mut lines = body.lines().enumerate();
        let (_, header) = lines.next().ok_or(ManifestError::BadHeader)?;
        let version: u32 = header
            .strip_prefix("sws-repository v")
            .and_then(|v| v.parse().ok())
            .ok_or(ManifestError::BadHeader)?;
        if version > FORMAT_VERSION {
            return Err(ManifestError::UnsupportedVersion(version));
        }

        let mut manifest = Manifest {
            version,
            entries: BTreeMap::new(),
        };
        for (i, line) in lines {
            let bad = || ManifestError::BadEntry(i + 1);
            let mut fields = line.splitn(4, '\t');
            if fields.next() != Some("file") {
                return Err(bad());
            }
            let len: u64 = fields.next().and_then(|f| f.parse().ok()).ok_or_else(bad)?;
            let sum = fields.next().and_then(from_hex).ok_or_else(bad)?;
            let name = fields.next().filter(|n| !n.is_empty()).ok_or_else(bad)?;
            manifest
                .entries
                .insert(name.to_string(), FileEntry { len, checksum: sum });
        }
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let mut m = Manifest::new();
        m.insert("shrink_wrap.odl", b"interface A { }");
        m.insert("custom.odl", b"interface A { attribute long x; }");
        let text = m.render();
        let parsed = Manifest::parse(&text).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(
            parsed.verify("shrink_wrap.odl", b"interface A { }"),
            Some(true)
        );
        assert_eq!(
            parsed.verify("shrink_wrap.odl", b"interface B { }"),
            Some(false)
        );
        assert_eq!(parsed.verify("unlisted", b""), None);
    }

    #[test]
    fn torn_manifest_detected() {
        let mut m = Manifest::new();
        m.insert("custom.odl", b"x");
        let text = m.render();
        // Truncate mid-file: the trailer is gone or no longer matches.
        for cut in [1, text.len() / 2, text.len() - 2] {
            assert!(Manifest::parse(&text[..cut]).is_err(), "cut at {cut}");
        }
        // Flip a byte in an entry line: trailer mismatch.
        let tampered = text.replacen("custom", "custom".to_uppercase().as_str(), 1);
        assert_eq!(Manifest::parse(&tampered), Err(ManifestError::BadTrailer));
    }

    #[test]
    fn future_version_rejected() {
        let body = "sws-repository v99\n";
        let text = format!("{body}end\t{}\n", to_hex(checksum(body.as_bytes())));
        assert_eq!(
            Manifest::parse(&text),
            Err(ManifestError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn empty_manifest_round_trips() {
        let m = Manifest::new();
        assert_eq!(Manifest::parse(&m.render()).unwrap(), m);
    }
}
