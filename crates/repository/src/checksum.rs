//! Content checksums for the on-disk session format.
//!
//! The hash is a streaming variant of the SplitMix64 mixing function the
//! corpus generator already uses as its PRNG (zero-dependency by design):
//! each 8-byte word of input is absorbed into the state through the
//! finalizer, and the length is folded in last so prefixes of a buffer
//! never collide with the buffer itself.
//!
//! This is a *corruption* check (torn writes, bit rot, truncation), not a
//! cryptographic MAC: 64 bits is plenty to make accidental damage
//! detectable, which is all the repository promises.

/// Domain-separation seed for repository checksums ("SWSREPO1").
const SEED: u64 = 0x5357_5352_4550_4f31;

/// SplitMix64 finalizer: the avalanche permutation.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Checksum a byte string.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut state = SEED;
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        state = mix(state
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from_le_bytes(word)));
    }
    mix(state ^ bytes.len() as u64)
}

/// Render a checksum in the canonical 16-digit lowercase-hex form used by
/// the `MANIFEST` and the op log.
pub fn to_hex(sum: u64) -> String {
    format!("{sum:016x}")
}

/// Parse a canonical 16-digit lowercase-hex checksum field.
pub fn from_hex(field: &str) -> Option<u64> {
    if field.len() != 16 || !field.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(field, 16).ok()
}

/// True when `field` has the exact shape of a rendered checksum. Used to
/// distinguish checksummed v1 op-log lines from legacy v0 lines (whose
/// first field is a concept-kind tag, never 16 hex digits).
pub fn looks_like_hex(field: &str) -> bool {
    field.len() == 16
        && field
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        assert_eq!(checksum(b"hello"), checksum(b"hello"));
        assert_ne!(checksum(b"hello"), checksum(b"hellp"));
        assert_ne!(checksum(b"hello"), checksum(b"hell"));
        assert_ne!(checksum(b""), checksum(b"\0"));
        // Zero padding must not collide across lengths.
        assert_ne!(checksum(b"ab\0"), checksum(b"ab"));
    }

    #[test]
    fn hex_round_trip() {
        let sum = checksum(b"wagon_wheel\tadd_type_definition(X)");
        let hex = to_hex(sum);
        assert_eq!(hex.len(), 16);
        assert!(looks_like_hex(&hex));
        assert_eq!(from_hex(&hex), Some(sum));
    }

    #[test]
    fn tags_never_look_like_checksums() {
        for tag in [
            "wagon_wheel",
            "generalization",
            "aggregation",
            "instance_of",
        ] {
            assert!(!looks_like_hex(tag));
        }
        assert!(!looks_like_hex("0123456789ABCDEF")); // uppercase rejected
        assert!(!looks_like_hex("0123456789abcde")); // short
    }
}
