//! The repository's I/O abstraction.
//!
//! All repository reads and writes go through [`RepoIo`], which offers
//! exactly the primitives the crash-safety protocol needs:
//!
//! * [`RepoIo::write_atomic`] — write-temp → fsync → atomic rename (plus a
//!   directory fsync), so a file is always either its old or its new
//!   content, never a torn mixture;
//! * [`RepoIo::append_sync`] — append one record and fsync, the op-log hot
//!   path;
//! * plain reads and existence checks.
//!
//! Three implementations:
//!
//! * [`RealIo`] — the filesystem, used by `Repository::save`/`load`;
//! * [`MemIo`] — a deterministic in-memory filesystem for tests;
//! * [`FaultIo`] — wraps the same in-memory state and injects either an
//!   I/O *error* (operation fails, state keeps its pre-step contents) or a
//!   *crash* (the process "dies" mid-primitive: partially-written,
//!   un-fsynced data may be torn or lost) at a chosen step. The
//!   crash-consistency property tests sweep every step index.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Abstract durable storage for a session directory.
///
/// `Send + Sync` is part of the contract: a `Repository` (and the designer
/// `Session` wrapping it) must be movable across threads so `swsd serve`
/// can guard one behind a mutex and drive it from any acceptor thread. All
/// three implementations are trivially thread-safe (`RealIo` is stateless;
/// `MemIo` and `FaultIo` synchronize internally).
pub trait RepoIo: fmt::Debug + Send + Sync {
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically replace `path` with `data` (write temp, fsync, rename).
    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Append `data` to `path` (creating it if needed) and fsync.
    fn append_sync(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Does `path` exist?
    fn exists(&self, path: &Path) -> bool;
    /// Recursively create a directory.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Durably delete a file. Removing a file that does not exist is not
    /// an error (retries after a crash must be idempotent).
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// Name of the temporary file `write_atomic` stages next to `path`.
/// Loaders ignore it: a crash can leave a torn temp behind harmlessly.
pub(crate) fn temp_name(path: &Path) -> PathBuf {
    let file = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    path.with_file_name(format!(".{file}.tmp"))
}

// ---------------------------------------------------------------------
// Real filesystem
// ---------------------------------------------------------------------

/// The real filesystem, with full durability discipline.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

/// fsync the directory containing `path`, so a just-renamed entry is
/// durable. Best-effort on platforms where directories cannot be synced.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

impl RepoIo for RealIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let tmp = temp_name(path);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path);
        Ok(())
    }

    fn append_sync(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(data)?;
        f.sync_all()
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Ok(()) => {
                sync_parent_dir(path);
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

// ---------------------------------------------------------------------
// In-memory filesystem
// ---------------------------------------------------------------------

/// One in-memory file: the content a reader sees now, plus the prefix of
/// it known durable (covered by an fsync). On a crash, anything beyond
/// the durable prefix may be torn or lost.
#[derive(Debug, Clone, Default)]
struct MemFile {
    content: Vec<u8>,
    durable_len: usize,
}

#[derive(Debug, Default)]
struct MemFs {
    files: BTreeMap<PathBuf, MemFile>,
    /// Set once a crash has been injected; every later op fails.
    crashed: bool,
}

/// A deterministic in-memory filesystem. Cloning shares the state;
/// [`MemIo::snapshot`] deep-copies it (to restart a crash sweep from the
/// same base image).
#[derive(Debug, Clone, Default)]
pub struct MemIo {
    state: Arc<Mutex<MemFs>>,
}

fn crash_error() -> io::Error {
    io::Error::other("injected crash: process died mid-write")
}

impl MemIo {
    /// Fresh empty filesystem.
    pub fn new() -> Self {
        MemIo::default()
    }

    /// Deep-copy the current disk image into an independent `MemIo`.
    pub fn snapshot(&self) -> MemIo {
        let st = self.state.lock().expect("MemIo lock poisoned");
        let copy = MemFs {
            files: st.files.clone(),
            crashed: st.crashed,
        };
        MemIo {
            state: Arc::new(Mutex::new(copy)),
        }
    }

    /// Simulate the reboot after a crash: for every file, content beyond
    /// the durable prefix survives only partially — a pseudo-random prefix
    /// of the un-fsynced tail, derived from `seed` (the page cache flushed
    /// some pages, lost the rest). Clears the crashed flag so the
    /// "rebooted" filesystem is usable again.
    pub fn post_crash(&self, seed: u64) {
        let mut st = self.state.lock().expect("MemIo lock poisoned");
        for (path, file) in st.files.iter_mut() {
            if file.content.len() > file.durable_len {
                let tail = file.content.len() - file.durable_len;
                let mix = crate::checksum::checksum(path.to_string_lossy().as_bytes()) ^ seed;
                let keep = (mix % (tail as u64 + 1)) as usize;
                file.content.truncate(file.durable_len + keep);
            }
            file.durable_len = file.content.len();
        }
        st.crashed = false;
    }

    /// Delete a file, for damaged-directory fixture construction.
    pub fn remove(&self, path: &Path) {
        let mut st = self.state.lock().expect("MemIo lock poisoned");
        st.files.remove(path);
    }

    /// Raw file contents, for assertions.
    pub fn contents(&self, path: &Path) -> Option<Vec<u8>> {
        let st = self.state.lock().expect("MemIo lock poisoned");
        st.files.get(path).map(|f| f.content.clone())
    }

    /// All file paths currently present.
    pub fn paths(&self) -> Vec<PathBuf> {
        let st = self.state.lock().expect("MemIo lock poisoned");
        st.files.keys().cloned().collect()
    }

    fn with<R>(&self, f: impl FnOnce(&mut MemFs) -> io::Result<R>) -> io::Result<R> {
        let mut st = self.state.lock().expect("MemIo lock poisoned");
        if st.crashed {
            return Err(crash_error());
        }
        f(&mut st)
    }
}

impl RepoIo for MemIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.with(|st| {
            st.files
                .get(path)
                .map(|f| f.content.clone())
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
        })
    }

    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.with(|st| {
            st.files.insert(
                path.to_path_buf(),
                MemFile {
                    content: data.to_vec(),
                    durable_len: data.len(),
                },
            );
            Ok(())
        })
    }

    fn append_sync(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.with(|st| {
            let file = st.files.entry(path.to_path_buf()).or_default();
            file.content.extend_from_slice(data);
            file.durable_len = file.content.len();
            Ok(())
        })
    }

    fn exists(&self, path: &Path) -> bool {
        let st = self.state.lock().expect("MemIo lock poisoned");
        !st.crashed && st.files.contains_key(path)
    }

    fn create_dir_all(&self, _path: &Path) -> io::Result<()> {
        self.with(|_| Ok(()))
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.with(|st| {
            st.files.remove(path);
            Ok(())
        })
    }
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

/// What to inject, and at which primitive step.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Fault {
    /// Stop the world at step `n`: partial un-fsynced data may remain.
    CrashAt(u64),
    /// Fail step `n` with an I/O error; state keeps its pre-step contents
    /// and the process continues.
    ErrorAt(u64),
    /// Stop the world at the `remaining`-th upcoming micro-step whose
    /// journal description contains `needle` — a crash aimed at a protocol
    /// phase ("append", "rename") instead of an absolute step index, for
    /// workloads whose step counts are timing-dependent (a live server).
    CrashOnContains { needle: String, remaining: u64 },
}

#[derive(Debug, Default)]
struct FaultPlan {
    fault: Option<Fault>,
    step: u64,
    /// One human-readable entry per micro-step executed, in order —
    /// ordering regression tests assert on this journal (e.g. "no op-log
    /// append lands between a checkpoint's snapshot write and its
    /// manifest commit").
    journal: Vec<String>,
}

/// A [`RepoIo`] over a shared [`MemIo`] that decomposes every primitive
/// into its micro-steps (partial write, full write, fsync, rename) and
/// injects a crash or an error at a chosen step index.
#[derive(Debug)]
pub struct FaultIo {
    fs: MemIo,
    plan: Mutex<FaultPlan>,
}

/// The effect a micro-step has on the in-memory disk.
enum Step<'a> {
    /// Replace `path`'s content with a (possibly partial) un-fsynced blob.
    WriteUnsynced(&'a Path, &'a [u8]),
    /// Mark `path` fully durable.
    Sync(&'a Path),
    /// Atomically (and durably) rename `from` to `to`.
    Rename(&'a Path, &'a Path),
    /// Append a (possibly partial) un-fsynced blob to `path`.
    AppendUnsynced(&'a Path, &'a [u8]),
    /// Durably delete `path` (no-op if absent).
    Remove(&'a Path),
}

impl Step<'_> {
    /// Journal line for this micro-step.
    fn describe(&self) -> String {
        match self {
            Step::WriteUnsynced(p, _) => format!("write {}", p.display()),
            Step::Sync(p) => format!("sync {}", p.display()),
            Step::Rename(from, to) => format!("rename {} -> {}", from.display(), to.display()),
            Step::AppendUnsynced(p, _) => format!("append {}", p.display()),
            Step::Remove(p) => format!("remove {}", p.display()),
        }
    }
}

impl FaultIo {
    /// Wrap an in-memory filesystem with no fault planned.
    pub fn new(fs: MemIo) -> Self {
        FaultIo {
            fs,
            plan: Mutex::new(FaultPlan::default()),
        }
    }

    /// The fault plan, poison-tolerantly. Fault injection runs inside
    /// tests and crash sweeps that *panic on purpose*; a panic while the
    /// plan lock is held must not cascade into a second panic when the
    /// crash dumper (or the next sweep iteration) touches the plan again.
    fn plan(&self) -> std::sync::MutexGuard<'_, FaultPlan> {
        self.plan
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Inject a crash at micro-step `step` (0-based).
    pub fn crash_at(&self, step: u64) {
        self.plan().fault = Some(Fault::CrashAt(step));
    }

    /// Inject a transient I/O error at micro-step `step` (0-based).
    pub fn error_at(&self, step: u64) {
        self.plan().fault = Some(Fault::ErrorAt(step));
    }

    /// Inject a crash at the `nth` (0-based) upcoming micro-step whose
    /// journal description contains `needle`: `("append", 0)` dies during
    /// the next op-log append, `("rename", 1)` during the second atomic
    /// commit from now. Unlike [`Self::crash_at`], this does not require
    /// knowing absolute step indices, so it can aim at a phase of a
    /// concurrent workload (e.g. "the next checkpoint a live server
    /// performs") where exact counts vary run to run.
    pub fn crash_on_contains(&self, needle: &str, nth: u64) {
        self.plan().fault = Some(Fault::CrashOnContains {
            needle: needle.to_string(),
            remaining: nth,
        });
    }

    /// Clear any planned fault (the error was transient).
    pub fn clear_fault(&self) {
        self.plan().fault = None;
    }

    /// Micro-steps executed so far — run a workload once with no fault to
    /// size a crash sweep.
    pub fn steps_taken(&self) -> u64 {
        self.plan().step
    }

    /// The ordered journal of micro-steps attempted so far (one line per
    /// step, including the faulted one).
    pub fn journal(&self) -> Vec<String> {
        self.plan().journal.clone()
    }

    /// Forget the journal so the next assertion window starts clean. The
    /// step counter is left untouched (fault indices stay meaningful).
    pub fn clear_journal(&self) {
        self.plan().journal.clear();
    }

    /// The underlying shared filesystem.
    pub fn fs(&self) -> &MemIo {
        &self.fs
    }

    /// Run one micro-step: apply the fault if this is the chosen step,
    /// otherwise apply the step's effect.
    fn step(&self, step: Step<'_>) -> io::Result<()> {
        let fault = {
            let mut plan = self.plan();
            let this = plan.step;
            plan.step += 1;
            let describe = step.describe();
            let hit = match &mut plan.fault {
                Some(Fault::CrashAt(n)) | Some(Fault::ErrorAt(n)) => *n == this,
                Some(Fault::CrashOnContains { needle, remaining })
                    if describe.contains(needle.as_str()) =>
                {
                    if *remaining == 0 {
                        true
                    } else {
                        *remaining -= 1;
                        false
                    }
                }
                Some(Fault::CrashOnContains { .. }) => false,
                None => false,
            };
            plan.journal.push(describe);
            if hit {
                plan.fault.clone()
            } else {
                None
            }
        };
        match fault {
            Some(Fault::ErrorAt(_)) => {
                return Err(io::Error::other("injected I/O error (disk full)"));
            }
            Some(Fault::CrashAt(_)) | Some(Fault::CrashOnContains { .. }) => {
                // The process dies *during* this step: data-moving steps
                // leave a torn, un-fsynced half; syncs and renames simply
                // never happen. Poison the filesystem so any later call
                // from the "dead" process fails.
                let mut st = self.fs.state.lock().expect("MemIo lock poisoned");
                match step {
                    Step::WriteUnsynced(path, data) => {
                        let file = st.files.entry(path.to_path_buf()).or_default();
                        file.content = data[..data.len() / 2].to_vec();
                        file.durable_len = 0;
                    }
                    Step::AppendUnsynced(path, data) => {
                        let file = st.files.entry(path.to_path_buf()).or_default();
                        file.content.extend_from_slice(&data[..data.len() / 2]);
                    }
                    Step::Sync(_) | Step::Rename(_, _) | Step::Remove(_) => {}
                }
                st.crashed = true;
                return Err(crash_error());
            }
            None => {}
        }
        let mut st = self.fs.state.lock().expect("MemIo lock poisoned");
        if st.crashed {
            return Err(crash_error());
        }
        match step {
            Step::WriteUnsynced(path, data) => {
                let file = st.files.entry(path.to_path_buf()).or_default();
                file.content = data.to_vec();
                file.durable_len = 0;
            }
            Step::Sync(path) => {
                if let Some(file) = st.files.get_mut(path) {
                    file.durable_len = file.content.len();
                }
            }
            Step::Rename(from, to) => {
                if let Some(mut file) = st.files.remove(from) {
                    // The rename itself is atomic and (after the directory
                    // fsync the protocol performs) durable.
                    file.durable_len = file.content.len();
                    st.files.insert(to.to_path_buf(), file);
                }
            }
            Step::AppendUnsynced(path, data) => {
                let file = st.files.entry(path.to_path_buf()).or_default();
                file.content.extend_from_slice(data);
            }
            Step::Remove(path) => {
                st.files.remove(path);
            }
        }
        Ok(())
    }
}

impl RepoIo for FaultIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.fs.read(path)
    }

    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let tmp = temp_name(path);
        self.step(Step::WriteUnsynced(&tmp, data))?;
        self.step(Step::Sync(&tmp))?;
        self.step(Step::Rename(&tmp, path))
    }

    fn append_sync(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.step(Step::AppendUnsynced(path, data))?;
        self.step(Step::Sync(path))
    }

    fn exists(&self, path: &Path) -> bool {
        self.fs.exists(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.fs.create_dir_all(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.step(Step::Remove(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_io_round_trips() {
        let io = MemIo::new();
        let p = Path::new("/s/a.txt");
        assert!(!io.exists(p));
        io.write_atomic(p, b"hello").unwrap();
        assert_eq!(io.read(p).unwrap(), b"hello");
        io.append_sync(p, b" world").unwrap();
        assert_eq!(io.read(p).unwrap(), b"hello world");
        assert!(io.read(Path::new("/s/missing")).is_err());
    }

    #[test]
    fn snapshot_is_independent() {
        let io = MemIo::new();
        let p = Path::new("/s/a.txt");
        io.write_atomic(p, b"one").unwrap();
        let snap = io.snapshot();
        io.write_atomic(p, b"two").unwrap();
        assert_eq!(snap.read(p).unwrap(), b"one");
        assert_eq!(io.read(p).unwrap(), b"two");
    }

    #[test]
    fn crash_mid_atomic_write_leaves_old_content() {
        let base = MemIo::new();
        let p = Path::new("/s/a.txt");
        base.write_atomic(p, b"old").unwrap();
        // Steps of write_atomic: 0 write-temp, 1 sync-temp, 2 rename.
        for step in 0..3 {
            let disk = base.snapshot();
            let io = FaultIo::new(disk.clone());
            io.crash_at(step);
            assert!(io.write_atomic(p, b"newcontent").is_err());
            disk.post_crash(step);
            // The visible file is exactly the old content (rename never
            // completed) or exactly the new (it did).
            let content = disk.read(p).unwrap();
            assert!(
                content == b"old" || content == b"newcontent",
                "step {step}: {content:?}"
            );
            if step < 2 {
                assert_eq!(content, b"old");
            }
        }
    }

    #[test]
    fn crash_mid_append_tears_the_tail() {
        let base = MemIo::new();
        let p = Path::new("/s/log");
        base.append_sync(p, b"line1\n").unwrap();
        let disk = base.snapshot();
        let io = FaultIo::new(disk.clone());
        io.crash_at(0); // die during the append itself
        assert!(io.append_sync(p, b"line2...\n").is_err());
        disk.post_crash(7);
        let content = disk.read(p).unwrap();
        // The durable prefix survives; the torn tail is at most partial.
        assert!(content.starts_with(b"line1\n"));
        assert!(content.len() < b"line1\nline2...\n".len());
    }

    #[test]
    fn injected_error_fails_without_corruption_and_is_transient() {
        let disk = MemIo::new();
        let p = Path::new("/s/a.txt");
        disk.write_atomic(p, b"old").unwrap();
        let io = FaultIo::new(disk.clone());
        io.error_at(0);
        assert!(io.write_atomic(p, b"new").is_err());
        assert_eq!(disk.read(p).unwrap(), b"old");
        // The fault was transient: the retry succeeds.
        io.clear_fault();
        io.write_atomic(p, b"new").unwrap();
        assert_eq!(disk.read(p).unwrap(), b"new");
    }

    #[test]
    fn poisoned_after_crash_until_reboot() {
        let disk = MemIo::new();
        let io = FaultIo::new(disk.clone());
        io.crash_at(0);
        assert!(io.write_atomic(Path::new("/s/x"), b"data").is_err());
        // Every further op from the dead process fails...
        assert!(io.append_sync(Path::new("/s/y"), b"data").is_err());
        assert!(disk.read(Path::new("/s/x")).is_err());
        // ...until the machine reboots.
        disk.post_crash(0);
        assert!(disk.create_dir_all(Path::new("/s")).is_ok());
    }

    #[test]
    fn fault_plan_lock_survives_poisoning() {
        let io = FaultIo::new(MemIo::new());
        // Poison the plan lock the way a panicking sweep thread would.
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = io.plan.lock().expect("MemIo lock poisoned");
            panic!("injected panic while holding the fault plan");
        }));
        assert!(poison.is_err());
        assert!(io.plan.lock().is_err(), "lock should be poisoned");
        // Every accessor still works — no cascading panic.
        io.crash_at(3);
        io.clear_fault();
        io.error_at(1);
        io.clear_fault();
        assert_eq!(io.steps_taken(), 0);
        io.write_atomic(Path::new("/s/z"), b"ok").unwrap();
        assert_eq!(io.steps_taken(), 3);
    }

    #[test]
    fn remove_is_idempotent_and_crash_atomic() {
        let disk = MemIo::new();
        let p = Path::new("/s/a.txt");
        disk.write_atomic(p, b"data").unwrap();
        // Removing twice is fine on every backend.
        RepoIo::remove(&disk, p).unwrap();
        RepoIo::remove(&disk, p).unwrap();
        assert!(!disk.exists(p));
        // A crash during a faulted remove leaves the file untouched.
        disk.write_atomic(p, b"data").unwrap();
        let io = FaultIo::new(disk.clone());
        io.crash_at(0);
        assert!(io.remove(p).is_err());
        disk.post_crash(1);
        assert_eq!(disk.read(p).unwrap(), b"data");
        // And with no fault planned, it deletes.
        let io = FaultIo::new(disk.clone());
        io.remove(p).unwrap();
        assert!(!disk.exists(p));
    }

    #[test]
    fn crash_on_contains_aims_at_a_phase_not_an_index() {
        let disk = MemIo::new();
        let log = Path::new("/s/log");
        disk.append_sync(log, b"line1\n").unwrap();
        let io = FaultIo::new(disk.clone());
        // Die during the SECOND append from now, regardless of how many
        // unrelated steps (atomic writes, syncs) run in between.
        io.crash_on_contains("append", 1);
        io.write_atomic(Path::new("/s/a"), b"unrelated").unwrap();
        io.append_sync(log, b"line2\n").unwrap();
        io.write_atomic(Path::new("/s/b"), b"unrelated").unwrap();
        assert!(io.append_sync(log, b"line3...\n").is_err());
        disk.post_crash(3);
        let content = disk.read(log).unwrap();
        assert!(content.starts_with(b"line1\nline2\n"));
        assert!(content.len() < b"line1\nline2\nline3...\n".len());
        // The targeted crash still poisons the disk until reboot happened
        // above; the unrelated atomic writes before the crash survived.
        assert_eq!(disk.read(Path::new("/s/a")).unwrap(), b"unrelated");
        assert_eq!(disk.read(Path::new("/s/b")).unwrap(), b"unrelated");
    }

    #[test]
    fn journal_records_micro_steps_in_order() {
        let io = FaultIo::new(MemIo::new());
        io.write_atomic(Path::new("/s/a"), b"x").unwrap();
        io.append_sync(Path::new("/s/log"), b"y").unwrap();
        io.remove(Path::new("/s/a")).unwrap();
        let journal = io.journal();
        assert_eq!(
            journal,
            vec![
                "write /s/.a.tmp".to_string(),
                "sync /s/.a.tmp".to_string(),
                "rename /s/.a.tmp -> /s/a".to_string(),
                "append /s/log".to_string(),
                "sync /s/log".to_string(),
                "remove /s/a".to_string(),
            ]
        );
        io.clear_journal();
        assert!(io.journal().is_empty());
        // The step counter is unaffected by journal clearing.
        assert_eq!(io.steps_taken(), 6);
    }
}
