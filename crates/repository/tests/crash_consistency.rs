//! Crash-consistency property harness (the tentpole guarantee).
//!
//! For every injected crash point during a save or an op-log append, a
//! subsequent (salvage) load must yield *exactly* the pre-operation or the
//! post-operation session — never a corrupted in-between — asserted
//! against the `diff_graphs` oracle. The deterministic sweeps below
//! enumerate every micro-step of the I/O protocol; the proptest-gated
//! module adds a randomized sweep over script prefixes, crash points, and
//! page-cache-loss seeds.

use std::path::Path;

use sws_core::oplang::parse_statement;
use sws_core::{ConceptKind, ModOp};
use sws_model::diff_graphs;
use sws_repository::io::{FaultIo, MemIo};
use sws_repository::{append_log_line, LoadMode, RecoveryReport, Repository};

const DIR: &str = "/session";

fn dir() -> &'static Path {
    Path::new(DIR)
}

/// Parse one `(context tag, statement)` fixture pair.
fn parse_pair(pair: (&str, &str)) -> (ConceptKind, ModOp) {
    let (tag, stmt) = pair;
    (
        ConceptKind::from_tag(tag).expect("fixture context tag"),
        parse_statement(stmt).expect("fixture statement"),
    )
}

/// The university repository with the first `n` ops of the corpus design
/// script applied.
fn university_repo(n: usize) -> Repository {
    let mut repo = Repository::ingest(sws_corpus::university::graph());
    for &pair in &sws_corpus::university::DESIGN_SCRIPT[..n] {
        let (context, op) = parse_pair(pair);
        repo.workspace_mut()
            .apply(context, op)
            .expect("design script prefix is valid");
    }
    repo
}

fn salvage(disk: &MemIo) -> (Repository, RecoveryReport) {
    Repository::load_with(disk, dir(), LoadMode::Salvage).expect("salvage load succeeds")
}

/// The oracle: the loaded working schema is graph-identical to pre or post.
fn assert_pre_or_post(loaded: &Repository, pre: &Repository, post: &Repository, label: &str) {
    let to_pre = diff_graphs(loaded.workspace().working(), pre.workspace().working());
    let to_post = diff_graphs(loaded.workspace().working(), post.workspace().working());
    assert!(
        to_pre.is_empty() || to_post.is_empty(),
        "{label}: loaded session is neither pre nor post\n\
         diff to pre: {to_pre:?}\ndiff to post: {to_post:?}"
    );
}

/// Sweep every crash point of a full save into an *existing* session dir.
#[test]
fn crash_sweep_full_save() {
    let pre = university_repo(4);
    let post = university_repo(5);

    // Base image: the pre session saved cleanly.
    let base = MemIo::new();
    pre.save_with(&base, dir()).unwrap();

    // Size the sweep: one faultless run of the save being tested.
    let probe = FaultIo::new(base.snapshot());
    post.save_with(&probe, dir()).unwrap();
    let steps = probe.steps_taken();
    assert!(steps > 10, "suspiciously few micro-steps: {steps}");

    for k in 0..steps {
        let disk = base.snapshot();
        let io = FaultIo::new(disk.clone());
        io.crash_at(k);
        assert!(
            post.save_with(&io, dir()).is_err(),
            "crash at step {k} must surface"
        );
        disk.post_crash(k.wrapping_mul(0x9E37) + 1);
        let (loaded, report) = salvage(&disk);
        assert_pre_or_post(&loaded, &pre, &post, &format!("save crash at step {k}"));
        // Recovery is idempotent: after healing, a second load is clean
        // and yields the same session.
        if report.healed {
            let (again, report2) = salvage(&disk);
            assert!(report2.is_clean(), "step {k}: {report2:?}");
            assert!(
                diff_graphs(again.workspace().working(), loaded.workspace().working()).is_empty()
            );
        }
    }
}

/// Sweep every crash point of a single op append (the autosave hot path).
#[test]
fn crash_sweep_append() {
    let pre = university_repo(4);
    let post = university_repo(5);
    let (context, op) = parse_pair(sws_corpus::university::DESIGN_SCRIPT[4]);

    let base = MemIo::new();
    pre.save_with(&base, dir()).unwrap();

    let probe = FaultIo::new(base.snapshot());
    append_log_line(&probe, dir(), pre.total_ops(), context, &op).unwrap();
    let steps = probe.steps_taken();
    assert_eq!(steps, 2, "append is one write + one sync");

    for k in 0..steps {
        let disk = base.snapshot();
        let io = FaultIo::new(disk.clone());
        io.crash_at(k);
        assert!(append_log_line(&io, dir(), pre.total_ops(), context, &op).is_err());
        disk.post_crash(k + 11);
        let (loaded, report) = salvage(&disk);
        assert_pre_or_post(&loaded, &pre, &post, &format!("append crash at step {k}"));
        // A torn tail must never be mistaken for extra applied work.
        if report.torn_tail {
            assert!(
                diff_graphs(loaded.workspace().working(), pre.workspace().working()).is_empty()
            );
        }
    }
}

/// A committed append survives any *later* crash: durability.
#[test]
fn committed_append_is_durable() {
    let pre = university_repo(4);
    let post = university_repo(5);
    let (context, op) = parse_pair(sws_corpus::university::DESIGN_SCRIPT[4]);

    let disk = MemIo::new();
    pre.save_with(&disk, dir()).unwrap();
    append_log_line(&disk, dir(), pre.total_ops(), context, &op).unwrap();
    // Power loss with nothing in flight: the append already fsynced.
    disk.post_crash(99);
    let (loaded, _) = salvage(&disk);
    assert!(diff_graphs(loaded.workspace().working(), post.workspace().working()).is_empty());
    assert_eq!(loaded.workspace().log().len(), 5);
}

/// Crash points in a save into a *fresh* directory: the load either finds
/// no session at all (pre) or the complete one (post) — never a session
/// with a silently truncated op log.
#[test]
fn crash_sweep_initial_save() {
    let post = university_repo(3);
    let base = MemIo::new();

    let probe = FaultIo::new(base.snapshot());
    post.save_with(&probe, dir()).unwrap();
    let steps = probe.steps_taken();

    for k in 0..steps {
        let disk = base.snapshot();
        let io = FaultIo::new(disk.clone());
        io.crash_at(k);
        assert!(post.save_with(&io, dir()).is_err());
        disk.post_crash(k + 3);
        match Repository::load_with(&disk, dir(), LoadMode::Salvage) {
            Err(_) => {} // no loadable session: the pre state of a fresh dir
            Ok((loaded, _)) => {
                assert!(
                    diff_graphs(loaded.workspace().working(), post.workspace().working())
                        .is_empty(),
                    "initial-save crash at step {k} exposed a partial session"
                );
                assert_eq!(loaded.workspace().log().len(), 3);
            }
        }
    }
}

/// Sweep every crash point of a checkpoint: snapshot write, archive
/// append, derived-file + MANIFEST commit, tail truncation, and snapshot
/// pruning. A checkpoint only moves bytes between files — every crash
/// point must reload as exactly the same session, with no ops lost, and a
/// retried checkpoint must then converge.
#[test]
fn crash_sweep_checkpoint() {
    let repo = university_repo(5);
    let base = MemIo::new();
    repo.save_with(&base, dir()).unwrap();

    let probe = FaultIo::new(base.snapshot());
    repo.clone()
        .checkpoint_with(&probe, dir())
        .unwrap()
        .expect("five ops to cover");
    let steps = probe.steps_taken();
    assert!(steps > 10, "suspiciously few micro-steps: {steps}");

    for k in 0..steps {
        let disk = base.snapshot();
        let io = FaultIo::new(disk.clone());
        io.crash_at(k);
        assert!(
            repo.clone().checkpoint_with(&io, dir()).is_err(),
            "crash at step {k} must surface"
        );
        disk.post_crash(k.wrapping_mul(0x5BD1) + 7);
        let (loaded, report) = salvage(&disk);
        assert!(
            diff_graphs(loaded.workspace().working(), repo.workspace().working()).is_empty(),
            "checkpoint crash at step {k} changed the schema"
        );
        assert!(!report.data_loss(), "step {k}: {report:?}");
        assert_eq!(loaded.total_ops(), 5, "step {k} lost committed ops");
        // Healing is idempotent: the next load is clean.
        if report.healed {
            let (_, report2) = salvage(&disk);
            assert!(report2.is_clean(), "step {k}: {report2:?}");
        }
        // And the interrupted checkpoint can simply be retried.
        let (mut retry, _) = salvage(&disk);
        retry.checkpoint_with(&disk, dir()).unwrap();
        let (settled, report3) = salvage(&disk);
        assert!(report3.is_clean(), "step {k}: {report3:?}");
        assert!(diff_graphs(settled.workspace().working(), repo.workspace().working()).is_empty());
        assert_eq!(settled.total_ops(), 5);
    }
}

/// Sweep a transient I/O error (ENOSPC-style) through every micro-step of
/// a checkpoint: the directory stays loadable with all ops intact whether
/// the error hit before or after the MANIFEST commit point.
#[test]
fn io_error_sweep_checkpoint() {
    let repo = university_repo(4);
    let base = MemIo::new();
    repo.save_with(&base, dir()).unwrap();

    let probe = FaultIo::new(base.snapshot());
    repo.clone().checkpoint_with(&probe, dir()).unwrap();
    let steps = probe.steps_taken();

    for k in 0..steps {
        let disk = base.snapshot();
        let io = FaultIo::new(disk.clone());
        io.error_at(k);
        // Errors before the MANIFEST rename abort the checkpoint; errors
        // in the cleanup afterwards surface even though the generation
        // committed. Either way no committed state may be harmed.
        let _ = repo.clone().checkpoint_with(&io, dir());
        let (loaded, report) = salvage(&disk);
        assert!(
            diff_graphs(loaded.workspace().working(), repo.workspace().working()).is_empty(),
            "checkpoint error at step {k} changed the schema"
        );
        assert!(!report.data_loss(), "step {k}: {report:?}");
        assert_eq!(loaded.total_ops(), 4, "step {k} lost committed ops");
        // The error was transient: a retried checkpoint converges.
        io.clear_fault();
        let (mut retry, _) = salvage(&disk);
        retry.checkpoint_with(&io, dir()).unwrap();
        let (settled, report2) = salvage(&disk);
        assert!(report2.is_clean(), "step {k}: {report2:?}");
        assert_eq!(settled.total_ops(), 4);
    }
}

/// Sweep every crash point of the append that follows a checkpoint: the
/// tail restarts at the snapshot's coverage, and a torn first tail record
/// must roll back to the checkpointed state, never corrupt it.
#[test]
fn crash_sweep_append_after_checkpoint() {
    let pre = university_repo(4);
    let post = university_repo(5);
    let (context, op) = parse_pair(sws_corpus::university::DESIGN_SCRIPT[4]);

    let base = MemIo::new();
    let mut saved = pre.clone();
    saved.save_with(&base, dir()).unwrap();
    saved.checkpoint_with(&base, dir()).unwrap().unwrap();

    for k in 0..2 {
        let disk = base.snapshot();
        let io = FaultIo::new(disk.clone());
        io.crash_at(k);
        assert!(append_log_line(&io, dir(), saved.total_ops(), context, &op).is_err());
        disk.post_crash(k + 17);
        let (loaded, report) = salvage(&disk);
        assert_pre_or_post(
            &loaded,
            &pre,
            &post,
            &format!("post-checkpoint append crash at step {k}"),
        );
        assert!(!report.degraded(), "step {k}: {report:?}");
    }

    // The committed post-checkpoint append is durable and loads via the
    // snapshot fast path.
    append_log_line(&base, dir(), saved.total_ops(), context, &op).unwrap();
    let (loaded, report) = salvage(&base);
    assert!(diff_graphs(loaded.workspace().working(), post.workspace().working()).is_empty());
    assert_eq!(loaded.total_ops(), 5);
    assert!(
        matches!(
            report.load_path,
            sws_repository::LoadPath::Snapshot { generation: 1 }
        ),
        "{report:?}"
    );
}

/// A transient I/O error (disk full) during save must leave the directory
/// loadable as the pre state, and a retry must succeed.
#[test]
fn io_error_sweep_full_save() {
    let pre = university_repo(2);
    let post = university_repo(3);
    let base = MemIo::new();
    pre.save_with(&base, dir()).unwrap();

    let probe = FaultIo::new(base.snapshot());
    post.save_with(&probe, dir()).unwrap();
    let steps = probe.steps_taken();

    for k in 0..steps {
        let disk = base.snapshot();
        let io = FaultIo::new(disk.clone());
        io.error_at(k);
        let err = post.save_with(&io, dir()).unwrap_err();
        assert!(err.to_string().contains("I/O error"), "{err}");
        // No crash: the process lives, the error was transient — retry.
        io.clear_fault();
        post.save_with(&io, dir()).unwrap();
        let (loaded, report) = salvage(&disk);
        assert!(diff_graphs(loaded.workspace().working(), post.workspace().working()).is_empty());
        assert!(report.is_clean(), "step {k}: {report:?}");
    }
}

#[cfg(feature = "proptest")]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Randomized crash-point sweep: any script prefix, any crash
        /// step, any page-cache-loss seed — reload is pre or post.
        #[test]
        fn random_crash_point_is_pre_or_post(
            prefix in 0usize..7,
            step_pick in 0u64..1000,
            seed in 0u64..u64::MAX,
        ) {
            let pre = university_repo(prefix);
            let post = university_repo(prefix + 1);
            let (context, op) = parse_pair(sws_corpus::university::DESIGN_SCRIPT[prefix]);

            let base = MemIo::new();
            pre.save_with(&base, dir()).unwrap();

            // The tested operation alternates between the two durable
            // paths: a full save or a single append.
            let use_append = seed % 2 == 0;
            let probe = FaultIo::new(base.snapshot());
            if use_append {
                append_log_line(&probe, dir(), pre.total_ops(), context, &op).unwrap();
            } else {
                post.save_with(&probe, dir()).unwrap();
            }
            let steps = probe.steps_taken();
            let k = step_pick % steps;

            let disk = base.snapshot();
            let io = FaultIo::new(disk.clone());
            io.crash_at(k);
            let result = if use_append {
                append_log_line(&io, dir(), pre.total_ops(), context, &op)
            } else {
                post.save_with(&io, dir())
            };
            prop_assert!(result.is_err());
            disk.post_crash(seed);

            let (loaded, _) = salvage(&disk);
            let to_pre = diff_graphs(loaded.workspace().working(), pre.workspace().working());
            let to_post = diff_graphs(loaded.workspace().working(), post.workspace().working());
            prop_assert!(
                to_pre.is_empty() || to_post.is_empty(),
                "prefix {} step {} append={}: neither pre nor post",
                prefix, k, use_append
            );
        }

        /// Randomized checkpoint crash sweep: any design-script prefix,
        /// any crash step inside the checkpoint, any page-cache-loss
        /// seed — the reload keeps every committed op and the exact
        /// schema, and a retried checkpoint converges to a clean
        /// directory.
        #[test]
        fn random_checkpoint_crash_never_loses_ops(
            prefix in 1usize..8,
            step_pick in 0u64..1000,
            seed in 0u64..u64::MAX,
        ) {
            let repo = university_repo(prefix);
            let base = MemIo::new();
            repo.save_with(&base, dir()).unwrap();

            let probe = FaultIo::new(base.snapshot());
            repo.clone().checkpoint_with(&probe, dir()).unwrap();
            let steps = probe.steps_taken();
            let k = step_pick % steps;

            let disk = base.snapshot();
            let io = FaultIo::new(disk.clone());
            io.crash_at(k);
            prop_assert!(repo.clone().checkpoint_with(&io, dir()).is_err());
            disk.post_crash(seed);

            let (loaded, report) = salvage(&disk);
            prop_assert!(
                diff_graphs(loaded.workspace().working(), repo.workspace().working()).is_empty(),
                "prefix {} step {}: schema changed", prefix, k
            );
            prop_assert!(!report.data_loss(), "prefix {} step {}: {:?}", prefix, k, report);
            prop_assert_eq!(loaded.total_ops() as usize, prefix);

            let (mut retry, _) = salvage(&disk);
            retry.checkpoint_with(&disk, dir()).unwrap();
            let (settled, report2) = salvage(&disk);
            prop_assert!(report2.is_clean(), "prefix {} step {}: {:?}", prefix, k, report2);
            prop_assert_eq!(settled.total_ops() as usize, prefix);
        }
    }
}
