//! Golden damaged-session-directory tests.
//!
//! Each test constructs a specific kind of damage — a truncated op-log
//! tail, a checksum-mismatched `custom.odl`, a missing `mapping.txt`, a
//! corrupted record in the middle of the log — then asserts the *exact*
//! [`RecoveryReport`] fields and that the replayed prefix is graph-equal
//! to a session rebuilt from the same ops in memory.

use std::path::Path;

use sws_core::oplang::parse_statement;
use sws_core::{ConceptKind, ModOp};
use sws_model::diff_graphs;
use sws_repository::io::{MemIo, RepoIo};
use sws_repository::{
    DamageKind, LoadMode, ManifestStatus, RecoveryReport, Repository, CUSTOM_FILE, MAPPING_FILE,
    QUARANTINE_FILE, SESSION_FILE,
};

const DIR: &str = "/session";

fn dir() -> &'static Path {
    Path::new(DIR)
}

fn parse_pair(pair: (&str, &str)) -> (ConceptKind, ModOp) {
    let (tag, stmt) = pair;
    (
        ConceptKind::from_tag(tag).expect("fixture context tag"),
        parse_statement(stmt).expect("fixture statement"),
    )
}

/// The university repository with the first `n` design-script ops applied.
fn university_repo(n: usize) -> Repository {
    let mut repo = Repository::ingest(sws_corpus::university::graph());
    for &pair in &sws_corpus::university::DESIGN_SCRIPT[..n] {
        let (context, op) = parse_pair(pair);
        repo.workspace_mut().apply(context, op).unwrap();
    }
    repo
}

/// A clean on-disk image of [`university_repo`]`(n)`.
fn saved_disk(n: usize) -> MemIo {
    let disk = MemIo::new();
    university_repo(n).save_with(&disk, dir()).unwrap();
    disk
}

fn file(disk: &MemIo, name: &str) -> Vec<u8> {
    disk.read(&dir().join(name)).unwrap()
}

fn salvage(disk: &MemIo) -> (Repository, RecoveryReport) {
    Repository::load_with(disk, dir(), LoadMode::Salvage).unwrap()
}

fn assert_same_graph(a: &Repository, b: &Repository) {
    assert!(
        diff_graphs(a.workspace().working(), b.workspace().working()).is_empty(),
        "salvaged session differs from the expected replayed prefix"
    );
}

/// Golden dir 1: the op log's final record is cut mid-write (no trailing
/// newline) — the torn-write crash signature.
#[test]
fn truncated_op_log_tail() {
    let disk = saved_disk(4);
    let log = file(&disk, SESSION_FILE);
    // Cut the last record roughly in half, removing its newline.
    let body_end = log.len() - 1;
    let last_start = log[..body_end]
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|p| p + 1)
        .unwrap();
    let cut = last_start + (body_end - last_start) / 2;
    disk.write_atomic(&dir().join(SESSION_FILE), &log[..cut])
        .unwrap();

    let (loaded, report) = salvage(&disk);

    assert_eq!(report.manifest, ManifestStatus::Ok);
    assert_eq!(report.ops_replayed, 3);
    assert_eq!(report.ops_dropped, 1);
    assert!(report.torn_tail, "a cut final record is a torn tail");
    let bad = report.first_bad_op.as_ref().expect("first bad op recorded");
    assert_eq!(bad.line, 4);
    assert_eq!(report.quarantined, 1);
    assert!(report.healed);
    assert!(report.data_loss());
    // Derived files lag the shortened log, so they are regenerated — and
    // that is reported as staleness, not corruption.
    assert!(report
        .damage
        .iter()
        .all(|d| d.kind == DamageKind::Stale || d.kind == DamageKind::ChecksumMismatch));
    assert_same_graph(&loaded, &university_repo(3));

    // The torn bytes are preserved for forensics, then the dir is clean.
    let quarantine = String::from_utf8(file(&disk, QUARANTINE_FILE)).unwrap();
    assert!(quarantine.contains("quarantined 1 line(s)"));
    let (again, report2) = salvage(&disk);
    assert!(report2.is_clean(), "healing left damage: {report2:?}");
    assert_same_graph(&again, &loaded);
}

/// Golden dir 2: `custom.odl` flipped a byte on disk (bit rot). The op
/// log is intact, so the file is regenerated with zero data loss.
#[test]
fn checksum_mismatched_custom_schema() {
    let disk = saved_disk(3);
    let mut custom = file(&disk, CUSTOM_FILE);
    let mid = custom.len() / 2;
    custom[mid] ^= 0x20;
    disk.write_atomic(&dir().join(CUSTOM_FILE), &custom)
        .unwrap();

    // Strict loading refuses the directory outright.
    assert!(Repository::load_with(&disk, dir(), LoadMode::Strict).is_err());

    let (loaded, report) = salvage(&disk);
    assert_eq!(report.manifest, ManifestStatus::Ok);
    assert_eq!(report.ops_replayed, 3);
    assert_eq!(report.ops_dropped, 0);
    assert!(!report.torn_tail);
    assert_eq!(report.first_bad_op, None);
    assert_eq!(
        report.damage,
        vec![sws_repository::FileDamage {
            file: CUSTOM_FILE.into(),
            kind: DamageKind::ChecksumMismatch,
            detail: "checksum mismatch; regenerated from replay".into(),
        }]
    );
    assert!(report.regenerated.iter().any(|f| f == CUSTOM_FILE));
    assert!(report.healed);
    assert!(!report.data_loss(), "derived-file damage is not data loss");
    assert_same_graph(&loaded, &university_repo(3));

    let (_, report2) = salvage(&disk);
    assert!(report2.is_clean());
}

/// Golden dir 3: `mapping.txt` deleted. Derived file, regenerated.
#[test]
fn missing_mapping_file() {
    let disk = saved_disk(2);
    disk.remove(&dir().join(MAPPING_FILE));

    let (loaded, report) = salvage(&disk);
    assert_eq!(report.manifest, ManifestStatus::Ok);
    assert_eq!(report.ops_replayed, 2);
    assert_eq!(
        report.damage,
        vec![sws_repository::FileDamage {
            file: MAPPING_FILE.into(),
            kind: DamageKind::Missing,
            detail: "listed in MANIFEST but missing; regenerated".into(),
        }]
    );
    assert!(report.regenerated.iter().any(|f| f == MAPPING_FILE));
    assert!(report.healed);
    assert!(!report.data_loss());
    assert_same_graph(&loaded, &university_repo(2));

    // Healed: the file is back and verifies.
    assert!(disk.exists(&dir().join(MAPPING_FILE)));
    let (_, report2) = salvage(&disk);
    assert!(report2.is_clean());
}

/// Golden dir 4: a record in the *middle* of the log is corrupted. The
/// longest valid prefix ends there; the rest — including the still-valid
/// later records — is quarantined, because replaying past a gap could
/// violate op-order dependencies.
#[test]
fn corrupt_record_mid_file_quarantines_the_rest() {
    let disk = saved_disk(5);
    let log = String::from_utf8(file(&disk, SESSION_FILE)).unwrap();
    let mut lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 5);
    // Corrupt record 2 of 5: flip its checksum field.
    let tampered = lines[1].replacen(&lines[1][..1], "0", 1);
    let tampered = if tampered == lines[1] {
        lines[1].replacen(&lines[1][..1], "f", 1)
    } else {
        tampered
    };
    lines[1] = &tampered;
    let rewritten = lines.join("\n") + "\n";
    disk.write_atomic(&dir().join(SESSION_FILE), rewritten.as_bytes())
        .unwrap();

    let (loaded, report) = salvage(&disk);
    assert_eq!(report.ops_replayed, 1);
    assert_eq!(report.ops_dropped, 4, "everything after the gap is dropped");
    assert!(
        !report.torn_tail,
        "mid-file corruption is not a torn tail (not a crash signature)"
    );
    let bad = report.first_bad_op.as_ref().unwrap();
    assert_eq!(bad.line, 2);
    assert!(
        bad.reason.contains("checksum"),
        "reason names the check that failed: {}",
        bad.reason
    );
    assert_eq!(report.quarantined, 4);
    assert!(report.data_loss());
    assert_same_graph(&loaded, &university_repo(1));

    // All four dropped lines land in quarantine, including the valid tail.
    let quarantine = String::from_utf8(file(&disk, QUARANTINE_FILE)).unwrap();
    assert_eq!(
        quarantine.lines().filter(|l| !l.starts_with('#')).count(),
        4
    );

    let (_, report2) = salvage(&disk);
    assert!(report2.is_clean());
}

/// Legacy v0 directory (no MANIFEST, plain un-checksummed log) loads
/// clean with `manifest: Missing` and no spurious damage.
#[test]
fn legacy_directory_reports_missing_manifest_only() {
    let disk = saved_disk(3);
    disk.remove(&dir().join(sws_repository::MANIFEST_FILE));
    // Strip the per-line checksums to the v0 format.
    let log = String::from_utf8(file(&disk, SESSION_FILE)).unwrap();
    let v0: String = log
        .lines()
        .map(|l| {
            let (_, rest) = l.split_once('\t').unwrap();
            format!("{rest}\n")
        })
        .collect();
    disk.write_atomic(&dir().join(SESSION_FILE), v0.as_bytes())
        .unwrap();

    let (loaded, report) = salvage(&disk);
    assert_eq!(report.manifest, ManifestStatus::Missing);
    assert_eq!(report.ops_replayed, 3);
    assert_eq!(report.ops_dropped, 0);
    assert!(report.damage.is_empty(), "{:?}", report.damage);
    assert!(!report.data_loss());
    assert_same_graph(&loaded, &university_repo(3));
}
