//! Golden damaged-session-directory tests.
//!
//! Each test constructs a specific kind of damage — a truncated op-log
//! tail, a checksum-mismatched `custom.odl`, a missing `mapping.txt`, a
//! corrupted record in the middle of the log — then asserts the *exact*
//! [`RecoveryReport`] fields and that the replayed prefix is graph-equal
//! to a session rebuilt from the same ops in memory.

use std::path::Path;

use sws_core::oplang::parse_statement;
use sws_core::{ConceptKind, ModOp};
use sws_model::diff_graphs;
use sws_repository::io::{MemIo, RepoIo};
use sws_repository::{
    DamageKind, LoadMode, LoadPath, ManifestStatus, RecoveryReport, Repository, CUSTOM_FILE,
    MAPPING_FILE, QUARANTINE_FILE, SESSION_FILE,
};

const DIR: &str = "/session";

fn dir() -> &'static Path {
    Path::new(DIR)
}

fn parse_pair(pair: (&str, &str)) -> (ConceptKind, ModOp) {
    let (tag, stmt) = pair;
    (
        ConceptKind::from_tag(tag).expect("fixture context tag"),
        parse_statement(stmt).expect("fixture statement"),
    )
}

/// The university repository with the first `n` design-script ops applied.
fn university_repo(n: usize) -> Repository {
    let mut repo = Repository::ingest(sws_corpus::university::graph());
    for &pair in &sws_corpus::university::DESIGN_SCRIPT[..n] {
        let (context, op) = parse_pair(pair);
        repo.workspace_mut().apply(context, op).unwrap();
    }
    repo
}

/// A clean on-disk image of [`university_repo`]`(n)`.
fn saved_disk(n: usize) -> MemIo {
    let disk = MemIo::new();
    university_repo(n).save_with(&disk, dir()).unwrap();
    disk
}

fn file(disk: &MemIo, name: &str) -> Vec<u8> {
    disk.read(&dir().join(name)).unwrap()
}

fn salvage(disk: &MemIo) -> (Repository, RecoveryReport) {
    Repository::load_with(disk, dir(), LoadMode::Salvage).unwrap()
}

fn assert_same_graph(a: &Repository, b: &Repository) {
    assert!(
        diff_graphs(a.workspace().working(), b.workspace().working()).is_empty(),
        "salvaged session differs from the expected replayed prefix"
    );
}

/// Golden dir 1: the op log's final record is cut mid-write (no trailing
/// newline) — the torn-write crash signature.
#[test]
fn truncated_op_log_tail() {
    let disk = saved_disk(4);
    let log = file(&disk, SESSION_FILE);
    // Cut the last record roughly in half, removing its newline.
    let body_end = log.len() - 1;
    let last_start = log[..body_end]
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|p| p + 1)
        .unwrap();
    let cut = last_start + (body_end - last_start) / 2;
    disk.write_atomic(&dir().join(SESSION_FILE), &log[..cut])
        .unwrap();

    let (loaded, report) = salvage(&disk);

    assert_eq!(report.manifest, ManifestStatus::Ok);
    assert_eq!(report.ops_replayed, 3);
    assert_eq!(report.ops_dropped, 1);
    assert!(report.torn_tail, "a cut final record is a torn tail");
    let bad = report.first_bad_op.as_ref().expect("first bad op recorded");
    assert_eq!(bad.line, 4);
    assert_eq!(report.quarantined, 1);
    assert!(report.healed);
    assert!(report.data_loss());
    // Derived files lag the shortened log, so they are regenerated — and
    // that is reported as staleness, not corruption.
    assert!(report
        .damage
        .iter()
        .all(|d| d.kind == DamageKind::Stale || d.kind == DamageKind::ChecksumMismatch));
    assert_same_graph(&loaded, &university_repo(3));

    // The torn bytes are preserved for forensics — in a numbered file
    // successive salvages never overwrite — then the dir is clean.
    assert_eq!(
        report.quarantine_file.as_deref(),
        Some(format!("{QUARANTINE_FILE}.1").as_str())
    );
    let quarantine = String::from_utf8(file(&disk, &format!("{QUARANTINE_FILE}.1"))).unwrap();
    assert!(quarantine.contains("quarantined 1 line(s)"));
    let (again, report2) = salvage(&disk);
    assert!(report2.is_clean(), "healing left damage: {report2:?}");
    assert_same_graph(&again, &loaded);
}

/// Golden dir 2: `custom.odl` flipped a byte on disk (bit rot). The op
/// log is intact, so the file is regenerated with zero data loss.
#[test]
fn checksum_mismatched_custom_schema() {
    let disk = saved_disk(3);
    let mut custom = file(&disk, CUSTOM_FILE);
    let mid = custom.len() / 2;
    custom[mid] ^= 0x20;
    disk.write_atomic(&dir().join(CUSTOM_FILE), &custom)
        .unwrap();

    // Strict loading refuses the directory outright.
    assert!(Repository::load_with(&disk, dir(), LoadMode::Strict).is_err());

    let (loaded, report) = salvage(&disk);
    assert_eq!(report.manifest, ManifestStatus::Ok);
    assert_eq!(report.ops_replayed, 3);
    assert_eq!(report.ops_dropped, 0);
    assert!(!report.torn_tail);
    assert_eq!(report.first_bad_op, None);
    assert_eq!(
        report.damage,
        vec![sws_repository::FileDamage {
            file: CUSTOM_FILE.into(),
            kind: DamageKind::ChecksumMismatch,
            detail: "checksum mismatch; regenerated from replay".into(),
        }]
    );
    assert!(report.regenerated.iter().any(|f| f == CUSTOM_FILE));
    assert!(report.healed);
    assert!(!report.data_loss(), "derived-file damage is not data loss");
    assert_same_graph(&loaded, &university_repo(3));

    let (_, report2) = salvage(&disk);
    assert!(report2.is_clean());
}

/// Golden dir 3: `mapping.txt` deleted. Derived file, regenerated.
#[test]
fn missing_mapping_file() {
    let disk = saved_disk(2);
    disk.remove(&dir().join(MAPPING_FILE));

    let (loaded, report) = salvage(&disk);
    assert_eq!(report.manifest, ManifestStatus::Ok);
    assert_eq!(report.ops_replayed, 2);
    assert_eq!(
        report.damage,
        vec![sws_repository::FileDamage {
            file: MAPPING_FILE.into(),
            kind: DamageKind::Missing,
            detail: "listed in MANIFEST but missing; regenerated".into(),
        }]
    );
    assert!(report.regenerated.iter().any(|f| f == MAPPING_FILE));
    assert!(report.healed);
    assert!(!report.data_loss());
    assert_same_graph(&loaded, &university_repo(2));

    // Healed: the file is back and verifies.
    assert!(disk.exists(&dir().join(MAPPING_FILE)));
    let (_, report2) = salvage(&disk);
    assert!(report2.is_clean());
}

/// Golden dir 4: a record in the *middle* of the log is corrupted. The
/// longest valid prefix ends there; the rest — including the still-valid
/// later records — is quarantined, because replaying past a gap could
/// violate op-order dependencies.
#[test]
fn corrupt_record_mid_file_quarantines_the_rest() {
    let disk = saved_disk(5);
    let log = String::from_utf8(file(&disk, SESSION_FILE)).unwrap();
    let mut lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 5);
    // Corrupt record 2 of 5: flip its checksum field.
    let tampered = lines[1].replacen(&lines[1][..1], "0", 1);
    let tampered = if tampered == lines[1] {
        lines[1].replacen(&lines[1][..1], "f", 1)
    } else {
        tampered
    };
    lines[1] = &tampered;
    let rewritten = lines.join("\n") + "\n";
    disk.write_atomic(&dir().join(SESSION_FILE), rewritten.as_bytes())
        .unwrap();

    let (loaded, report) = salvage(&disk);
    assert_eq!(report.ops_replayed, 1);
    assert_eq!(report.ops_dropped, 4, "everything after the gap is dropped");
    assert!(
        !report.torn_tail,
        "mid-file corruption is not a torn tail (not a crash signature)"
    );
    let bad = report.first_bad_op.as_ref().unwrap();
    assert_eq!(bad.line, 2);
    assert!(
        bad.reason.contains("checksum"),
        "reason names the check that failed: {}",
        bad.reason
    );
    assert_eq!(report.quarantined, 4);
    assert!(report.data_loss());
    assert_same_graph(&loaded, &university_repo(1));

    // All four dropped lines land in quarantine, including the valid tail.
    let quarantine = String::from_utf8(file(&disk, &format!("{QUARANTINE_FILE}.1"))).unwrap();
    assert_eq!(
        quarantine.lines().filter(|l| !l.starts_with('#')).count(),
        4
    );

    let (_, report2) = salvage(&disk);
    assert!(report2.is_clean());
}

/// Legacy v0 directory (no MANIFEST, plain un-checksummed log) loads
/// clean with `manifest: Missing` and no spurious damage.
#[test]
fn legacy_directory_reports_missing_manifest_only() {
    let disk = saved_disk(3);
    disk.remove(&dir().join(sws_repository::MANIFEST_FILE));
    // Strip the per-line checksums and sequence numbers to the v0 format.
    let log = String::from_utf8(file(&disk, SESSION_FILE)).unwrap();
    let v0: String = log
        .lines()
        .map(|l| {
            let (_, rest) = l.split_once('\t').unwrap();
            let (_, rest) = rest.split_once('\t').unwrap();
            format!("{rest}\n")
        })
        .collect();
    disk.write_atomic(&dir().join(SESSION_FILE), v0.as_bytes())
        .unwrap();

    let (loaded, report) = salvage(&disk);
    assert_eq!(report.manifest, ManifestStatus::Missing);
    assert_eq!(report.load_path, LoadPath::FullLog);
    assert_eq!(report.ops_replayed, 3);
    assert_eq!(report.ops_dropped, 0);
    assert!(report.damage.is_empty(), "{:?}", report.damage);
    assert!(!report.data_loss());
    assert_same_graph(&loaded, &university_repo(3));
}

// --- layered snapshot fallback ---------------------------------------------

/// A disk with two retained checkpoint generations and a live tail:
/// gen 1 covers ops 0..3, gen 2 covers ops 0..5, tail holds seqs 5 and 6.
fn checkpointed_disk() -> (MemIo, Repository) {
    let disk = MemIo::new();
    let mut repo = Repository::ingest(sws_corpus::university::graph());
    let apply_range = |repo: &mut Repository, range: std::ops::Range<usize>| {
        for i in range {
            let (context, op) = parse_pair(sws_corpus::university::DESIGN_SCRIPT[i]);
            repo.workspace_mut().apply(context, op).unwrap();
        }
    };
    apply_range(&mut repo, 0..3);
    repo.save_with(&disk, dir()).unwrap();
    repo.checkpoint_with(&disk, dir()).unwrap().unwrap();
    apply_range(&mut repo, 3..5);
    repo.save_with(&disk, dir()).unwrap();
    repo.checkpoint_with(&disk, dir()).unwrap().unwrap();
    apply_range(&mut repo, 5..7);
    repo.save_with(&disk, dir()).unwrap();
    (disk, repo)
}

fn flip_byte(disk: &MemIo, name: &str) {
    let path = dir().join(name);
    let mut bytes = disk.read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    disk.write_atomic(&path, &bytes).unwrap();
}

/// Golden dir 5: the newest snapshot is corrupt. Salvage falls back one
/// generation — the older snapshot plus a longer tail from the archive —
/// and recovers every op; strict refuses outright.
#[test]
fn corrupt_newest_snapshot_falls_back_one_generation() {
    let (disk, repo) = checkpointed_disk();
    flip_byte(&disk, "snapshot.2");

    assert!(Repository::load_with(&disk, dir(), LoadMode::Strict).is_err());

    let (loaded, report) = salvage(&disk);
    assert_eq!(
        report.load_path,
        LoadPath::FallbackSnapshot { generation: 1 }
    );
    assert!(report.degraded());
    assert!(!report.data_loss(), "{report:?}");
    assert_eq!(report.snapshot_ops, 3);
    assert_eq!(report.ops_replayed, 4, "seqs 3..7 from archive + tail");
    assert_eq!(loaded.total_ops(), 7);
    assert_same_graph(&loaded, &repo);
    assert!(report
        .damage
        .iter()
        .any(|d| d.file == "snapshot.2" && d.kind == DamageKind::ChecksumMismatch));

    // Healing dropped the damaged generation; the next load takes the
    // surviving snapshot's fast path and is clean.
    let (again, report2) = salvage(&disk);
    assert!(report2.is_clean(), "{report2:?}");
    assert_eq!(report2.load_path, LoadPath::Snapshot { generation: 1 });
    assert_same_graph(&again, &repo);
}

/// Golden dir 6: the newest snapshot AND a tail record are damaged. The
/// fallback layer recovers everything the archive holds; only the op
/// behind the bad tail record is lost — and reported.
#[test]
fn corrupt_snapshot_and_tail_loses_only_the_bad_tail() {
    let (disk, _) = checkpointed_disk();
    flip_byte(&disk, "snapshot.2");
    // Corrupt the tail's second record (global seq 6) by flipping the
    // first checksum character.
    let log = String::from_utf8(file(&disk, SESSION_FILE)).unwrap();
    let mut lines: Vec<String> = log.lines().map(str::to_string).collect();
    assert_eq!(lines.len(), 2, "tail holds seqs 5 and 6");
    let flipped = if lines[1].starts_with('0') { "f" } else { "0" };
    lines[1].replace_range(..1, flipped);
    let rewritten = lines.join("\n") + "\n";
    disk.write_atomic(&dir().join(SESSION_FILE), rewritten.as_bytes())
        .unwrap();

    let (loaded, report) = salvage(&disk);
    assert_eq!(
        report.load_path,
        LoadPath::FallbackSnapshot { generation: 1 }
    );
    assert!(report.degraded());
    assert!(report.data_loss());
    assert_eq!(report.snapshot_ops, 3);
    assert_eq!(report.ops_replayed, 3, "archive seqs 3,4 + tail seq 5");
    assert_eq!(report.ops_dropped, 1);
    assert_same_graph(&loaded, &university_repo(6));

    let (_, report2) = salvage(&disk);
    assert!(report2.is_clean(), "{report2:?}");
}

/// Golden dir 7: every retained snapshot is corrupt. The last layer —
/// full replay of the archived log plus the tail — still recovers the
/// complete session with zero loss.
#[test]
fn all_snapshots_corrupt_fall_back_to_full_replay() {
    let (disk, repo) = checkpointed_disk();
    flip_byte(&disk, "snapshot.1");
    flip_byte(&disk, "snapshot.2");

    let (loaded, report) = salvage(&disk);
    assert_eq!(report.load_path, LoadPath::FallbackFullReplay);
    assert!(report.degraded());
    assert!(!report.data_loss(), "{report:?}");
    assert_eq!(report.snapshot_ops, 0);
    assert_eq!(report.ops_replayed, 7);
    assert_eq!(loaded.total_ops(), 7);
    assert_same_graph(&loaded, &repo);

    let (again, report2) = salvage(&disk);
    assert!(report2.is_clean(), "{report2:?}");
    assert_same_graph(&again, &repo);
}

/// Successive salvages write `session.ops.quarantine.1`, `.2`, … — later
/// damage never overwrites earlier forensic evidence.
#[test]
fn successive_salvages_number_their_quarantine_files() {
    let disk = saved_disk(3);
    disk.append_sync(&dir().join(SESSION_FILE), b"garbage\n")
        .unwrap();
    let (_, report) = salvage(&disk);
    assert_eq!(
        report.quarantine_file.as_deref(),
        Some(format!("{QUARANTINE_FILE}.1").as_str())
    );

    disk.append_sync(&dir().join(SESSION_FILE), b"more garbage\n")
        .unwrap();
    let (_, report2) = salvage(&disk);
    assert_eq!(
        report2.quarantine_file.as_deref(),
        Some(format!("{QUARANTINE_FILE}.2").as_str())
    );
    assert!(disk.exists(&dir().join(format!("{QUARANTINE_FILE}.1"))));
    assert!(disk.exists(&dir().join(format!("{QUARANTINE_FILE}.2"))));

    let (_, report3) = salvage(&disk);
    assert!(report3.is_clean(), "{report3:?}");
}
